"""Transactions on the relational payroll workload.

Demonstrates multi-fact transactions ([BRY 87] extension): net-effect
normalization, compound hires that only pass as a unit, and the cost
profile of checking a transaction against a database of a few hundred
tuples.

Run:  python examples/payroll_transactions.py
"""

from repro.integrity.checker import IntegrityChecker
from repro.integrity.transactions import Transaction
from repro.workloads.relational import RelationalWorkload


def main() -> None:
    workload = RelationalWorkload(n_employees=200, seed=42)
    db = workload.build()
    checker = IntegrityChecker(db)
    print(db)
    print()

    # A bare hire violates salary totality …
    bare_hire = Transaction(["employee(zoe)"])
    result = checker.check(bare_hire)
    print(f"{bare_hire}: {'OK' if result.ok else 'VIOLATION'}")
    for violation in result.violations:
        print(f"  {violation.constraint_id} fails: {violation.instance}")
    print()

    # … the compound hire passes as a unit.
    full_hire = Transaction(
        [
            "employee(zoe)",
            "salary(zoe, junior)",
            "works_in(zoe, d0)",
        ]
    )
    result = checker.check(full_hire)
    print(f"{full_hire}: {'OK' if result.ok else 'VIOLATION'}")
    print(f"  stats: {result.stats}")
    print()

    # Net effect: an update undone inside the transaction is a no-op.
    churn = Transaction(
        ["employee(tmp)", "not employee(tmp)", "salary(e1, junior)",
         "not salary(e1, junior)"]
    )
    result = checker.check(churn)
    print(f"churn transaction nets out: {'OK' if result.ok else 'VIOLATION'}")
    print()

    # Cost comparison against the full sweep, on the compound hire.
    full = checker.check_full(full_hire)
    bdm = checker.check_bdm(full_hire)
    print("cost of checking the compound hire:")
    print(f"  full sweep:        {full.stats['lookups']:6d} atom lookups")
    print(f"  update constraints:{bdm.stats['lookups']:6d} atom lookups")


if __name__ == "__main__":
    main()

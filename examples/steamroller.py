"""Schubert's steamroller as a satisfiability (refutation) run.

The steamroller's conclusion — some animal eats a grain-eating animal —
is a theorem: asserting its negation alongside the axioms yields an
unsatisfiable set, which the checker refutes by closing every branch of
the model construction. This is the configuration the SATCHMO papers
([MANT 87a/b], which Section 4 builds on) benchmarked; fresh-only
existentials (classical tableaux mode) are refutation-complete and keep
the search small.

Run:  python examples/steamroller.py
"""

import time

from repro.satisfiability.checker import SatisfiabilityChecker
from repro.workloads.theorem_proving import steamroller


def main() -> None:
    print(__doc__)
    checker = SatisfiabilityChecker.from_source(
        steamroller(), existential_reuse=False
    )
    started = time.perf_counter()
    result = checker.check(
        max_fresh_constants=10, deepening=False, max_levels=60
    )
    elapsed = time.perf_counter() - started
    print(f"status:     {result.status}")
    print(f"elapsed:    {elapsed * 1000:.1f} ms")
    print(f"assertions: {result.stats['assertions']}")
    print(f"backtracks: {result.stats['backtracks']}")
    print(f"lookups:    {result.stats['lookups']}")
    assert result.unsatisfiable, "the steamroller conclusion is a theorem"
    print()
    print("The negated conclusion is refuted: the conclusion holds.")

    # Dropping the negated conclusion, the axioms alone have a finite
    # model — the checker (with reuse enabled) finds one.
    axioms_only = steamroller().rsplit("% negated conclusion", 1)[0]
    checker = SatisfiabilityChecker.from_source(axioms_only)
    result = checker.check(max_fresh_constants=8, max_levels=80)
    print()
    print(f"axioms alone: {result.status}, "
          f"model of {len(result.model)} facts")


if __name__ == "__main__":
    main()

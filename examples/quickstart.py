"""Quickstart: build a deductive database, check updates before applying.

Run:  python examples/quickstart.py
"""

from repro.datalog.database import DeductiveDatabase
from repro.integrity.checker import IntegrityChecker

SOURCE = """
% ------------------------------------------------------------------ facts
employee(ann).
employee(bob).
department(sales).
works_in(ann, sales).
works_in(bob, sales).

% ------------------------------------------------------------------ rules
colleague(X, Y) :- works_in(X, D), works_in(Y, D).

% ------------------------------------------------------------ constraints
forall E, D: works_in(E, D) -> employee(E).
forall E, D: works_in(E, D) -> department(D).
forall D: department(D) -> exists E: employee(E) and works_in(E, D).
"""


def main() -> None:
    db = DeductiveDatabase.from_source(SOURCE)
    print(db)
    print("colleague(ann, bob)?", db.holds("colleague(ann, bob)"))
    print("all constraints satisfied?", db.all_constraints_satisfied())
    print()

    checker = IntegrityChecker(db)

    # A harmless update: hire carol into sales.
    for update in ["employee(carol)", "works_in(carol, sales)"]:
        result = checker.check(update)
        print(f"check {update!r}: {'OK' if result.ok else 'VIOLATION'}")

    # A violating update: membership for an unknown person.
    result = checker.check("works_in(dave, sales)")
    print(f"check 'works_in(dave, sales)':",
          "OK" if result.ok else "VIOLATION")
    for violation in result.violations:
        print(f"  {violation.constraint_id} fails: {violation.instance}")

    # A violating deletion: sales would lose its last member... not yet —
    # ann and bob both work there, so deleting one membership is fine.
    result = checker.check("not works_in(ann, sales)")
    print(f"check 'not works_in(ann, sales)':",
          "OK" if result.ok else "VIOLATION")

    # But a transaction removing both memberships empties the department.
    from repro.integrity.transactions import Transaction

    transaction = Transaction(
        ["not works_in(ann, sales)", "not works_in(bob, sales)"]
    )
    result = checker.check(transaction)
    print(f"check {transaction}:", "OK" if result.ok else "VIOLATION")

    # Only updates that pass get applied.
    db.apply_update("employee(carol)")
    db.apply_update("works_in(carol, sales)")
    print()
    print("after applying the good updates:", db)
    print("still satisfied?", db.all_constraints_satisfied())


if __name__ == "__main__":
    main()

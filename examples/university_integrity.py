"""The Section 3.2 walk-through: induced updates and update constraints.

Shows the paper's machinery piece by piece on the student/enrolled/
attends scenario — relevance, simplified instances, potential updates,
the compiled update constraints, the delta evaluation, and the cost
difference against the eager baselines.

Run:  python examples/university_integrity.py
"""

from repro.datalog.database import DeductiveDatabase
from repro.integrity.checker import IntegrityChecker
from repro.integrity.delta_eval import DeltaEvaluator
from repro.logic.parser import parse_literal

SOURCE = """
attends(jack, ddb).

enrolled(X, cs) :- student(X).

% Ci': every CS-enrolled student attends the ddb course.
forall X: student(X) -> (not enrolled(X, cs)) or attends(X, ddb).
"""


def main() -> None:
    db = DeductiveDatabase.from_source(SOURCE)
    checker = IntegrityChecker(db)

    update = parse_literal("student(jack)")
    print(f"update: {update}")
    print()

    # --- compile phase: no fact access -----------------------------------
    compiled = checker.compile([update])
    print("potential updates (Definition 5):")
    for literal in compiled.potential:
        print(f"  {literal}")
    print()
    print("update constraints (Definition 6):")
    for uc in compiled.update_constraints:
        print(f"  not delta(U, {uc.trigger}) or new(U, {uc.instance.formula})")
    print()

    # --- evaluation phase -------------------------------------------------
    delta = DeltaEvaluator(db, update)
    print("induced updates (Definition 4):")
    for literal in delta.induced_updates():
        print(f"  {literal}")
    print()

    result = checker.check_bdm(update)
    print(f"verdict for student(jack): {'OK' if result.ok else 'VIOLATION'}")
    print(f"  stats: {result.stats}")
    print()

    # jack attends ddb; joe does not.
    result = checker.check_bdm(parse_literal("student(joe)"))
    print(f"verdict for student(joe):  {'OK' if result.ok else 'VIOLATION'}")
    for violation in result.violations:
        print(f"  {violation.constraint_id} fails: {violation.instance}"
              f" (via {violation.trigger})")
    print()

    # --- method comparison --------------------------------------------------
    print("method comparison on student(joe):")
    for method in ("check_full", "check_nicolas", "check_bdm",
                   "check_interleaved", "check_lloyd"):
        result = getattr(checker, method)(parse_literal("student(joe)"))
        print(f"  {method:18s} ok={result.ok!s:5s} stats={result.stats}")
    print()
    print("note: check_nicolas (the relational method) judges the update"
          " safe —")
    print("the violation lives on the *induced* update enrolled(joe, cs),"
          " which")
    print("only the deductive methods see (Proposition 2/3 vs."
          " Proposition 1).")


if __name__ == "__main__":
    main()

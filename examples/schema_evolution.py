"""Schema evolution: the 'uniform approach' of the paper's title.

Adding a constraint to a live database raises exactly the two questions
the paper unifies:

* *satisfaction* — does the current database satisfy it? (Section 3
  machinery);
* *satisfiability* — if not, is the extended constraint set even
  compatible, i.e. does any database satisfying everything exist?
  (Section 4 machinery). If not, no amount of data repair will ever
  help — the constraint itself must be rejected.

Run:  python examples/schema_evolution.py
"""

from repro.datalog.database import DeductiveDatabase
from repro.integrity.evolution import assess_constraint_addition

SOURCE = """
% A small project-staffing database.
employee(ann).
employee(bob).
project(apollo).
assigned(ann, apollo).
lead(ann, apollo).

involved(X, P) :- assigned(X, P).
involved(X, P) :- lead(X, P).

forall X, P: assigned(X, P) -> employee(X).
forall X, P: lead(X, P) -> employee(X).
forall P: project(P) -> exists X: lead(X, P).
exists P: project(P).
"""

CANDIDATES = [
    # Already satisfied: leads are involved (derivable via the rule).
    "forall X, P: lead(X, P) -> involved(X, P)",
    # Violated but repairable: bob has no project yet.
    "forall X: employee(X) -> exists P: project(P) and involved(X, P)",
    # Incompatible: projects need leads, leads are involved — a
    # constraint forbidding involvement contradicts the existing set.
    "forall X, P: project(P) -> not involved(X, P)",
]


def main() -> None:
    print(__doc__)
    db = DeductiveDatabase.from_source(SOURCE)
    print(db)
    print("current database consistent?", db.all_constraints_satisfied())
    print()
    for text in CANDIDATES:
        result = assess_constraint_addition(db, text, max_fresh_constants=5)
        print(f"candidate: {text}")
        print(f"  verdict: {result.status.upper()}")
        if result.witnesses:
            print(f"  violated for {len(result.witnesses)} witness(es)")
        if result.status == "repairable":
            model = result.sample_model
            print(
                f"  a consistent database exists, e.g. with "
                f"{len(model)} facts:"
            )
            for fact in sorted(model, key=str)[:6]:
                print(f"    {fact}")
        if result.status == "incompatible":
            print(
                "  the extended constraint set has no finite model: "
                "reject the constraint"
            )
        print()


if __name__ == "__main__":
    main()

"""The Section 5 example: constraint satisfiability in action.

The paper's organization schema is *unsatisfiable*: constraints (1),
(2) and the member-rule force every department leader to be a member of
the department they lead, hence (3) makes them their own subordinate,
which (4) forbids. The checker proves this by exhausting every
enforcement alternative. Weakening (3) as the paper suggests restores
finite satisfiability, and the checker produces a concrete model.

Run:  python examples/org_satisfiability.py
"""

from repro.satisfiability.checker import SatisfiabilityChecker
from repro.workloads.theorem_proving import SECTION5, SECTION5_WEAKENED


def show(title: str, source: str) -> None:
    print(f"--- {title} " + "-" * (60 - len(title)))
    checker = SatisfiabilityChecker.from_source(source, trace=True)
    result = checker.check(max_fresh_constants=6)
    print(f"status: {result.status}")
    print(
        f"assertions: {result.stats['assertions']}, "
        f"backtracks: {result.stats['backtracks']}"
    )
    if result.model is not None:
        print("model:")
        for fact in sorted(result.model, key=str):
            print(f"  {fact}")
    if result.trace:
        print("first trace steps:")
        for line in result.trace[:12]:
            print(f"  {line}")
    print()


def main() -> None:
    print(__doc__)
    show("Section 5 as published (unsatisfiable)", SECTION5)
    show("constraint (3) weakened (finitely satisfiable)", SECTION5_WEAKENED)


if __name__ == "__main__":
    main()

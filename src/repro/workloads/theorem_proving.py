"""Theorem-proving problems for the satisfiability checker (E5–E7).

The paper reports "promising efficiency … on well-known benchmark
examples from the theorem-proving literature" — the SATCHMO papers it
cites ([MANT 87a/b]) used Schubert's steamroller and its relatives. The
builders below produce surface-syntax sources for:

* the Section 5 organization example (and its satisfiable weakening);
* Schubert's steamroller (with the negated conclusion: unsatisfiable);
* pigeonhole instances (ground, unsatisfiable);
* graph 2-colouring of cycles (even: satisfiable, odd: not);
* serial-order axiom families whose finite models need constant reuse.
"""

from __future__ import annotations

from typing import List

SECTION5 = """
member(X, Y) :- leads(X, Y).

forall X: employee(X) -> exists Y: department(Y) and member(X, Y).
forall X: department(X) -> exists Y: employee(Y) and leads(Y, X).
forall X, Y: member(X, Y) -> (forall Z: leads(Z, Y) -> subordinate(X, Z)).
forall X: not subordinate(X, X).
exists X: employee(X).
"""

SECTION5_WEAKENED = """
member(X, Y) :- leads(X, Y).

forall X: employee(X) -> exists Y: department(Y) and member(X, Y).
forall X: department(X) -> exists Y: employee(Y) and leads(Y, X).
forall X, Y: member(X, Y) -> leads(X, Y) or
    (forall Z: leads(Z, Y) -> subordinate(X, Z)).
forall X: not subordinate(X, X).
exists X: employee(X).
"""


def steamroller() -> str:
    """Schubert's steamroller, clausal FO form, conclusion negated —
    the whole set is unsatisfiable (the conclusion is a theorem)."""
    return """
    % the menagerie exists
    exists X: wolf(X).
    exists X: fox(X).
    exists X: bird(X).
    exists X: caterpillar(X).
    exists X: snail(X).
    exists X: grain(X).

    % taxonomy
    forall X: wolf(X) -> animal(X).
    forall X: fox(X) -> animal(X).
    forall X: bird(X) -> animal(X).
    forall X: caterpillar(X) -> animal(X).
    forall X: snail(X) -> animal(X).
    forall X: grain(X) -> plant(X).

    % size ordering
    forall X, Y: caterpillar(X) and bird(Y) -> smaller(X, Y).
    forall X, Y: snail(X) and bird(Y) -> smaller(X, Y).
    forall X, Y: bird(X) and fox(Y) -> smaller(X, Y).
    forall X, Y: fox(X) and wolf(Y) -> smaller(X, Y).

    % dietary facts
    forall X, Y: wolf(X) and fox(Y) -> not eats(X, Y).
    forall X, Y: wolf(X) and grain(Y) -> not eats(X, Y).
    forall X, Y: bird(X) and caterpillar(Y) -> eats(X, Y).
    forall X, Y: bird(X) and snail(Y) -> not eats(X, Y).
    forall X: caterpillar(X) -> exists Y: plant(Y) and eats(X, Y).
    forall X: snail(X) -> exists Y: plant(Y) and eats(X, Y).

    % every animal eats all plants, or eats all smaller plant-eating animals
    forall A: animal(A) ->
        (forall P: plant(P) -> eats(A, P)) or
        (forall [B, Q]: animal(B) and smaller(B, A) and plant(Q)
                        and eats(B, Q) -> eats(A, B)).

    % negated conclusion: no animal eats a grain-eating animal
    forall [A, B]: animal(A) and animal(B) and eats(A, B) ->
        (forall G: grain(G) -> not eats(B, G)).
    """


def pigeonhole(holes: int, pigeons: int = 0) -> str:
    """Ground pigeonhole principle: *pigeons* birds into *holes* holes,
    no sharing. With pigeons = holes + 1 (default) it is unsatisfiable.
    """
    if pigeons <= 0:
        pigeons = holes + 1
    lines: List[str] = []
    for p in range(pigeons):
        alternatives = " or ".join(
            f"sits(p{p}, h{h})" for h in range(holes)
        )
        lines.append(f"{alternatives}.")
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                lines.append(
                    f"sits(p{p1}, h{h}) -> not sits(p{p2}, h{h})."
                )
    return "\n".join(lines)


def cycle_coloring(length: int, colors: int = 2) -> str:
    """Ground 2-colouring (or k-colouring) of an undirected cycle.
    Even cycles are 2-colourable (satisfiable), odd ones are not."""
    palette = [f"col{c}" for c in range(colors)]
    lines: List[str] = []
    for v in range(length):
        alternatives = " or ".join(
            f"color(v{v}, {color})" for color in palette
        )
        lines.append(f"{alternatives}.")
    for v in range(length):
        w = (v + 1) % length
        for color in palette:
            lines.append(
                f"color(v{v}, {color}) -> not color(v{w}, {color})."
            )
    return "\n".join(lines)


def serial_order(irreflexive: bool = False, antisymmetric: bool = False) -> str:
    """Serial successor axioms: every p-element relates onward to a
    p-element. With no further axioms a one-element loop is a model;
    irreflexivity forces two elements; adding antisymmetry and
    transitivity (see the checker tests) kills all finite models."""
    lines = [
        "exists X: p(X).",
        "forall X: p(X) -> exists Y: p(Y) and r(X, Y).",
    ]
    if irreflexive:
        lines.append("forall X: not r(X, X).")
    if antisymmetric:
        lines.append("forall X, Y: r(X, Y) -> not r(Y, X).")
    return "\n".join(lines)

"""Deductive workloads: the Section 3 scenarios at parameterized scale.

Each builder returns a satisfied-by-construction database together with
the update(s) the corresponding experiment applies.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.datalog.database import DeductiveDatabase
from repro.integrity.transactions import Transaction
from repro.logic.formulas import Atom, Literal
from repro.logic.terms import Constant


def fanout_database(fanout: int) -> Tuple[DeductiveDatabase, Literal]:
    """Section 3.2's first drawback, scaled (E2).

    Rule ``r(X) <- q(X, Y), p(Y, Z)`` with *fanout* many ``q(·, a)``
    facts; the only constraint is on unrelated relations, so the update
    ``p(a, b)`` induces r-updates nobody cares about. The interleaved
    method computes them all; the two-phase method touches nothing.
    """
    db = DeductiveDatabase()
    for i in range(fanout):
        db.add_fact(Atom("q", (Constant(f"k{i}"), Constant("a"))))
    db.add_rule("r(X) :- q(X, Y), p(Y, Z)")
    db.add_constraint("forall X: s(X) -> t(X)")
    update = Literal(Atom("p", (Constant("a"), Constant("b"))))
    return db, update


def rule_chain_database(
    depth: int, width: int
) -> Tuple[DeductiveDatabase, Literal]:
    """A chain of join rules c1 → c2 → … → c<depth> over a wide base
    (E3).

    Each step ``c_{i+1}(X) <- c_i(Y), link_i(Y, X)`` joins through a
    link relation, so the potential update for every chain predicate
    stays *open* (the head variable is not bound by the trigger). With
    ``width`` pre-existing chain instances, the delta guard enumerates
    the single changed instance while the [LLOY 86] new-guard
    enumerates all ``width + 1`` instances true in the updated state.
    """
    db = DeductiveDatabase()
    members = [f"m{i}" for i in range(width)] + ["fresh"]
    for member in members:
        db.add_fact(Atom("ok", (Constant(member),)))
        for level in range(depth):
            db.add_fact(
                Atom(
                    f"link{level}",
                    (Constant(member), Constant(member)),
                )
            )
    for i in range(width):
        db.add_fact(Atom("c0", (Constant(f"m{i}"),)))
    for level in range(depth):
        db.add_rule(
            f"c{level + 1}(X) :- c{level}(Y), link{level}(Y, X)"
        )
    db.add_constraint(f"forall X: c{depth}(X) -> ok(X)")
    update = Literal(Atom("c0", (Constant("fresh"),)))
    return db, update


def ancestor_database(
    chain_length: int,
) -> Tuple[DeductiveDatabase, Literal]:
    """Recursive ancestor chain with a constraint over the closure
    (used by E8 and the recursion tests)."""
    db = DeductiveDatabase()
    for i in range(chain_length):
        db.add_fact(Atom("par", (Constant(f"g{i}"), Constant(f"g{i+1}"))))
        db.add_fact(Atom("person", (Constant(f"g{i}"),)))
    db.add_fact(Atom("person", (Constant(f"g{chain_length}"),)))
    db.add_rule("anc(X, Y) :- par(X, Y)")
    db.add_rule("anc(X, Y) :- par(X, Z), anc(Z, Y)")
    db.add_constraint("forall X, Y: anc(X, Y) -> person(Y)")
    update = Literal(
        Atom(
            "par",
            (Constant(f"g{chain_length}"), Constant(f"g{chain_length + 1}")),
        )
    )
    return db, update


def university_database(n_students: int) -> DeductiveDatabase:
    """The Section 3.2 university scenario (E4): students are enrolled
    in CS by rule; enrolled CS students must attend the ddb course."""
    db = DeductiveDatabase()
    for i in range(n_students):
        db.add_fact(Atom("student", (Constant(f"s{i}"),)))
        db.add_fact(Atom("attends", (Constant(f"s{i}"), Constant("ddb"))))
    db.add_rule("enrolled(X, cs) :- student(X)")
    db.add_constraint(
        "forall X: student(X) -> (not enrolled(X, cs)) or attends(X, ddb)"
    )
    return db


def university_transaction(
    size: int, attend: bool = True, start: int = 1000
) -> Transaction:
    """A transaction enrolling *size* new students (E4); with
    ``attend`` they also get their ddb attendance, keeping the
    constraint satisfied."""
    updates: List[str] = []
    for i in range(start, start + size):
        updates.append(f"student(s{i})")
        if attend:
            updates.append(f"attends(s{i}, ddb)")
    return Transaction(updates)

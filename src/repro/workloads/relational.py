"""Relational (rule-free) workload: the E1 benchmark substrate.

An employee/department schema with the constraint mix classical
integrity papers discuss:

* inclusion dependencies — ``works_in ⊆ employee × department``;
* a domain constraint    — salary bands come from a fixed set;
* a guarded existential  — every department has at least one member;
* a key-style FD         — one salary band per employee (``same``-encoded).

Databases are generated satisfied-by-construction, deterministically
from a seed; update streams mix harmless and violating updates with a
configurable violation rate so both code paths get exercised.
"""

from __future__ import annotations

import random
from typing import List

from repro.datalog.database import DeductiveDatabase
from repro.logic.formulas import Atom, Literal
from repro.logic.terms import Constant

SALARY_BANDS = ("junior", "senior", "principal")

CONSTRAINTS = (
    # Inclusion dependencies.
    "forall E, D: works_in(E, D) -> employee(E)",
    "forall E, D: works_in(E, D) -> department(D)",
    # Salary band domain + totality over employees.
    "forall E, B: salary(E, B) -> band(B)",
    "forall E: employee(E) -> exists B: band(B) and salary(E, B)",
    # Every department is staffed.
    "forall D: department(D) -> exists E: employee(E) and works_in(E, D)",
    # FD: at most one band per employee, with an explicit same/2 guard.
    "forall [E, B1, B2]: salary(E, B1) and salary(E, B2) -> same(B1, B2)",
)


class RelationalWorkload:
    """Deterministic generator of satisfied databases and update streams."""

    def __init__(
        self,
        n_employees: int,
        n_departments: int = 0,
        seed: int = 0,
    ):
        self.n_employees = n_employees
        self.n_departments = n_departments or max(2, n_employees // 10)
        self.seed = seed

    def build(self) -> DeductiveDatabase:
        rng = random.Random(self.seed)
        db = DeductiveDatabase()
        for band in SALARY_BANDS:
            db.add_fact(Atom("band", (Constant(band),)))
            db.add_fact(Atom("same", (Constant(band), Constant(band))))
        departments = [f"d{i}" for i in range(self.n_departments)]
        for dept in departments:
            db.add_fact(Atom("department", (Constant(dept),)))
        for i in range(self.n_employees):
            emp = f"e{i}"
            db.add_fact(Atom("employee", (Constant(emp),)))
            db.add_fact(
                Atom(
                    "salary",
                    (Constant(emp), Constant(rng.choice(SALARY_BANDS))),
                )
            )
            # Staff departments round-robin first so each gets someone.
            dept = departments[i % self.n_departments] if i < len(
                departments
            ) else rng.choice(departments)
            db.add_fact(Atom("works_in", (Constant(emp), Constant(dept))))
        for text in CONSTRAINTS:
            db.add_constraint(text)
        if self.n_employees < self.n_departments:
            raise ValueError(
                "need at least one employee per department to build a "
                "satisfied database"
            )
        return db

    def update_stream(
        self, count: int, violation_rate: float = 0.3, seed: int = 1
    ) -> List[Literal]:
        """A mix of harmless and violating single-fact updates.

        Violating updates: inserting ``works_in`` for an unknown
        employee (inclusion), an employee without salary (totality),
        deleting a department's last member's membership is *not*
        generated (needs knowledge of staffing); unknown-band salaries
        cover the domain constraint.
        """
        rng = random.Random(seed)
        updates: List[Literal] = []
        for i in range(count):
            if rng.random() < violation_rate:
                kind = rng.randrange(3)
                if kind == 0:
                    # Inclusion violation: ghost employee.
                    updates.append(
                        Literal(
                            Atom(
                                "works_in",
                                (Constant(f"ghost{i}"), Constant("d0")),
                            )
                        )
                    )
                elif kind == 1:
                    # Totality violation: employee without salary.
                    updates.append(
                        Literal(Atom("employee", (Constant(f"new{i}"),)))
                    )
                else:
                    # Domain violation: unknown band.
                    emp = f"e{rng.randrange(self.n_employees)}"
                    updates.append(
                        Literal(
                            Atom(
                                "salary",
                                (Constant(emp), Constant("imaginary")),
                            )
                        )
                    )
            else:
                kind = rng.randrange(2)
                if kind == 0:
                    # Harmless: move an existing employee to a department.
                    emp = f"e{rng.randrange(self.n_employees)}"
                    dept = f"d{rng.randrange(self.n_departments)}"
                    updates.append(
                        Literal(
                            Atom("works_in", (Constant(emp), Constant(dept)))
                        )
                    )
                else:
                    # Harmless: delete a salary fact of nobody (no-op) or
                    # delete a non-last works_in — keep it simple with a
                    # guaranteed no-op delete.
                    updates.append(
                        Literal(
                            Atom(
                                "works_in",
                                (Constant(f"e{i}x"), Constant("d0")),
                            ),
                            False,
                        )
                    )
        return updates


def make_relational_database(
    n_employees: int, n_departments: int = 0, seed: int = 0
) -> DeductiveDatabase:
    """Convenience wrapper used by benches and examples."""
    return RelationalWorkload(n_employees, n_departments, seed).build()

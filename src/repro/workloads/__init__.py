"""Workload generators for the benchmark harness.

The paper reports relative timings on unpublished workloads ("base
relations with a few dozen of tuples", "well-known benchmark examples
from the theorem-proving literature"). These modules reconstruct
deterministic, seeded equivalents at parameterized scale:

* :mod:`relational`        — employee/department schema, FD + inclusion
  + domain constraints, valid/violating update streams (E1);
* :mod:`deductive`         — rule-bearing scenarios from Section 3
  (irrelevant-induced-update fanout, rule chains, the university
  transaction scenario, recursive ancestor) (E2–E4, E8);
* :mod:`theorem_proving`   — Section 5's example and the classical
  model-generation problems the SATCHMO line of work used (steamroller,
  pigeonhole, graph colouring, serial orders) (E5–E7).
"""

from repro.workloads.relational import (
    RelationalWorkload,
    make_relational_database,
)
from repro.workloads.orders import OrdersWorkload, make_orders_database
from repro.workloads.deductive import (
    fanout_database,
    rule_chain_database,
    ancestor_database,
    university_database,
    university_transaction,
)
from repro.workloads.theorem_proving import (
    SECTION5,
    SECTION5_WEAKENED,
    cycle_coloring,
    pigeonhole,
    serial_order,
    steamroller,
)

__all__ = [
    "OrdersWorkload",
    "RelationalWorkload",
    "SECTION5",
    "SECTION5_WEAKENED",
    "ancestor_database",
    "cycle_coloring",
    "fanout_database",
    "make_orders_database",
    "make_relational_database",
    "pigeonhole",
    "rule_chain_database",
    "serial_order",
    "steamroller",
    "university_database",
    "university_transaction",
]

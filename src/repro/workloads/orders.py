"""Referential-integrity workload: customers, orders, line items.

A deletion-heavy scenario complementing the payroll workload: the
schema chains inclusion dependencies (line items reference orders,
orders reference customers) and derives order status through rules, so
deletions cascade through both the constraint graph and the rule graph
— the hardest update class for integrity maintenance.
"""

from __future__ import annotations

import random
from typing import List

from repro.datalog.database import DeductiveDatabase
from repro.logic.formulas import Atom, Literal
from repro.logic.terms import Constant

CONSTRAINTS = (
    # Referential chain.
    "forall O, C: order_by(O, C) -> customer(C)",
    "forall L, O: item_of(L, O) -> exists C: order_by(O, C)",
    # Orders must have content.
    "forall O, C: order_by(O, C) -> exists L: item_of(L, O)",
    # Derived status discipline: shipped orders are not open.
    "forall O: shipped(O) -> not open_order(O)",
)

RULES = (
    "open_order(O) :- order_by(O, C), not dispatched(O)",
    "shipped(O) :- dispatched(O)",
)


class OrdersWorkload:
    """Seeded generator of a consistent orders database."""

    def __init__(self, n_customers: int, orders_per_customer: int = 2,
                 items_per_order: int = 2, seed: int = 0):
        self.n_customers = n_customers
        self.orders_per_customer = orders_per_customer
        self.items_per_order = items_per_order
        self.seed = seed

    def build(self) -> DeductiveDatabase:
        rng = random.Random(self.seed)
        db = DeductiveDatabase()
        for rule in RULES:
            db.add_rule(rule)
        item_counter = 0
        for c in range(self.n_customers):
            customer = Constant(f"cust{c}")
            db.add_fact(Atom("customer", (customer,)))
            for o in range(self.orders_per_customer):
                order = Constant(f"ord{c}_{o}")
                db.add_fact(Atom("order_by", (order, customer)))
                for _ in range(self.items_per_order):
                    item = Constant(f"item{item_counter}")
                    item_counter += 1
                    db.add_fact(Atom("item_of", (item, order)))
                if rng.random() < 0.5:
                    db.add_fact(Atom("dispatched", (order,)))
        for text in CONSTRAINTS:
            db.add_constraint(text)
        return db

    def deletion_stream(self, count: int, seed: int = 1) -> List[Literal]:
        """Single-fact deletions: some safe (spare line items), some
        violating (last item of an order, a referenced customer)."""
        rng = random.Random(seed)
        out: List[Literal] = []
        for i in range(count):
            kind = rng.randrange(3)
            c = rng.randrange(self.n_customers)
            o = rng.randrange(self.orders_per_customer)
            if kind == 0:
                # Safe when the order has >= 2 items: delete one item.
                item_index = (
                    (c * self.orders_per_customer + o)
                    * self.items_per_order
                )
                out.append(
                    Literal(
                        Atom(
                            "item_of",
                            (
                                Constant(f"item{item_index}"),
                                Constant(f"ord{c}_{o}"),
                            ),
                        ),
                        False,
                    )
                )
            elif kind == 1:
                # Violating: delete a referenced customer.
                out.append(
                    Literal(Atom("customer", (Constant(f"cust{c}"),)), False)
                )
            else:
                # Violating: delete the order_by link while items remain.
                out.append(
                    Literal(
                        Atom(
                            "order_by",
                            (
                                Constant(f"ord{c}_{o}"),
                                Constant(f"cust{c}"),
                            ),
                        ),
                        False,
                    )
                )
        return out


def make_orders_database(n_customers: int, seed: int = 0) -> DeductiveDatabase:
    return OrdersWorkload(n_customers, seed=seed).build()

"""Transactions: multi-fact updates ([BRY 87] extension, Section 3.2).

A transaction is a sequence of single-fact updates applied atomically.
Definition 1 applies literal by literal, so the observable effect is the
*net* effect: a later update on the same fact overrides an earlier one.
All checker methods normalize transactions through :func:`net_effect`
before compiling or evaluating anything, which keeps the delta base
cases consistent with the overlay the ``new`` evaluator sees.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Union

from repro.logic.formulas import Atom, Literal
from repro.logic.parser import parse_literal


def net_effect(updates: Iterable[Literal]) -> List[Literal]:
    """The net single-fact updates of a sequence: per atom, the last
    update wins; insert-then-delete (and vice versa) collapse."""
    last: Dict[Atom, Literal] = {}
    order: List[Atom] = []
    for update in updates:
        if update.atom not in last:
            order.append(update.atom)
        last[update.atom] = update
    return [last[atom] for atom in order]


class Transaction:
    """An ordered multi-fact update with convenience parsing."""

    __slots__ = ("updates",)

    def __init__(self, updates: Sequence[Union[str, Literal]]):
        parsed: List[Literal] = []
        for update in updates:
            literal = (
                parse_literal(update) if isinstance(update, str) else update
            )
            if not literal.atom.is_ground():
                raise ValueError(f"transaction updates must be ground: {literal}")
            parsed.append(literal)
        self.updates = tuple(parsed)

    def net(self) -> List[Literal]:
        return net_effect(self.updates)

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.updates)

    def __len__(self) -> int:
        return len(self.updates)

    def __repr__(self) -> str:
        inner = ", ".join(str(u) for u in self.updates)
        return f"Transaction([{inner}])"

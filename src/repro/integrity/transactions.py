"""Transactions: multi-fact updates ([BRY 87] extension, Section 3.2).

A transaction is a sequence of single-fact updates applied atomically.
Definition 1 applies literal by literal, so the observable effect is the
*net* effect: a later update on the same fact overrides an earlier one.
All checker methods normalize transactions through :func:`net_effect`
before compiling or evaluating anything, which keeps the delta base
cases consistent with the overlay the ``new`` evaluator sees.

:class:`Transaction` is the *one* update representation of the library:
the checker methods, the delta evaluator, the DRed-maintained model,
the CLI and the service commit path all coerce their inputs through
:meth:`Transaction.coerce`, so "a set of updates" means the same thing
— same grounding validation, same net-effect semantics, same surface
serialization — at every layer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Union

from repro.logic.formulas import Atom, Literal
from repro.logic.parser import parse_literal


def net_effect(updates: Iterable[Literal]) -> List[Literal]:
    """The net single-fact updates of a sequence: per atom, the last
    update wins; insert-then-delete (and vice versa) collapse."""
    last: Dict[Atom, Literal] = {}
    order: List[Atom] = []
    for update in updates:
        if update.atom not in last:
            order.append(update.atom)
        last[update.atom] = update
    return [last[atom] for atom in order]


class Transaction:
    """An ordered multi-fact update with convenience parsing."""

    __slots__ = ("updates",)

    def __init__(self, updates: Sequence[Union[str, Literal]]):
        parsed: List[Literal] = []
        for update in updates:
            literal = (
                parse_literal(update) if isinstance(update, str) else update
            )
            if not literal.atom.is_ground():
                raise ValueError(f"transaction updates must be ground: {literal}")
            parsed.append(literal)
        self.updates = tuple(parsed)

    @classmethod
    def coerce(
        cls,
        updates: Union[
            str, Literal, "Transaction", Sequence[Union[str, Literal]]
        ],
    ) -> "Transaction":
        """The transaction denoted by *updates*, whatever their surface
        form: a literal (parsed or source text), a sequence of either,
        or an existing transaction (returned as-is)."""
        if isinstance(updates, Transaction):
            return updates
        if isinstance(updates, (str, Literal)):
            return cls([updates])
        return cls(list(updates))

    @classmethod
    def merge(cls, transactions: Sequence["Transaction"]) -> "Transaction":
        """The concatenation of *transactions* as one transaction.

        Order-sensitive in general (net effect is last-wins); callers
        merging *concurrent* transactions must ensure their write keys
        are disjoint, in which case the merge is order-independent."""
        updates: List[Literal] = []
        for transaction in transactions:
            updates.extend(transaction.updates)
        return cls(updates)

    def net(self) -> List[Literal]:
        return net_effect(self.updates)

    # -- derived views -----------------------------------------------------------

    def added(self) -> List[Atom]:
        """Atoms the net effect inserts."""
        return [u.atom for u in self.net() if u.positive]

    def removed(self) -> List[Atom]:
        """Atoms the net effect deletes."""
        return [u.atom for u in self.net() if not u.positive]

    def predicates(self) -> frozenset:
        """Extensional predicates the transaction writes."""
        return frozenset(u.atom.pred for u in self.updates)

    def write_keys(self) -> frozenset:
        """Predicate-key granularity write set: one key per written
        ground atom. Two transactions with disjoint write keys commute
        — the conflict test the service's optimistic commit uses."""
        return frozenset(u.atom for u in self.updates)

    # -- serialization -----------------------------------------------------------

    def to_strings(self) -> List[str]:
        """The updates as surface-syntax literals (``p(a)`` /
        ``not q(b)``) — re-parseable by :meth:`coerce`; the WAL and the
        wire protocol's transaction payload."""
        from repro.logic.unparse import unparse_atom

        return [
            unparse_atom(u.atom) if u.positive else f"not {unparse_atom(u.atom)}"
            for u in self.updates
        ]

    # -- container protocol ------------------------------------------------------

    def __iter__(self) -> Iterator[Literal]:
        return iter(self.updates)

    def __len__(self) -> int:
        return len(self.updates)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Transaction) and self.updates == other.updates

    def __hash__(self) -> int:
        return hash(self.updates)

    def __repr__(self) -> str:
        inner = ", ".join(str(u) for u in self.updates)
        return f"Transaction([{inner}])"

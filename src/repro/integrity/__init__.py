"""Integrity maintenance (Section 3 of the paper).

The pipeline, mirroring the paper's two-phase architecture:

*Compile phase* (no fact access):
  :mod:`relevance`          — which constraints an update can affect (Def. 2)
  :mod:`instances`          — simplified constraint instances (Def. 3)
  :mod:`dependencies`       — direct dependencies and potential updates (Def. 5)
  :mod:`update_constraints` — update constraints (Def. 6)

*Evaluation phase* (fact access through the query engines):
  :mod:`new_eval`   — the ``new`` meta-interpreter: truth in U(D), simulated
  :mod:`delta_eval` — the ``delta`` meta-interpreter: induced updates (Def. 4)
  :mod:`checker`    — the methods: full check, [NICO 79] (Prop. 1), the
                      paper's method (Prop. 3), and the [LLOY 86] /
                      [DECK 86]+[KOWA 87] baselines
  :mod:`transactions` — multi-fact transactions ([BRY 87] extension)
"""

from repro.integrity.relevance import RelevanceIndex, relevant_constraints
from repro.integrity.instances import (
    SimplifiedInstance,
    simplified_instances,
    top_universal_variables,
)
from repro.integrity.dependencies import (
    DependencyIndex,
    DirectDependency,
    potential_updates,
)
from repro.integrity.update_constraints import (
    CompiledCheck,
    UpdateConstraint,
    compile_update_constraints,
)
from repro.integrity.new_eval import NewEvaluator
from repro.integrity.delta_eval import DeltaEvaluator
from repro.integrity.checker import (
    CheckResult,
    IntegrityChecker,
    Violation,
)
from repro.integrity.transactions import Transaction, net_effect
from repro.integrity.evolution import (
    ConstraintAdditionResult,
    assess_constraint_addition,
)

__all__ = [
    "CheckResult",
    "CompiledCheck",
    "ConstraintAdditionResult",
    "assess_constraint_addition",
    "DeltaEvaluator",
    "DependencyIndex",
    "DirectDependency",
    "IntegrityChecker",
    "NewEvaluator",
    "RelevanceIndex",
    "SimplifiedInstance",
    "Transaction",
    "UpdateConstraint",
    "Violation",
    "compile_update_constraints",
    "net_effect",
    "potential_updates",
    "relevant_constraints",
    "simplified_instances",
    "top_universal_variables",
]

"""The ``new`` meta-interpreter (Section 3.3.2).

``new(U, F)`` evaluates F *as if* the update had been applied, without
mutating the stored database. The paper implements this as a Prolog
meta-interpreter re-deriving resolution inline; the equivalent (and
idiomatic) construction here is formula evaluation over an *overlay*
database — the base facts plus the update diff — using whichever query
engine the database provides. Recursive rules are therefore handled
exactly under the paper's proviso: "provided the database
query-answering system has this capacity".
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

from repro.datalog.database import DeductiveDatabase
from repro.logic.formulas import Atom, Formula, Literal
from repro.logic.substitution import Substitution


class NewEvaluator:
    """Evaluation of formulas over the simulated updated state U(D)."""

    __slots__ = ("database", "updates", "view", "engine", "config")

    def __init__(
        self,
        database: DeductiveDatabase,
        updates: Union[Literal, Sequence[Literal]],
        strategy: Optional[str] = None,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        supplementary: Optional[bool] = None,
        *,
        config=None,
    ):
        from repro.config import resolve_config

        config = resolve_config(
            config if config is not None else strategy,
            plan=plan,
            exec_mode=exec_mode,
            supplementary=supplementary,
            warn=False,
        )
        if isinstance(updates, Literal):
            updates = [updates]
        self.config = config
        self.database = database
        self.updates = tuple(updates)
        self.view = database.updated(list(updates))
        self.engine = self.view.engine(config=config)

    def evaluate(
        self, formula: Formula, binding: Substitution = Substitution.empty()
    ) -> bool:
        """new(U, F): truth of F in U(D)."""
        return self.engine.evaluate(formula, binding)

    def holds(self, atom: Atom) -> bool:
        """new(U, A) for a ground atom."""
        return self.engine.holds(atom)

    def match_atom(self, pattern: Atom) -> Iterator[Substitution]:
        """Answers for an atom pattern in U(D)."""
        return self.engine.match_atom(pattern)

    def violations(
        self, formula: Formula, binding: Substitution = Substitution.empty()
    ) -> Iterator[Substitution]:
        """Witnesses of falsity of F in U(D)."""
        return self.engine.violations(formula, binding)

    @property
    def lookup_count(self) -> int:
        """Atom-level lookups served against the simulated state — the
        benchmarks' 'subquery' cost proxy."""
        return self.engine.lookup_count

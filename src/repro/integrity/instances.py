"""Simplified constraint instances (Definition 3) — the [NICO 79] core.

Given a constraint C relevant to an update U through a literal
occurrence L:

1. σ = mgu(L, complement(U));
2. τ = σ restricted to the *top-universal* variables of C — those bound
   by a universal quantifier not governed by (nested inside) an
   existential one;
3. the simplified instance is Cτ with quantifiers dropped for grounded
   variables, the occurrence Lτ replaced by ``false`` when it equals the
   complement of U, and absorption applied.

Evaluating the simplified instances of all constraints relevant to U
over U(D) suffices to decide integrity (Proposition 1 for relational
databases; Propositions 2/3 extend this through induced updates).

Updates here may be *patterns* (non-ground literals): the compile phase
(Definition 6) calls this module with potential updates, producing
instances whose free variables are shared with the trigger literal.
"""

from __future__ import annotations

from typing import List, Set

from repro.datalog.database import Constraint
from repro.logic.formulas import (
    FALSE,
    TRUE,
    And,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Literal,
    Or,
    TrueFormula,
    walk_literals,
)
from repro.logic.normalize import simplify
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable, fresh_variable
from repro.logic.unify import mgu


class SimplifiedInstance:
    """A simplified instance of a constraint w.r.t. an update (pattern).

    ``formula``  — the instance; its free variables (if any) are bound by
                   matching a ground induced update against ``trigger``.
    ``trigger``  — the update literal after unification (``Lτ``'s
                   complement-side, i.e. the update the instance guards).
    ``tau``      — the defining substitution of Definition 3.
    """

    __slots__ = ("constraint", "formula", "trigger", "tau")

    def __init__(
        self,
        constraint: Constraint,
        formula: Formula,
        trigger: Literal,
        tau: Substitution,
    ):
        self.constraint = constraint
        self.formula = formula
        self.trigger = trigger
        self.tau = tau

    def instantiate(self, binding: Substitution) -> Formula:
        """The ground instance selected by a delta/new answer binding."""
        return self.formula.substitute(binding)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SimplifiedInstance)
            and self.constraint.id == other.constraint.id
            and self.formula == other.formula
            and self.trigger == other.trigger
        )

    def __hash__(self) -> int:
        return hash((self.constraint.id, self.formula, self.trigger))

    def __repr__(self) -> str:
        return (
            f"SimplifiedInstance({self.constraint.id}: {self.formula} "
            f"[on {self.trigger}])"
        )


def top_universal_variables(formula: Formula) -> Set[Variable]:
    """Variables bound by universal quantifiers *not governed by* an
    existential quantifier (miniscope form makes governance coincide
    with syntactic nesting — Section 2)."""
    out: Set[Variable] = set()
    _collect_top_universals(formula, out)
    return out


def _collect_top_universals(formula: Formula, out: Set[Variable]) -> None:
    if isinstance(formula, Forall):
        out.update(formula.variables_tuple)
        _collect_top_universals(formula.matrix, out)
    elif isinstance(formula, (And, Or)):
        for child in formula.children:
            _collect_top_universals(child, out)
    # Exists: stop — universals below are governed.


def _rename_formula_apart(
    formula: Formula, avoid: Set[Variable]
) -> Formula:
    clashes = formula.variables() & avoid
    if not clashes:
        return formula
    renaming = Substitution({v: fresh_variable(v.name) for v in clashes})
    return _rename_all(formula, renaming)


def _rename_all(formula: Formula, renaming: Substitution) -> Formula:
    """Apply a variable renaming to *all* occurrences, bound and free."""
    if isinstance(formula, Literal):
        return formula.substitute(renaming)
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, (And, Or)):
        return type(formula)(_rename_all(c, renaming) for c in formula.children)
    if isinstance(formula, (Exists, Forall)):
        new_vars = [
            renaming.apply_term(v) for v in formula.variables_tuple
        ]
        new_restriction = (
            None
            if formula.restriction is None
            else tuple(a.substitute(renaming) for a in formula.restriction)
        )
        return type(formula)(
            new_vars, new_restriction, _rename_all(formula.matrix, renaming)
        )
    raise ValueError(f"unexpected node: {formula!r}")


def _instantiate(formula: Formula, tau: Substitution) -> Formula:
    """Apply the defining substitution, *dropping* quantifiers for the
    variables it binds (Definition 3, step b, first bullet)."""
    if isinstance(formula, Literal):
        return formula.substitute(tau)
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, (And, Or)):
        return type(formula).make(
            [_instantiate(c, tau) for c in formula.children]
        )
    if isinstance(formula, Exists):
        # Existential variables are never in tau's domain (they are not
        # top-universal); only the free occurrences inside change.
        restriction = tuple(a.substitute(tau) for a in formula.restriction)
        return Exists(
            formula.variables_tuple, restriction, _instantiate(formula.matrix, tau)
        )
    if isinstance(formula, Forall):
        remaining = [v for v in formula.variables_tuple if v not in tau]
        restriction = tuple(a.substitute(tau) for a in formula.restriction)
        matrix = _instantiate(formula.matrix, tau)
        if remaining:
            return Forall(remaining, restriction, matrix)
        # All variables grounded: unfold the restricted-universal reading
        # ¬A₁ ∨ … ∨ ¬Aₘ ∨ Q.
        negated = [Literal(a, False) for a in restriction]
        return Or.make(negated + [matrix])
    raise ValueError(f"unexpected node: {formula!r}")


def _replace_false(formula: Formula, falsified: Literal) -> Formula:
    """Replace occurrences of *falsified* (a literal known false in
    U(D)) by ``false`` (Definition 3, step b, second bullet)."""
    if isinstance(formula, Literal):
        return FALSE if formula == falsified else formula
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, (And, Or)):
        return type(formula).make(
            [_replace_false(c, falsified) for c in formula.children]
        )
    if isinstance(formula, Exists):
        # A restriction atom occurs positively: if it is the falsified
        # literal, the whole existential instance is false.
        if falsified.positive and falsified.atom in formula.restriction:
            return FALSE
        return Exists(
            formula.variables_tuple,
            formula.restriction,
            _replace_false(formula.matrix, falsified),
        )
    if isinstance(formula, Forall):
        # A restriction atom occurs negatively (¬A in the unfolded
        # disjunction). Removing it is sound only if the remaining atoms
        # still cover the quantified variables.
        if not falsified.positive and falsified.atom in formula.restriction:
            remaining = tuple(
                a for a in formula.restriction if a != falsified.atom
            )
            covered: Set[Variable] = set()
            for atom in remaining:
                covered.update(atom.variables())
            if remaining and all(
                v in covered for v in formula.variables_tuple
            ):
                return Forall(
                    formula.variables_tuple,
                    remaining,
                    _replace_false(formula.matrix, falsified),
                )
        return Forall(
            formula.variables_tuple,
            formula.restriction,
            _replace_false(formula.matrix, falsified),
        )
    raise ValueError(f"unexpected node: {formula!r}")


def simplified_instances(
    constraint: Constraint, update: Literal
) -> List[SimplifiedInstance]:
    """All simplified instances of *constraint* w.r.t. *update*
    (Definition 3). One instance per unifiable literal occurrence;
    duplicates and trivially-true instances are dropped.

    *update* may be a pattern (non-ground); the returned instances then
    carry free variables shared with their ``trigger``.
    """
    formula = _rename_formula_apart(
        constraint.formula, update.atom.variables()
    )
    complement = update.complement()
    top_universals = top_universal_variables(formula)
    results: List[SimplifiedInstance] = []
    seen = set()
    for occurrence in walk_literals(formula):
        if occurrence.positive != complement.positive:
            continue
        sigma = mgu(occurrence, complement)
        if sigma is None:
            continue
        tau = sigma.restrict(top_universals)
        instance = _instantiate(formula, tau)
        falsified = complement.substitute(sigma)
        instance = simplify(_replace_false(instance, falsified))
        if instance == TRUE:
            continue  # trivially satisfied — nothing to evaluate
        trigger = update.substitute(sigma)
        key = (instance, trigger)
        if key in seen:
            continue
        seen.add(key)
        results.append(
            SimplifiedInstance(constraint, instance, trigger, tau)
        )
    return results

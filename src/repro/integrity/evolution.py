"""Schema evolution: the paper's uniform approach in one workflow.

Section 1: "Apart from preventing constraint violations caused by fact
or rule updates, one has to detect inconsistencies when updating the
constraint set as well. If a newly introduced constraint is not
satisfied in the current database, one can try to enforce it by means
of further updates to the factual part of the database. However, any
attempt to do so will fail, if the new constraint is not compatible
with the already existing ones."

:func:`assess_constraint_addition` implements exactly that triage:

1. evaluate the candidate constraint over the current database —
   if satisfied, accept;
2. otherwise, check *finite satisfiability* of the extended constraint
   set together with the rules —
   if unsatisfiable, no sequence of fact updates can ever repair the
   database: reject the constraint;
   if satisfiable, report the violation witnesses (the repair targets)
   and a sample database demonstrating consistency.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.datalog.database import Constraint, DeductiveDatabase
from repro.logic.formulas import Formula
from repro.logic.normalize import normalize_constraint
from repro.logic.parser import parse_formula
from repro.logic.safety import check_constraint_safety
from repro.satisfiability.checker import (
    SatisfiabilityChecker,
    SatResult,
)

ACCEPTED = "accepted"
REPAIRABLE = "repairable"
INCOMPATIBLE = "incompatible"
UNDECIDED = "undecided"


class ConstraintAdditionResult:
    """Triage verdict for a candidate constraint.

    ``status`` is one of:

    * ``accepted``     — already satisfied; safe to add as-is;
    * ``repairable``   — violated, but the extended set has a finite
      model: fact updates can restore consistency (``witnesses`` lists
      the violating instances, ``sample_model`` a consistent example);
    * ``incompatible`` — violated and the extended set is
      unsatisfiable: no factual repair can ever succeed;
    * ``undecided``    — violated, and the bounded satisfiability
      search could not settle compatibility (semi-decidability).

    ``diagnostics`` lists the static analyzer's
    :class:`repro.analysis.Diagnostic` findings for the candidate
    (e.g. the ``R006`` that short-circuited triage, or a ``W007``
    tautology note on an accepted constraint).
    """

    __slots__ = (
        "status",
        "constraint",
        "witnesses",
        "satisfiability",
        "diagnostics",
    )

    def __init__(
        self,
        status: str,
        constraint: Constraint,
        witnesses: List,
        satisfiability: Optional[SatResult],
        diagnostics: Optional[List] = None,
    ):
        self.status = status
        self.constraint = constraint
        self.witnesses = witnesses
        self.satisfiability = satisfiability
        self.diagnostics = list(diagnostics) if diagnostics else []

    @property
    def sample_model(self):
        if self.satisfiability is not None:
            return self.satisfiability.model
        return None

    def __repr__(self) -> str:
        return (
            f"ConstraintAdditionResult({self.status}: "
            f"{self.constraint.formula})"
        )


def assess_constraint_addition(
    database: DeductiveDatabase,
    constraint: Union[str, Formula],
    id: Optional[str] = None,
    max_fresh_constants: int = 8,
    max_levels: int = 120,
) -> ConstraintAdditionResult:
    """Triage a candidate constraint against *database* (which is not
    modified). See the module docstring for the decision procedure."""
    source = constraint if isinstance(constraint, str) else None
    formula = (
        parse_formula(constraint) if isinstance(constraint, str) else constraint
    )
    normalized = normalize_constraint(formula)
    check_constraint_safety(normalized)
    if id is None:
        id = f"candidate{len(database.constraints) + 1}"
    candidate = Constraint(id, normalized, source)

    # Syntactic triage first (lazy import: repro.analysis sits above
    # the integrity layer). A constraint the analyzer proves
    # unsatisfiable — it normalizes to FALSE or conjoins a ground atom
    # with its own negation — is incompatible with *any* database, so
    # the bounded satisfiability search would burn its whole budget
    # confirming the obvious. Short-circuit it.
    from repro.analysis.checks import constraint_triviality
    from repro.analysis.diagnostics import Diagnostic

    diagnostics: List = []
    verdict = constraint_triviality(normalized)
    if verdict is not None:
        code, message = verdict
        diagnostics.append(Diagnostic(code, message, constraint=id))
        if code == "R006":
            return ConstraintAdditionResult(
                INCOMPATIBLE, candidate, [], None, diagnostics=diagnostics
            )

    engine = database.engine()
    if engine.evaluate(normalized):
        return ConstraintAdditionResult(
            ACCEPTED, candidate, [], None, diagnostics=diagnostics
        )

    witnesses = list(engine.violations(normalized))
    extended = list(database.constraints) + [candidate]
    checker = SatisfiabilityChecker(extended, database.program)
    sat = checker.check(
        max_fresh_constants=max_fresh_constants, max_levels=max_levels
    )
    if sat.satisfiable:
        status = REPAIRABLE
    elif sat.unsatisfiable:
        status = INCOMPATIBLE
    else:
        status = UNDECIDED
    return ConstraintAdditionResult(
        status, candidate, witnesses, sat, diagnostics=diagnostics
    )

"""The integrity checking methods — the paper's and every baseline.

All methods answer the same question: *given that D satisfies its
constraints, does U(D)?* They differ in how much work they do:

``check_full``
    Re-evaluate every constraint over U(D). Ground truth and the
    baseline every optimization is measured against.

``check_nicolas``
    [NICO 79] / Proposition 1: evaluate only the simplified instances of
    constraints relevant to the *explicit* updates. Complete for
    relational databases (no rules); in deductive databases it misses
    violations reached through induced updates — kept both as the
    relational method (E1) and as an ablation demonstrating why
    Proposition 2 is needed.

``check_bdm``  (alias ``check``)
    The paper's two-phase method (Proposition 3): compile potential
    updates and update constraints without fact access, then evaluate
    ``¬delta(U, Lτ) ∨ new(U, s(C))`` with the goal-directed delta.

``check_interleaved``
    [DECK 86] / [KOWA 87] style (Proposition 2 applied naively): compute
    *all* induced updates eagerly, and for each one evaluate the
    simplified instances of relevant constraints. Same verdicts; pays
    for induced updates no constraint cares about (Section 3.2).

``check_lloyd``
    [LLOY 86] style: update constraints guarded by ``new`` instead of
    ``delta`` — for a positive trigger the guard enumerates *all* facts
    of the trigger pattern true in U(D), not just the changed ones; for
    a negative trigger the guard degenerates to re-evaluating the parent
    constraint over U(D) (which is exactly what ¬new(¬L) ∨ s(C) amounts
    to after universal closure).

Every result carries a ``stats`` dict (atom lookups, instances
evaluated, induced updates computed) so the benchmarks can report the
cost model the paper argues about, not just wall time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Union

from repro.datalog.database import DeductiveDatabase
from repro.integrity.delta_eval import DeltaEvaluator
from repro.integrity.dependencies import DependencyIndex
from repro.integrity.instances import simplified_instances
from repro.integrity.new_eval import NewEvaluator
from repro.integrity.relevance import RelevanceIndex
from repro.integrity.transactions import Transaction
from repro.integrity.update_constraints import (
    CompiledCheck,
    compile_update_constraints,
)
from repro.logic.formulas import Formula, Literal
from repro.obs.trace import current_trace
UpdateInput = Union[str, Literal, Transaction, Sequence[Union[str, Literal]]]

#: The checking methods :meth:`IntegrityChecker.admit` dispatches over —
#: one name per ``check_*`` implementation (the CLI exposes the same set).
METHODS = ("bdm", "full", "nicolas", "interleaved", "lloyd")


class Violation:
    """One violated constraint instance."""

    __slots__ = ("constraint_id", "instance", "trigger")

    def __init__(
        self,
        constraint_id: str,
        instance: Formula,
        trigger: Optional[Literal] = None,
    ):
        self.constraint_id = constraint_id
        self.instance = instance
        self.trigger = trigger

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Violation)
            and self.constraint_id == other.constraint_id
            and self.instance == other.instance
        )

    def __hash__(self) -> int:
        return hash((self.constraint_id, self.instance))

    def __repr__(self) -> str:
        via = f" via {self.trigger}" if self.trigger is not None else ""
        return f"Violation({self.constraint_id}: {self.instance}{via})"


class CheckResult:
    """Outcome of an integrity check plus its cost accounting."""

    __slots__ = ("ok", "violations", "stats", "method")

    def __init__(
        self,
        violations: List[Violation],
        stats: Dict[str, int],
        method: str,
    ):
        self.ok = not violations
        self.violations = violations
        self.stats = stats
        self.method = method

    def violated_constraint_ids(self) -> Set[str]:
        return {v.constraint_id for v in self.violations}

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return f"CheckResult({self.method}: {status}, stats={self.stats})"


def _normalize_updates(updates: UpdateInput) -> List[Literal]:
    """Every update surface form, through the one :class:`Transaction`
    type, to its net effect — the normal form all check methods and the
    service commit path share."""
    return Transaction.coerce(updates).net()


class IntegrityChecker:
    """Integrity maintenance front-end over a deductive database.

    The checker assumes (as all the propositions do) that the database
    currently satisfies its constraints; each ``check_*`` method decides
    whether the *updated* database still would, without applying the
    update.

    *strategy* selects the query engines used throughout — both the
    ``delta``/``new`` propagation state and the evaluation of residual
    constraint instances. ``"magic"`` makes the relevant-constraint
    phase demand-driven: each instantiated constraint query touches
    only the tuples the magic-sets rewrite demands for it, instead of
    materializing the full dependency closure of every predicate the
    constraint mentions. Both knobs are validated up front so a typo
    fails with a one-line error, not a traceback from deep inside
    evaluation.
    """

    def __init__(
        self,
        database: DeductiveDatabase,
        strategy=None,
        plan=None,
        exec_mode=None,
        supplementary=None,
        *,
        config=None,
    ):
        from repro.config import resolve_config

        config = resolve_config(
            config if config is not None else strategy,
            plan=plan,
            exec_mode=exec_mode,
            supplementary=supplementary,
        )
        self.database = database
        self.config = config
        # Loose-knob attributes kept for backward compatibility;
        # `config` is the source of truth.
        self.strategy = config.strategy
        self.plan = config.plan
        self.exec_mode = config.exec_mode
        self.join_algo = config.join_algo
        # Prefix sharing in the magic rewrite (inert unless
        # strategy="magic"); False keeps the classic rewrite oracle.
        self.supplementary = config.supplementary
        # Fact-independent structures, shared across checks.
        self.dependency_index = DependencyIndex(database.program)
        self.relevance = RelevanceIndex(database.constraints)

    # -- the paper's method ------------------------------------------------------------

    def check(self, updates: UpdateInput) -> CheckResult:
        """Alias for :meth:`check_bdm` — the paper's method."""
        return self.check_bdm(updates)

    def admit(
        self, transaction: Transaction, method: str = "bdm"
    ) -> CheckResult:
        """Transaction-scoped commit gate: would applying *transaction*
        keep the constraints satisfied? This is the entry point the
        service's transaction manager calls before logging a commit;
        *method* selects any of the ``check_*`` implementations (the
        default is the paper's)."""
        if method not in METHODS:
            raise ValueError(
                f"unknown check method {method!r}; pick one of {METHODS}"
            )
        return getattr(self, f"check_{method}")(transaction)

    def check_bdm(
        self, updates: UpdateInput, share_evaluation: bool = True
    ) -> CheckResult:
        """Proposition 3: evaluate the compiled update constraints.

        With ``share_evaluation=False`` every residual instance is
        evaluated against a fresh engine, losing all common-subquery
        sharing — the per-instance mode Section 3.2 criticizes (used by
        the E4 benchmark as the degraded comparator).
        """
        updates = _normalize_updates(updates)
        trace = current_trace()
        if trace is None:
            compiled = self.compile(updates)
        else:
            with trace.phase("gate.compile"):
                compiled = self.compile(updates)
        stats: Dict[str, int] = {
            "potential_updates": len(compiled.potential),
            "update_constraints": len(compiled.update_constraints),
            "induced_updates": 0,
            "instances_evaluated": 0,
            "lookups": 0,
        }
        if not compiled.update_constraints:
            # No constraint can be affected: zero fact access.
            return CheckResult([], stats, "bdm")
        demanded = compiled.demanded_signatures()
        closure = self.dependency_index.backward_closure(demanded)
        delta = DeltaEvaluator(
            self.database,
            updates,
            index=self.dependency_index,
            restrict_to=closure,
            config=self.config,
        )
        fresh_engine = (
            None
            if share_evaluation
            else lambda: self.database.updated(updates).engine(
                config=self.config
            )
        )
        return self._evaluate_update_constraints(
            compiled, delta, stats, "bdm", fresh_engine
        )

    def _evaluate_update_constraints(
        self,
        compiled: CompiledCheck,
        delta: DeltaEvaluator,
        stats: Dict[str, int],
        method: str,
        fresh_engine=None,
    ) -> CheckResult:
        """The evaluation phase shared by fact- and rule-update checks:
        confront the compiled update constraints with the delta answers.
        ``fresh_engine``, when given, builds a new engine per residual
        instance (the no-sharing mode of the E4 benchmark)."""
        shared_engine = delta.new_engine
        violations: List[Violation] = []
        checked: Set[Formula] = set()
        for update_constraint in compiled.update_constraints:
            for binding in delta.answers(update_constraint.trigger):
                instance = update_constraint.instance.instantiate(binding)
                if instance in checked:
                    continue
                checked.add(instance)
                engine = shared_engine if fresh_engine is None else fresh_engine()
                satisfied = engine.evaluate(instance)
                if fresh_engine is not None:
                    stats["lookups"] += engine.lookup_count
                if not satisfied:
                    violations.append(
                        Violation(
                            update_constraint.constraint_id,
                            instance,
                            update_constraint.trigger.substitute(binding),
                        )
                    )
        stats["induced_updates"] = len(delta.induced_updates())
        stats["instances_evaluated"] = len(checked)
        stats["lookups"] += delta.lookup_count
        return CheckResult(violations, stats, method)

    def compile(self, updates: UpdateInput) -> CompiledCheck:
        """The fact-independent compile phase, exposed for precompilation
        of update patterns and for the benchmarks."""
        if not isinstance(updates, list):
            updates = _normalize_updates(updates)
        return compile_update_constraints(
            self.database.program,
            self.database.constraints,
            updates,
            relevance=self.relevance,
            index=self.dependency_index,
        )

    # -- baselines -----------------------------------------------------------------------

    def check_full(self, updates: UpdateInput) -> CheckResult:
        """Evaluate every constraint over U(D) from scratch."""
        updates = _normalize_updates(updates)
        view = self.database.updated(updates)
        engine = view.engine(config=self.config.replace(strategy="model"))
        violations = [
            Violation(c.id, c.formula)
            for c in self.database.constraints
            if not engine.evaluate(c.formula)
        ]
        stats = {
            "constraints_evaluated": len(self.database.constraints),
            "instances_evaluated": len(self.database.constraints),
            "lookups": engine.lookup_count,
        }
        return CheckResult(violations, stats, "full")

    def check_nicolas(self, updates: UpdateInput) -> CheckResult:
        """Proposition 1 — the relational method: simplified instances
        of constraints relevant to the explicit updates only. Complete
        iff no deduction rule connects the updates to the constraints."""
        updates = _normalize_updates(updates)
        new_eval = NewEvaluator(self.database, updates, config=self.config)
        violations: List[Violation] = []
        checked: Set[Formula] = set()
        for update in updates:
            for constraint in self.relevance.relevant_constraints(update):
                for instance in simplified_instances(constraint, update):
                    if instance.formula in checked:
                        continue
                    checked.add(instance.formula)
                    if not new_eval.evaluate(instance.formula):
                        violations.append(
                            Violation(
                                constraint.id,
                                instance.formula,
                                instance.trigger,
                            )
                        )
        stats = {
            "instances_evaluated": len(checked),
            "lookups": new_eval.lookup_count,
        }
        return CheckResult(violations, stats, "nicolas")

    def check_interleaved(self, updates: UpdateInput) -> CheckResult:
        """[DECK 86]/[KOWA 87] style: eagerly compute *all* induced
        updates, checking relevant simplified instances as each ground
        induced update surfaces."""
        updates = _normalize_updates(updates)
        delta = DeltaEvaluator(
            self.database,
            updates,
            index=self.dependency_index,
            restrict_to=None,  # the whole point: no goal direction
            config=self.config,
        )
        engine = delta.new_engine
        violations: List[Violation] = []
        checked: Set[Formula] = set()
        induced = delta.induced_updates()
        for literal in induced:
            for constraint in self.relevance.relevant_constraints(literal):
                for instance in simplified_instances(constraint, literal):
                    if instance.formula in checked:
                        continue
                    checked.add(instance.formula)
                    if not engine.evaluate(instance.formula):
                        violations.append(
                            Violation(
                                constraint.id,
                                instance.formula,
                                instance.trigger,
                            )
                        )
        stats = {
            "induced_updates": len(induced),
            "candidates_examined": delta.candidates_examined,
            "instances_evaluated": len(checked),
            "lookups": delta.lookup_count,
        }
        return CheckResult(violations, stats, "interleaved")

    def check_lloyd(self, updates: UpdateInput) -> CheckResult:
        """[LLOY 86] style: the same compiled update constraints, but
        guarded by ``new`` instead of ``delta``."""
        updates = _normalize_updates(updates)
        compiled = self.compile(updates)
        stats: Dict[str, int] = {
            "potential_updates": len(compiled.potential),
            "update_constraints": len(compiled.update_constraints),
            "instances_evaluated": 0,
            "guard_answers": 0,
            "lookups": 0,
        }
        if not compiled.update_constraints:
            return CheckResult([], stats, "lloyd")
        new_eval = NewEvaluator(self.database, updates, config=self.config)
        engine = new_eval.engine
        violations: List[Violation] = []
        checked: Set[Formula] = set()
        rechecked_constraints: Set[str] = set()
        for update_constraint in compiled.update_constraints:
            trigger = update_constraint.trigger
            if trigger.positive:
                # Guard new(U, Lτ): every instance true in U(D), changed
                # or not — the enumeration Section 3.3.3 calls out as the
                # considerable loss.
                for binding in engine.match_atom(trigger.atom):
                    stats["guard_answers"] += 1
                    instance = update_constraint.instance.instantiate(binding)
                    if instance in checked:
                        continue
                    checked.add(instance)
                    if not engine.evaluate(instance):
                        violations.append(
                            Violation(
                                update_constraint.constraint_id,
                                instance,
                                trigger.substitute(binding),
                            )
                        )
            else:
                # ¬new(U, ¬Lτ) ∨ new(U, s(C)) closed universally is
                # equivalent to re-evaluating the parent constraint.
                constraint = update_constraint.instance.constraint
                if constraint.id in rechecked_constraints:
                    continue
                rechecked_constraints.add(constraint.id)
                checked.add(constraint.formula)
                if not engine.evaluate(constraint.formula):
                    violations.append(
                        Violation(constraint.id, constraint.formula)
                    )
        stats["instances_evaluated"] = len(checked)
        stats["lookups"] = engine.lookup_count
        return CheckResult(violations, stats, "lloyd")

    # -- rule updates (Section 3.2: "treated like conditional updates") -----------------

    def check_rule_addition(self, rule) -> CheckResult:
        """Would adding *rule* keep the constraints satisfied?

        The rule's new derivations are the seed induced updates: head
        instances derivable through the rule in the extended database
        but false today. They propagate through the extended program's
        dependency graph exactly like fact-update deltas.
        """
        rule = self._coerce_rule(rule)
        new_program = self.database.program.extended([rule])
        new_db = DeductiveDatabase(
            self.database.facts, new_program, list(self.database.constraints)
        )
        index = DependencyIndex(new_program)
        head_pattern = Literal(rule.head, True)
        compiled = compile_update_constraints(
            new_program,
            self.database.constraints,
            [head_pattern],
            relevance=self.relevance,
            index=index,
        )
        stats: Dict[str, int] = {
            "potential_updates": len(compiled.potential),
            "update_constraints": len(compiled.update_constraints),
            "induced_updates": 0,
            "instances_evaluated": 0,
            "lookups": 0,
        }
        if not compiled.update_constraints:
            return CheckResult([], stats, "rule-addition")
        seeds = self._rule_seeds(
            rule,
            body_state=new_db.engine(config=self.config),
            inserted=True,
        )
        closure = index.backward_closure(compiled.demanded_signatures())
        delta = DeltaEvaluator(
            self.database,
            [],
            index=index,
            restrict_to=closure,
            config=self.config,
            new_database=new_db,
            seeds=seeds,
        )
        return self._evaluate_update_constraints(
            compiled, delta, stats, "rule-addition"
        )

    def check_rule_removal(self, rule) -> CheckResult:
        """Would removing *rule* keep the constraints satisfied?

        Seeds are the head instances that lose their (only) derivation:
        derivable through the removed rule today, underivable in the
        reduced database.
        """
        rule = self._coerce_rule(rule)
        remaining = [r for r in self.database.program.rules if r != rule]
        if len(remaining) == len(self.database.program.rules):
            raise ValueError(f"rule not present: {rule}")
        from repro.datalog.program import Program

        new_program = Program(remaining)
        new_db = DeductiveDatabase(
            self.database.facts, new_program, list(self.database.constraints)
        )
        index = DependencyIndex(new_program)
        head_pattern = Literal(rule.head, False)
        compiled = compile_update_constraints(
            new_program,
            self.database.constraints,
            [head_pattern],
            relevance=self.relevance,
            index=index,
        )
        stats: Dict[str, int] = {
            "potential_updates": len(compiled.potential),
            "update_constraints": len(compiled.update_constraints),
            "induced_updates": 0,
            "instances_evaluated": 0,
            "lookups": 0,
        }
        if not compiled.update_constraints:
            return CheckResult([], stats, "rule-removal")
        new_engine = new_db.engine(config=self.config)
        candidates = self._rule_seeds(
            rule,
            body_state=self.database.engine(config=self.config),
            inserted=False,
        )
        # Only heads no longer derivable anywhere actually change.
        seeds = [
            literal
            for literal in candidates
            if not new_engine.holds(literal.atom)
        ]
        closure = index.backward_closure(compiled.demanded_signatures())
        delta = DeltaEvaluator(
            self.database,
            [],
            index=index,
            restrict_to=closure,
            config=self.config,
            new_database=new_db,
            seeds=seeds,
        )
        return self._evaluate_update_constraints(
            compiled, delta, stats, "rule-removal"
        )

    def _coerce_rule(self, rule):
        from repro.datalog.program import Rule
        from repro.logic.parser import parse_rule
        from repro.logic.safety import SafetyError

        if isinstance(rule, str):
            try:
                return Rule.from_parsed(parse_rule(rule))
            except SafetyError as error:
                # Surface the analyzer's stable code on the library
                # rule-update path too, so an unsafe rule reads
                # identically here, in ``repro lint`` and on the wire.
                from repro.analysis.diagnostics import coded_message

                raise SafetyError(coded_message(error)) from None
        return rule

    def _rule_seeds(self, rule, body_state, inserted: bool) -> List[Literal]:
        """Ground head instances the rule derives in *body_state* whose
        truth actually changes (false today for additions; true today
        for removals)."""
        from repro.datalog.joins import join_body
        from repro.logic.substitution import Substitution

        old_engine = self.database.engine(config=self.config)

        def matcher(index: int, pattern):
            return body_state.match_atom(pattern)

        def probe(index: int, pattern):
            return body_state.probe_rows(pattern)

        seeds: List[Literal] = []
        seen = set()
        for answer in join_body(
            rule.body,
            Substitution.empty(),
            matcher,
            body_state.holds,
            body_state.planner,
            exec_mode=self.exec_mode,
            probe=probe,
            join_algo=self.join_algo,
        ):
            head = rule.head.substitute(answer)
            if head in seen:
                continue
            seen.add(head)
            if inserted:
                if not old_engine.holds(head):
                    seeds.append(Literal(head, True))
            else:
                if old_engine.holds(head):
                    seeds.append(Literal(head, False))
        return seeds

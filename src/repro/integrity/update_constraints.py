"""Update constraints (Definition 6) — the compile phase.

For an update (pattern) U, this module computes, *without any fact
access*:

* the potential updates induced by U (Definition 5), and
* for every potential update L and constraint C relevant to L, the
  update constraint  ``∀ (¬delta(U, Lτ) ∨ new(U, s(C)))``  represented
  as the pair (trigger = Lτ, instance = s(C)).

The result is a :class:`CompiledCheck`, which the evaluation phase
(:mod:`repro.integrity.checker`) later confronts with the facts. Because
no facts are touched here, compiled checks for update *patterns* can be
precomputed per relation — the paper's "this set can be precompiled as
well" (Section 3.3.1).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple, Union

from repro.datalog.database import Constraint
from repro.datalog.program import Program
from repro.integrity.dependencies import (
    DependencyIndex,
    Signature,
    potential_updates,
)
from repro.integrity.instances import SimplifiedInstance, simplified_instances
from repro.integrity.relevance import RelevanceIndex
from repro.logic.formulas import Literal


class UpdateConstraint:
    """One compiled update constraint: guard trigger plus residual
    instance (Definition 6)."""

    __slots__ = ("trigger", "instance")

    def __init__(self, trigger: Literal, instance: SimplifiedInstance):
        self.trigger = trigger
        self.instance = instance

    @property
    def constraint_id(self) -> str:
        return self.instance.constraint.id

    def __repr__(self) -> str:
        return (
            f"UpdateConstraint(not delta({self.trigger}) or "
            f"new({self.instance.formula}))"
        )


class CompiledCheck:
    """Everything the evaluation phase needs, fact-independent."""

    __slots__ = (
        "updates",
        "potential",
        "update_constraints",
        "dependency_index",
    )

    def __init__(
        self,
        updates: Tuple[Literal, ...],
        potential: List[Literal],
        update_constraints: List[UpdateConstraint],
        dependency_index: DependencyIndex,
    ):
        self.updates = updates
        self.potential = potential
        self.update_constraints = update_constraints
        self.dependency_index = dependency_index

    def demanded_signatures(self) -> Set[Signature]:
        """The (predicate, polarity) guard patterns the evaluation phase
        will ask ``delta`` about."""
        return {
            (uc.trigger.atom.pred, uc.trigger.positive)
            for uc in self.update_constraints
        }

    def __repr__(self) -> str:
        return (
            f"CompiledCheck({len(self.potential)} potential updates, "
            f"{len(self.update_constraints)} update constraints)"
        )


def compile_update_constraints(
    program: Program,
    constraints: Sequence[Constraint],
    updates: Union[Literal, Sequence[Literal]],
    relevance: Optional[RelevanceIndex] = None,
    index: Optional[DependencyIndex] = None,
) -> CompiledCheck:
    """Run the whole compile phase for *updates* (a literal or a
    sequence; patterns allowed)."""
    if isinstance(updates, Literal):
        updates = [updates]
    updates = tuple(updates)
    if index is None:
        index = DependencyIndex(program)
    if relevance is None:
        relevance = RelevanceIndex(constraints)
    potential = potential_updates(program, list(updates), index)
    compiled: List[UpdateConstraint] = []
    seen = set()
    for literal in potential:
        for constraint in relevance.relevant_constraints(literal):
            for instance in simplified_instances(constraint, literal):
                key = (
                    instance.constraint.id,
                    instance.trigger,
                    instance.formula,
                )
                if key in seen:
                    continue
                seen.add(key)
                compiled.append(UpdateConstraint(instance.trigger, instance))
    return CompiledCheck(updates, potential, compiled, index)

"""Direct dependencies and potential updates (Definition 5).

The compile-time dependency relation between literals: for every rule
``A' <- B`` and body occurrence ``L'`` at position i,

* ``A'`` *directly depends on* ``L'``      (L' turning true can turn A' true),
* ``¬A'`` *directly depends on* ``¬L'``-complement (L' turning false can
  turn A' false),

each carrying the rest of the body ``B \\ L'`` — the paper's
``directly_dependent(L, A, R)`` facts. The *potential updates* induced
by an update are the closure of this relation, with subsumption pruning
so the closure terminates on recursive rules (Section 3.3.1).

Everything here is computed without any fact access — it is the first,
preparatory phase of the paper's method.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.datalog.program import Program, Rule
from repro.logic.formulas import Literal
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable, fresh_variable
from repro.logic.unify import mgu, subsumes

Signature = Tuple[str, bool]  # (predicate, polarity)


class DirectDependency:
    """One ``directly_dependent(trigger, result, rest)`` edge."""

    __slots__ = ("trigger", "result", "rest", "rule", "body_index")

    def __init__(
        self,
        trigger: Literal,
        result: Literal,
        rest: Tuple[Literal, ...],
        rule: Rule,
        body_index: int,
    ):
        self.trigger = trigger
        self.result = result
        self.rest = rest
        self.rule = rule
        self.body_index = body_index

    def rename_apart(self, avoid: Set[Variable]) -> "DirectDependency":
        """A variant sharing no variables with *avoid*."""
        own = set(self.trigger.atom.variables())
        own.update(self.result.atom.variables())
        for literal in self.rest:
            own.update(literal.atom.variables())
        clashes = own & avoid
        if not clashes:
            return self
        renaming = Substitution(
            {v: fresh_variable(v.name) for v in clashes}
        )
        return DirectDependency(
            self.trigger.substitute(renaming),
            self.result.substitute(renaming),
            tuple(l.substitute(renaming) for l in self.rest),
            self.rule,
            self.body_index,
        )

    def __repr__(self) -> str:
        return (
            f"DirectDependency({self.trigger} ~> {self.result} "
            f"| rest: {', '.join(map(str, self.rest)) or 'true'})"
        )


class DependencyIndex:
    """All direct dependencies of a program, indexed by trigger
    signature and by result signature."""

    __slots__ = ("dependencies", "_by_trigger", "_by_result")

    def __init__(self, program: Program):
        self.dependencies: List[DirectDependency] = []
        self._by_trigger: Dict[Signature, List[DirectDependency]] = {}
        self._by_result: Dict[Signature, List[DirectDependency]] = {}
        for rule in program.rules:
            for index, body_literal in enumerate(rule.body):
                rest = rule.body_without(index)
                positive_result = Literal(rule.head, True)
                negative_result = Literal(rule.head, False)
                # L' turning true can fire the rule: A' depends on L'.
                self._register(
                    DirectDependency(
                        body_literal, positive_result, rest, rule, index
                    )
                )
                # L' turning false can retract the rule instance:
                # ¬A' depends on complement(L').
                self._register(
                    DirectDependency(
                        body_literal.complement(),
                        negative_result,
                        rest,
                        rule,
                        index,
                    )
                )

    def _register(self, dependency: DirectDependency) -> None:
        self.dependencies.append(dependency)
        trigger_key = (
            dependency.trigger.atom.pred,
            dependency.trigger.positive,
        )
        result_key = (
            dependency.result.atom.pred,
            dependency.result.positive,
        )
        self._by_trigger.setdefault(trigger_key, []).append(dependency)
        self._by_result.setdefault(result_key, []).append(dependency)

    def triggered_by(self, update: Literal) -> Iterator[DirectDependency]:
        """Dependencies whose trigger is unifiable with *update*
        (renamed apart from the update's variables)."""
        key = (update.atom.pred, update.positive)
        avoid = set(update.atom.variables())
        for dependency in self._by_trigger.get(key, ()):
            renamed = dependency.rename_apart(avoid)
            if mgu(renamed.trigger, update) is not None:
                yield renamed

    def backward_closure(self, goals: Set[Signature]) -> Set[Signature]:
        """All signatures from which some goal signature is reachable
        through dependency edges — the predicates/polarities the delta
        computation must propagate through to serve those goals."""
        closure: Set[Signature] = set()
        frontier = list(goals)
        while frontier:
            current = frontier.pop()
            if current in closure:
                continue
            closure.add(current)
            for dependency in self._by_result.get(current, ()):
                frontier.append(
                    (dependency.trigger.atom.pred, dependency.trigger.positive)
                )
        return closure


def potential_updates(
    program: Program,
    updates,
    index: DependencyIndex = None,
    subsumption: bool = True,
    iteration_limit: Optional[int] = None,
) -> List[Literal]:
    """The potential updates induced by *updates* (a literal or a
    sequence of literals), including the updates themselves.

    Closure of the ``dependent`` relation with subsumption pruning:
    a newly derived potential update subsumed by an already known one is
    discarded, and known ones subsumed by a new more general one are
    replaced — this is what makes the closure finite for recursive rules
    (the paper's remark in Section 3.3.1).

    ``subsumption=False`` keeps only exact-duplicate elimination — the
    ablated variant the E8 benchmark measures. The set it produces is
    strictly larger (redundant specializations survive), and it can
    diverge through variant proliferation when renaming does not
    collapse patterns; supply an ``iteration_limit`` (exceeding it
    raises :class:`RuntimeError`) when ablating recursive programs.
    """
    if isinstance(updates, Literal):
        updates = [updates]
    if index is None:
        index = DependencyIndex(program)
    known: List[Literal] = []
    exact: set = set()

    def absorb(candidate: Literal) -> bool:
        """Add *candidate* unless (exactly or by subsumption) known.
        Returns True if the candidate is new."""
        if not subsumption:
            if candidate in exact:
                return False
            exact.add(candidate)
            known.append(candidate)
            return True
        for existing in known:
            if subsumes(existing, candidate):
                return False
        known[:] = [
            existing
            for existing in known
            if not subsumes(candidate, existing)
        ]
        known.append(candidate)
        return True

    frontier: List[Literal] = []
    for update in updates:
        if absorb(update):
            frontier.append(update)
    iterations = 0
    while frontier:
        iterations += 1
        if iteration_limit is not None and iterations > iteration_limit:
            raise RuntimeError(
                f"potential-update closure exceeded {iteration_limit} "
                f"iterations (subsumption={subsumption})"
            )
        current = frontier.pop()
        for dependency in index.triggered_by(current):
            unifier = mgu(dependency.trigger, current)
            if unifier is None:  # pragma: no cover - triggered_by filters
                continue
            derived = dependency.result.substitute(unifier)
            if absorb(derived):
                frontier.append(derived)
    return known

"""Constraint relevance (Definition 2).

A constraint C is *relevant* to an update U iff the complement of U is
unifiable with a literal occurrence in C. Only relevant constraints can
change truth value under U (this is where domain independence pays off:
constraints not mentioning the updated relation keep their value).

The :class:`RelevanceIndex` is the Python counterpart of the paper's
precomputed ``relevant(Id, L)`` facts: occurrences are indexed by
(predicate, polarity) so the relevant pairs for an update are found
without scanning the whole constraint set.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.datalog.database import Constraint
from repro.logic.formulas import Literal, walk_literals
from repro.logic.unify import unifiable


class RelevanceIndex:
    """Index from (predicate, polarity) to constraint literal occurrences."""

    __slots__ = ("_by_signature", "constraints")

    def __init__(self, constraints: Sequence[Constraint]):
        self.constraints = tuple(constraints)
        self._by_signature: Dict[
            Tuple[str, bool], List[Tuple[Constraint, Literal]]
        ] = {}
        for constraint in self.constraints:
            seen = set()
            for occurrence in walk_literals(constraint.formula):
                key = (occurrence.atom.pred, occurrence.positive)
                entry = (constraint, occurrence)
                if (constraint.id, occurrence) in seen:
                    continue  # identical occurrences yield identical instances
                seen.add((constraint.id, occurrence))
                self._by_signature.setdefault(key, []).append(entry)

    def relevant(
        self, update: Literal
    ) -> Iterator[Tuple[Constraint, Literal]]:
        """Yield (constraint, literal occurrence) pairs relevant to
        *update* — occurrences unifiable with the update's complement."""
        complement = update.complement()
        key = (complement.atom.pred, complement.positive)
        for constraint, occurrence in self._by_signature.get(key, ()):
            if unifiable(occurrence, complement):
                yield constraint, occurrence

    def relevant_constraints(self, update: Literal) -> List[Constraint]:
        """The distinct constraints relevant to *update*."""
        seen = set()
        out: List[Constraint] = []
        for constraint, _ in self.relevant(update):
            if constraint.id not in seen:
                seen.add(constraint.id)
                out.append(constraint)
        return out

    def signatures(self) -> frozenset:
        """All (predicate, polarity) keys any constraint mentions."""
        return frozenset(self._by_signature)


def relevant_constraints(
    constraints: Sequence[Constraint], update: Literal
) -> List[Constraint]:
    """One-shot convenience wrapper around :class:`RelevanceIndex`."""
    return RelevanceIndex(constraints).relevant_constraints(update)

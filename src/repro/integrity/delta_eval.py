"""The ``delta`` meta-interpreter: induced updates (Definition 4).

``delta(U, L)`` holds iff L is satisfied in U(D) but not in D. Induced
updates are computed by propagating the explicit update through the
``directly_depends`` relation level by level: a candidate head produced
by a dependency edge is an induced update iff its truth value actually
changes between D and U(D).

Two deliberate choices, documented against the paper:

* **Rest-of-body state for deletions.** The paper's Prolog ``delta``
  evaluates the rest R of the rule body with ``new`` for deletion
  candidates too. That misses deletions when *several* body literals of
  the only supporting rule instance flip simultaneously (e.g. rules
  ``q(X) <- p(X)`` and ``b(X) <- p(X), q(X)`` under the deletion of
  ``p(a)``: R is already false in U(D) along every edge). We evaluate R
  in the *old* state for deletion candidates — the derivations that used
  to exist — which restores completeness; the truth-change test keeps it
  sound. (This is the delete–re-derive discipline of incremental view
  maintenance.) The regression test
  ``tests/integrity/test_delta.py::TestPaperDeltaGap`` pins the
  counterexample.

* **Goal-directed pruning.** ``delta`` answers are demanded only for the
  trigger patterns occurring in update constraints. Propagation is
  restricted to the dependency signatures from which some demanded
  pattern is reachable (``DependencyIndex.backward_closure``), so — as
  the paper requires in Section 3.2 — induced updates nobody asks about
  are never computed.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Set, Union

from repro.datalog.database import DeductiveDatabase
from repro.datalog.joins import join_body
from repro.integrity.dependencies import DependencyIndex, Signature
from repro.logic.formulas import Atom, Literal
from repro.logic.substitution import Substitution
from repro.logic.unify import match, mgu


class DeltaEvaluator:
    """Enumerates induced updates of a (simulated) update."""

    def __init__(
        self,
        database: DeductiveDatabase,
        updates: Union[str, Literal, "Transaction", Sequence[Literal]],
        index: Optional[DependencyIndex] = None,
        restrict_to: Optional[Set[Signature]] = None,
        strategy: Optional[str] = None,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        supplementary: Optional[bool] = None,
        new_database: Optional[DeductiveDatabase] = None,
        seeds: Optional[Sequence[Literal]] = None,
        *,
        config=None,
    ):
        """By default the updated state is the fact overlay of
        *updates*. Rule updates (Section 3.2: "treated like conditional
        updates") supply their own *new_database* (same facts, changed
        program) together with pre-verified *seeds* — the ground truth
        changes the rule change causes directly; propagation and the
        truth-change tests then run between the two states as usual.
        """
        from repro.config import resolve_config
        from repro.integrity.transactions import Transaction

        config = resolve_config(
            config if config is not None else strategy,
            plan=plan,
            exec_mode=exec_mode,
            supplementary=supplementary,
            warn=False,
        )
        self.config = config
        self.database = database
        self.updates = tuple(Transaction.coerce(updates).net())
        self.index = index if index is not None else DependencyIndex(
            database.program
        )
        self.exec_mode = config.exec_mode
        self.join_algo = config.join_algo
        self.old_engine = database.engine(config=config)
        if new_database is not None:
            self.new_view = new_database
        else:
            self.new_view = database.updated(list(self.updates))
        self.new_engine = self.new_view.engine(config=config)
        # Rest-of-body joins are planned against whichever state they
        # run over (old for deletions, new for insertions), reusing
        # each engine's own planner and statistics.
        self._old_planner = self.old_engine.planner
        self._new_planner = self.new_engine.planner
        self._seeds = None if seeds is None else list(seeds)
        self._restrict = restrict_to
        self._induced: Optional[List[Literal]] = None
        # Statistics for the benchmarks.
        self.candidates_examined = 0

    # -- the induced-update set --------------------------------------------------------

    def induced_updates(self) -> List[Literal]:
        """All induced updates (including the effective explicit ones),
        level by level, restricted to the demanded signatures if a
        restriction was given."""
        if self._induced is None:
            self._induced = self._propagate()
        return self._induced

    def _effective_base(self) -> List[Literal]:
        """The explicit updates that actually change a truth value
        (Definition 1 no-ops and derivable-anyway cases are dropped)."""
        if self._seeds is not None:
            return list(self._seeds)
        effective = []
        for update in self.updates:
            if update.positive:
                # delta(U, U): A false in D; true in U(D) by construction.
                if not self.old_engine.holds(update.atom):
                    effective.append(update)
            else:
                # delta(U, ¬A): A true in D, and not re-derivable in U(D).
                if self.old_engine.holds(update.atom) and not (
                    self.new_engine.holds(update.atom)
                ):
                    effective.append(update)
        return effective

    def _admissible(self, literal: Literal) -> bool:
        if self._restrict is None:
            return True
        return (literal.atom.pred, literal.positive) in self._restrict

    def _propagate(self) -> List[Literal]:
        seen: Set[Literal] = set()
        out: List[Literal] = []
        level = self._effective_base()
        for literal in level:
            seen.add(literal)
            out.append(literal)
        while level:
            next_level: List[Literal] = []
            for source in level:
                for derived in self._directly_induced(source):
                    if derived in seen:
                        continue
                    seen.add(derived)
                    out.append(derived)
                    next_level.append(derived)
            level = next_level
        return out

    def _directly_induced(self, source: Literal) -> Iterator[Literal]:
        """Ground literals directly induced by *source* (Definition 4)."""
        for dependency in self.index.triggered_by(source):
            result_key = (
                dependency.result.atom.pred,
                dependency.result.positive,
            )
            if self._restrict is not None and result_key not in self._restrict:
                continue
            unifier = mgu(dependency.trigger, source)
            if unifier is None:  # pragma: no cover - triggered_by filters
                continue
            rest = tuple(l.substitute(unifier) for l in dependency.rest)
            head = dependency.result.substitute(unifier)
            # Insertions: new derivations exist in U(D). Deletions: the
            # derivations that existed in D (see module docstring).
            if head.positive:
                engine, planner = self.new_engine, self._new_planner
            else:
                engine, planner = self.old_engine, self._old_planner

            def matcher(index: int, pattern: Atom):
                return engine.match_atom(pattern)

            def probe(index: int, pattern: Atom, _engine=engine):
                return _engine.probe_rows(pattern)

            for answer in join_body(
                rest,
                Substitution.empty(),
                matcher,
                engine.holds,
                planner,
                exec_mode=self.exec_mode,
                probe=probe,
                join_algo=self.join_algo,
            ):
                candidate = head.substitute(answer)
                if not candidate.atom.is_ground():  # pragma: no cover
                    from repro.analysis.diagnostics import coded

                    raise ValueError(
                        coded(
                            "R001",
                            f"rule {dependency.rule} is not "
                            f"range-restricted: induced candidate "
                            f"{candidate} is non-ground",
                        )
                    )
                self.candidates_examined += 1
                if self._truth_changed(candidate):
                    yield candidate

    def _truth_changed(self, candidate: Literal) -> bool:
        """Definition 4's final test: the candidate's truth value really
        differs between D and U(D)."""
        if candidate.positive:
            # Derived in U(D) by construction; induced iff false in D.
            return not self.old_engine.holds(candidate.atom)
        # Deletion: was true in D, and no longer derivable in U(D).
        return self.old_engine.holds(candidate.atom) and not (
            self.new_engine.holds(candidate.atom)
        )

    # -- pattern-directed access (the guard of update constraints) -----------------------

    def answers(self, pattern: Literal) -> Iterator[Substitution]:
        """delta(U, pattern): substitutions θ such that pattern·θ is an
        induced update — the guard enumeration of Definition 6."""
        for induced in self.induced_updates():
            if induced.positive != pattern.positive:
                continue
            binding = match(pattern, induced)
            if binding is not None:
                yield binding

    def holds(self, literal: Literal) -> bool:
        """delta(U, L) for a ground literal L."""
        return any(True for _ in self.answers(literal))

    @property
    def lookup_count(self) -> int:
        return self.old_engine.lookup_count + self.new_engine.lookup_count

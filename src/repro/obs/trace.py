"""Per-query traces: the EXPLAIN side of the telemetry subsystem.

A :class:`QueryTrace` rides a :mod:`contextvars` context variable while
one query/check evaluates, and every layer that does interesting work
records into it — the planner its chosen literal order with estimates,
the magic rewriter its adornments and sup predicates, the fixpoint loop
its per-round delta sizes, the join kernel its aggregate row/probe
counts, the caches their consults. When no trace is active every
instrumentation site is a single ``current_trace() is None`` check, so
tracing-off overhead is one attribute read per site.

Every trace carries a ``trace_id`` — generated locally, or *adopted*
from a client's wire-propagated :class:`~repro.obs.spans.TraceContext`
— plus a list of timed :class:`~repro.obs.spans.Span` records (verb
dispatch, session staging, gate check, WAL append) parented under the
client's span. That is what lets a client correlate its request with
the server-side EXPLAIN payload and the slow-query log line.

``trace_query`` activates a trace explicitly (``Database.explain`` and
the CLI ``--explain`` flag use it); ``maybe_trace`` activates one only
when the engine config asks for slow-query logging, and emits the
completed trace through stdlib :mod:`logging` under ``repro.obs`` when
the query exceeds the threshold.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.spans import Span, new_trace_id

__all__ = [
    "QueryTrace",
    "current_trace",
    "trace_query",
    "maybe_trace",
    "render_trace",
    "SLOW_QUERY_LOGGER",
]

SLOW_QUERY_LOGGER = "repro.obs.slowquery"

# Caps keep a pathological query (thousands of rule plans, unbounded
# recursion rounds, span-happy batches) from turning its own trace
# into the memory problem.
MAX_PLANS = 16
MAX_ROUNDS = 64
MAX_SPANS = 256
MAX_WCOJ = 32


class QueryTrace:
    """Everything the engine can tell you about one query's execution.

    The *logical* parts — plans, rewrites, round structure, result —
    are deterministic for a given (program, query, config) and identical
    across the batch and tuple execution legs (that invariant is pinned
    by a differential test via :meth:`shape`). The *physical* parts —
    phase timings, join row/probe counts, spans — legitimately differ
    per leg and are excluded from the shape.
    """

    __slots__ = (
        "label",
        "config",
        "trace_id",
        "parent_span_id",
        "phases",
        "_phase_stack",
        "plans",
        "_plan_keys",
        "plans_dropped",
        "rewrites",
        "_rewrite_keys",
        "rounds",
        "rounds_dropped",
        "total_derived",
        "join",
        "wcoj",
        "wcoj_dropped",
        "cache",
        "spans",
        "spans_dropped",
        "_span_stack",
        "attrs",
        "result",
        "elapsed",
        "_started",
    )

    def __init__(
        self, label: str, config: Any = None, context: Any = None
    ) -> None:
        self.label = label
        self.config = config
        # The request's trace identity: adopted from a wire-propagated
        # TraceContext when one arrived, generated locally otherwise.
        self.trace_id: str = (
            context.trace_id if context is not None else new_trace_id()
        )
        self.parent_span_id: Optional[str] = (
            context.span_id if context is not None else None
        )
        # Ordered phase → accumulated seconds ("plan", "rewrite",
        # "saturate", "materialize", "gate", ...).
        self.phases: Dict[str, float] = {}
        self._phase_stack: List[str] = []
        # Planner-chosen literal orders: (goal, order, estimates).
        self.plans: List[Dict[str, Any]] = []
        self._plan_keys: set = set()
        self.plans_dropped = 0
        # Magic rewrites: (predicate, adornment, sup predicates, #rules).
        self.rewrites: List[Dict[str, Any]] = []
        self._rewrite_keys: set = set()
        # Semi-naive rounds: new-fact counts in derivation order.
        self.rounds: List[int] = []
        self.rounds_dropped = 0
        self.total_derived = 0
        # Join-kernel aggregates (physical; leg-dependent).
        self.join: Dict[str, int] = {
            "joins": 0,
            "chunks": 0,
            "rows_out": 0,
            "probes": 0,
            "tuple_fallbacks": 0,
            "wcoj_joins": 0,
            "wcoj_fallbacks": 0,
        }
        # Worst-case-optimal eligibility decisions: which bodies ran
        # the leapfrog, which fell back, and why (physical —
        # leg-dependent like the join aggregates, so excluded from
        # shape()).
        self.wcoj: List[Dict[str, Any]] = []
        self.wcoj_dropped = 0
        self.cache: Dict[str, int] = {"hits": 0, "misses": 0}
        # Timed server-side work units under this trace_id.
        self.spans: List[Span] = []
        self.spans_dropped = 0
        self._span_stack: List[Span] = []
        # Free-form correlation fields (the server stamps verb/db/
        # session/request_id); surfaced in to_dict and the slow log.
        self.attrs: Dict[str, Any] = {}
        self.result: Optional[str] = None
        self.elapsed: Optional[float] = None
        self._started = time.perf_counter()

    # -- recording -------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Accumulate wall-clock under *name*; re-entrant (a nested
        enter of the phase already on top of the stack is free)."""
        if self._phase_stack and self._phase_stack[-1] == name:
            yield
            return
        self._phase_stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            self._phase_stack.pop()
            self.phases[name] = self.phases.get(name, 0.0) + (
                time.perf_counter() - start
            )

    @contextmanager
    def span(self, name: str, **attrs):
        """Record a timed :class:`Span` under this trace. Nested spans
        parent on the enclosing span; the outermost spans parent on the
        wire context's span id (the client call)."""
        if len(self.spans) >= MAX_SPANS:
            self.spans_dropped += 1
            yield None
            return
        parent = (
            self._span_stack[-1].span_id
            if self._span_stack
            else self.parent_span_id
        )
        span = Span(name, parent_id=parent, attrs=attrs)
        self.spans.append(span)
        self._span_stack.append(span)
        start = time.perf_counter()
        try:
            yield span
        finally:
            self._span_stack.pop()
            span.elapsed = time.perf_counter() - start

    def record_plan(
        self,
        goal: str,
        order: Tuple[str, ...],
        estimates: Tuple[int, ...],
    ) -> None:
        key = (goal, order)
        if key in self._plan_keys:
            return
        if len(self.plans) >= MAX_PLANS:
            self.plans_dropped += 1
            return
        self._plan_keys.add(key)
        self.plans.append(
            {
                "goal": goal,
                "order": list(order),
                "estimates": list(estimates),
            }
        )

    def record_rewrite(
        self,
        predicate: str,
        adornment: str,
        sup_predicates: Tuple[str, ...],
        rules: int,
    ) -> None:
        key = (predicate, adornment)
        if key in self._rewrite_keys:
            return
        self._rewrite_keys.add(key)
        self.rewrites.append(
            {
                "predicate": predicate,
                "adornment": adornment,
                "sup_predicates": list(sup_predicates),
                "rules": rules,
            }
        )

    def record_wcoj(
        self,
        goal: str,
        algo: str,
        relations: int,
        chose: bool,
        reason: str,
    ) -> None:
        """One worst-case-optimal dispatch decision: the body's goal
        string, the configured algorithm, how many relations the body
        counted, whether the leapfrog ran, and the reason when it did
        not."""
        if len(self.wcoj) >= MAX_WCOJ:
            self.wcoj_dropped += 1
            return
        self.wcoj.append(
            {
                "goal": goal,
                "algo": algo,
                "relations": relations,
                "chose": chose,
                "reason": reason,
            }
        )

    def record_round(self, new_facts: int) -> None:
        self.total_derived += new_facts
        if len(self.rounds) >= MAX_ROUNDS:
            self.rounds_dropped += 1
            return
        self.rounds.append(new_facts)

    def record_cache(self, hit: bool) -> None:
        self.cache["hits" if hit else "misses"] += 1

    def finish(self, result: Optional[str] = None) -> None:
        if result is not None:
            self.result = result
        self.elapsed = time.perf_counter() - self._started

    # -- rendering -------------------------------------------------
    def config_summary(self) -> Optional[str]:
        key = getattr(self.config, "key", None)
        if callable(key):
            return "/".join(str(part) for part in key())
        return None

    def to_dict(self) -> Dict[str, Any]:
        """Structured form (the server's ``explain`` payload)."""
        return {
            "label": self.label,
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "config": self.config_summary(),
            "elapsed_seconds": self.elapsed,
            "phases": dict(self.phases),
            "plans": [dict(plan) for plan in self.plans],
            "plans_dropped": self.plans_dropped,
            "rewrites": [dict(rewrite) for rewrite in self.rewrites],
            "rounds": list(self.rounds),
            "rounds_dropped": self.rounds_dropped,
            "total_derived": self.total_derived,
            "join": dict(self.join),
            "wcoj": [dict(decision) for decision in self.wcoj],
            "wcoj_dropped": self.wcoj_dropped,
            "cache": dict(self.cache),
            "spans": [span.to_dict() for span in self.spans],
            "spans_dropped": self.spans_dropped,
            "attrs": dict(self.attrs),
            "result": self.result,
        }

    def shape(self) -> Dict[str, Any]:
        """The logical skeleton — identical across execution legs."""
        return {
            "label": self.label,
            "plans": [dict(plan) for plan in self.plans],
            "rewrites": [dict(rewrite) for rewrite in self.rewrites],
            "rounds": list(self.rounds),
            "total_derived": self.total_derived,
            "result": self.result,
        }

    def render(self) -> str:
        """The human-readable EXPLAIN tree."""
        return render_trace(self.to_dict())


def render_trace(data: Dict[str, Any]) -> str:
    """Render a trace's :meth:`QueryTrace.to_dict` payload as the
    EXPLAIN tree. A module function (not a method) so a *remote* client
    can render the ``explain`` payload a server sent over the wire
    without reconstructing a :class:`QueryTrace`."""
    lines = [f"QUERY {data.get('label')}"]
    if data.get("trace_id"):
        lines.append(f"├─ trace: {data['trace_id']}")
    if data.get("config"):
        lines.append(f"├─ config: {data['config']}")
    if data.get("result") is not None:
        lines.append(f"├─ result: {data['result']}")
    if data.get("elapsed_seconds") is not None:
        lines.append(
            f"├─ elapsed: {data['elapsed_seconds'] * 1000:.2f} ms"
        )
    if data.get("rewrites"):
        lines.append("├─ rewrite")
        for rewrite in data["rewrites"]:
            sups = ", ".join(rewrite["sup_predicates"]) or "-"
            lines.append(
                f"│   ├─ {rewrite['predicate']}^"
                f"{rewrite['adornment']} "
                f"({rewrite['rules']} rules; sup: {sups})"
            )
    if data.get("plans"):
        lines.append("├─ plan")
        for plan in data["plans"]:
            steps = " → ".join(
                f"{literal} (~{estimate})"
                for literal, estimate in zip(
                    plan["order"], plan["estimates"]
                )
            )
            lines.append(f"│   ├─ {plan['goal']}: {steps}")
        if data.get("plans_dropped"):
            lines.append(f"│   └─ … {data['plans_dropped']} more plans")
    if data.get("rounds") or data.get("total_derived"):
        rounds = ", ".join(str(n) for n in data.get("rounds", ()))
        suffix = (
            f" (+{data['rounds_dropped']} rounds elided)"
            if data.get("rounds_dropped")
            else ""
        )
        lines.append(
            f"├─ rounds: [{rounds}]{suffix} "
            f"Σ {data.get('total_derived', 0)} derived"
        )
    join = data.get("join") or {}
    if any(join.values()):
        lines.append(
            "├─ join: "
            f"{join['joins']} joins, {join['rows_out']} rows, "
            f"{join['probes']} probes, {join['chunks']} chunks, "
            f"{join['tuple_fallbacks']} tuple fallbacks, "
            f"{join.get('wcoj_joins', 0)} wcoj, "
            f"{join.get('wcoj_fallbacks', 0)} wcoj fallbacks"
        )
    wcoj = data.get("wcoj") or ()
    if wcoj:
        lines.append("├─ wcoj")
        for decision in wcoj:
            verdict = (
                "leapfrog"
                if decision["chose"]
                else f"hash ({decision['reason']})"
            )
            lines.append(
                f"│   ├─ {decision['goal']} "
                f"[{decision['relations']} rels, {decision['algo']}]"
                f" → {verdict}"
            )
        if data.get("wcoj_dropped"):
            lines.append(
                f"│   └─ … {data['wcoj_dropped']} more decisions"
            )
    cache = data.get("cache") or {}
    if cache.get("hits") or cache.get("misses"):
        lines.append(
            f"├─ cache: {cache['hits']} hits / "
            f"{cache['misses']} misses"
        )
    spans = data.get("spans") or ()
    if spans:
        lines.append("├─ spans")
        for span in spans:
            elapsed = span.get("elapsed_seconds")
            timing = (
                f": {elapsed * 1000:.2f} ms" if elapsed is not None else ""
            )
            lines.append(f"│   ├─ {span['name']}{timing}")
        if data.get("spans_dropped"):
            lines.append(f"│   └─ … {data['spans_dropped']} more spans")
    phases = data.get("phases") or {}
    if phases:
        lines.append("└─ phases")
        items = list(phases.items())
        for index, (name, seconds) in enumerate(items):
            branch = "└─" if index == len(items) - 1 else "├─"
            lines.append(
                f"    {branch} {name}: {seconds * 1000:.2f} ms"
            )
    elif lines[-1].startswith("├─"):
        lines[-1] = "└─" + lines[-1][2:]
    return "\n".join(lines)


_ACTIVE: ContextVar[Optional[QueryTrace]] = ContextVar(
    "repro_query_trace", default=None
)


def current_trace() -> Optional[QueryTrace]:
    """The trace active in this context, or None (the hot-path guard)."""
    return _ACTIVE.get()


@contextmanager
def trace_query(label: str, config: Any = None, context: Any = None):
    """Activate a :class:`QueryTrace` for the duration of the block.

    Nested activations reuse the outer trace — one query evaluated
    through several engine layers yields one trace, and only the
    outermost exit stamps ``elapsed`` and consults the slow-query log.
    *context* (a :class:`~repro.obs.spans.TraceContext`, typically from
    a request's ``trace`` field) makes the trace adopt the caller's
    trace_id instead of generating one.
    """
    existing = _ACTIVE.get()
    if existing is not None:
        yield existing
        return
    trace = QueryTrace(label, config, context)
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)
        trace.finish()
        _maybe_log_slow(trace, config)


@contextmanager
def maybe_trace(label: str, config: Any = None):
    """Trace only when it can matter: an outer trace is already active
    (join it), or *config* enables the slow-query log. Otherwise yield
    None without constructing anything."""
    existing = _ACTIVE.get()
    if existing is not None:
        yield existing
        return
    threshold = getattr(config, "slow_query_ms", None)
    if threshold is None:
        yield None
        return
    with trace_query(label, config) as trace:
        yield trace


def _maybe_log_slow(trace: QueryTrace, config: Any) -> None:
    threshold = getattr(config, "slow_query_ms", None)
    if threshold is None or trace.elapsed is None:
        return
    elapsed_ms = trace.elapsed * 1000.0
    if elapsed_ms < threshold:
        return
    logger = logging.getLogger(SLOW_QUERY_LOGGER)
    if not logger.isEnabledFor(logging.WARNING):
        return
    # Correlation fields ride both the message (greppable) and the
    # record attributes (structured): trace_id always, plus whatever
    # the service edge stamped (verb, db, session, request_id).
    extra = {
        "query_trace": trace.to_dict(),
        "trace_id": trace.trace_id,
    }
    for key in ("verb", "db", "session", "request_id"):
        if key in trace.attrs:
            extra[key] = trace.attrs[key]
    logger.warning(
        "slow query (%.2f ms >= %.2f ms): %s [trace_id=%s]",
        elapsed_ms,
        threshold,
        trace.label,
        trace.trace_id,
        extra=extra,
    )

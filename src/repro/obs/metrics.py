"""Process-wide metrics: named counters, gauges and histograms.

One registry, every layer reporting the same named series — the
telemetry analogue of the paper's uniform treatment of inference
methods. The design goals, in order:

* **Cheap when idle.** Reading a counter is a plain attribute access;
  bumping one takes a per-instance lock only because the service layer
  commits from multiple threads. No global lock is ever held on the
  read path, and instruments are created once and cached by name.
* **Dependency-free.** This module imports nothing from :mod:`repro`
  (stdlib only) so the lowest layers — the join kernel, the WAL, the
  fact stores — can import it without cycles.
* **Diffable.** Tests and benchmarks pin behaviour with
  ``snapshot()``/``diff()`` instead of reaching into module globals.

Naming scheme — ``layer.metric``, documented in the README catalog:

========== ====================================================
prefix      layer
========== ====================================================
``join.``   batch/tuple join kernel (:mod:`repro.datalog.joins`)
``plan.``   join planner
``magic.``  magic-sets / supplementary rewrite + saturation
``store.``  fact-store backends (group index builds, …)
``cache.``  derived-result cache
``wal.``    write-ahead log
``txn.``    transaction manager / group commit
``gate.``   integrity-gate admission
========== ====================================================
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "QUANTILES",
    "quantile_from_buckets",
    "default_registry",
    "set_default_registry",
]

#: The quantiles every histogram summary reports (p50/p95/p99),
#: rendered by the ONE helper (:func:`quantile_from_buckets`) that
#: ``stats()``, the ``metrics`` verb, :func:`repro.metrics`, the
#: Prometheus exporter and ``repro top`` all share.
QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def quantile_from_buckets(
    bounds: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """The *q*-quantile of a fixed-bucket histogram, linearly
    interpolated inside the containing bucket (the Prometheus
    ``histogram_quantile`` estimator).

    *counts* holds per-bucket (non-cumulative) observation counts,
    one slot per bound plus a final overflow slot. Values past the
    largest bound are reported *as* the largest bound — a fixed-bucket
    histogram cannot resolve its own overflow. An empty histogram
    yields ``0.0``.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q!r}")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0.0
    for index, bound in enumerate(bounds):
        in_bucket = counts[index]
        if cumulative + in_bucket >= target and in_bucket:
            lower = bounds[index - 1] if index else 0.0
            fraction = (target - cumulative) / in_bucket
            return lower + (bound - lower) * fraction
        cumulative += in_bucket
    # Target falls in the overflow slot: the best available answer is
    # the histogram's upper resolution limit.
    return float(bounds[-1])


# Latency buckets in seconds: 0.1ms .. 5s, wide enough for both the
# join kernel's per-query work and the service's commit lingers.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)


class Counter:
    """A monotonically increasing count. Reads are lock-free."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: int) -> None:
        """Force the count (used by the legacy ``JOIN_COUNTERS`` reset
        shim; new code should only ever :meth:`inc`)."""
        with self._lock:
            self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-bucket histogram of observed values (typically seconds).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; the
    final slot counts overflows. Cumulative-style output is left to
    :meth:`to_dict` so hot-path observes stay one index + three adds.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "_lock")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets: Tuple[float, ...] = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Interpolated *q*-quantile of everything observed so far."""
        with self._lock:
            counts = list(self.bucket_counts)
        return quantile_from_buckets(self.buckets, counts, q)

    def to_dict(self) -> Dict[str, object]:
        """The histogram's one summary rendering: totals, mean, the
        standard quantiles (:data:`QUANTILES`), the raw per-bucket
        layout (``bounds``/``counts``, overflow last) and the legacy
        labelled ``buckets`` map. Every surface that shows a histogram
        — ``stats()``, the ``metrics`` verb, :func:`repro.metrics`,
        ``/metrics.json`` — serves exactly this dict."""
        with self._lock:
            counts = list(self.bucket_counts)
            count = self.count
            total = self.sum
        out: Dict[str, object] = {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "bounds": list(self.buckets),
            "counts": counts,
            "buckets": {
                ("le_%g" % bound): bucket_count
                for bound, bucket_count in zip(self.buckets, counts)
            },
            "overflow": counts[-1],
        }
        for q in QUANTILES:
            out["p%g" % (q * 100)] = quantile_from_buckets(
                self.buckets, counts, q
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, sum={self.sum:.6f})"


def _format_value(value: float) -> str:
    """Prometheus-style number formatting: integers without a trailing
    ``.0``, floats in shortest repr."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


Instrument = Union[Counter, Gauge, Histogram]
SnapshotValue = Union[int, float, Dict[str, object]]


class MetricsRegistry:
    """A named collection of instruments.

    ``counter``/``gauge``/``histogram`` create-or-return by name under
    a registry lock; callers cache the returned instrument in a local
    (module- or instance-level) so steady-state bumps never touch the
    registry again.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors -------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._reserve(name)
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._reserve(name)
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._reserve(name)
                instrument = self._histograms[name] = Histogram(buckets)
            return instrument

    def _reserve(self, name: str) -> None:
        """Guard against one name registered as two instrument kinds."""
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(
                f"metric {name!r} already registered as another kind"
            )

    # -- inspection ------------------------------------------------
    def snapshot(self) -> Dict[str, SnapshotValue]:
        """A flat name→value dict: ints for counters, floats for
        gauges, ``{count, sum, buckets, overflow}`` for histograms."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out: Dict[str, SnapshotValue] = {}
        for name, counter in counters.items():
            out[name] = counter.value
        for name, gauge in gauges.items():
            out[name] = gauge.value
        for name, histogram in histograms.items():
            out[name] = histogram.to_dict()
        return out

    def diff(
        self, before: Mapping[str, SnapshotValue]
    ) -> Dict[str, SnapshotValue]:
        """Change since *before* (an earlier :meth:`snapshot`).

        Counters/gauges subtract; histograms subtract count and sum.
        Names absent from *before* diff against zero, so benchmarks can
        take a snapshot before any instrument exists.
        """
        out: Dict[str, SnapshotValue] = {}
        for name, value in self.snapshot().items():
            prior = before.get(name)
            if isinstance(value, dict):
                prior_count = prior.get("count", 0) if isinstance(
                    prior, dict
                ) else 0
                prior_sum = prior.get("sum", 0.0) if isinstance(
                    prior, dict
                ) else 0.0
                out[name] = {
                    "count": value["count"] - prior_count,
                    "sum": value["sum"] - prior_sum,
                }
            else:
                base = prior if isinstance(prior, (int, float)) else 0
                out[name] = value - base
        return out

    def render_prometheus(self, namespace: str = "repro") -> str:
        """The registry in Prometheus text exposition format (0.0.4).

        Counters render as ``<ns>_<name>_total``, gauges as plain
        gauges, histograms as cumulative ``_bucket{le="..."}`` series
        (``+Inf`` included) plus ``_sum``/``_count`` — exactly what a
        Prometheus scrape of the ``/metrics`` endpoint expects.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        lines: List[str] = []

        def metric_name(name: str) -> str:
            return namespace + "_" + name.replace(".", "_").replace("-", "_")

        for name, counter in counters:
            base = metric_name(name) + "_total"
            lines.append(f"# HELP {base} {name}")
            lines.append(f"# TYPE {base} counter")
            lines.append(f"{base} {counter.value}")
        for name, gauge in gauges:
            base = metric_name(name)
            lines.append(f"# HELP {base} {name}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_format_value(gauge.value)}")
        for name, histogram in histograms:
            base = metric_name(name)
            with histogram._lock:
                counts = list(histogram.bucket_counts)
                count = histogram.count
                total = histogram.sum
            lines.append(f"# HELP {base} {name}")
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for bound, in_bucket in zip(histogram.buckets, counts):
                cumulative += in_bucket
                lines.append(
                    f'{base}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{base}_bucket{{le="+Inf"}} {count}')
            lines.append(f"{base}_sum {_format_value(total)}")
            lines.append(f"{base}_count {count}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every instrument (tests only — production counters are
        monotonic by contract)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        for counter in counters:
            counter.set(0)
        for gauge in gauges:
            gauge.set(0.0)
        for histogram in histograms:
            with histogram._lock:
                histogram.bucket_counts = [0] * len(
                    histogram.bucket_counts
                )
                histogram.count = 0
                histogram.sum = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})"
            )


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every layer reports into."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default (test isolation); returns the old one.

    Layers cache instrument objects at import time, so swapping the
    registry does not redirect already-bound instruments — use
    ``default_registry().diff(...)`` for most tests and reserve this
    for whole-process isolation.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous

"""Process-wide metrics: named counters, gauges and histograms.

One registry, every layer reporting the same named series — the
telemetry analogue of the paper's uniform treatment of inference
methods. The design goals, in order:

* **Cheap when idle.** Reading a counter is a plain attribute access;
  bumping one takes a per-instance lock only because the service layer
  commits from multiple threads. No global lock is ever held on the
  read path, and instruments are created once and cached by name.
* **Dependency-free.** This module imports nothing from :mod:`repro`
  (stdlib only) so the lowest layers — the join kernel, the WAL, the
  fact stores — can import it without cycles.
* **Diffable.** Tests and benchmarks pin behaviour with
  ``snapshot()``/``diff()`` instead of reaching into module globals.

Naming scheme — ``layer.metric``, documented in the README catalog:

========== ====================================================
prefix      layer
========== ====================================================
``join.``   batch/tuple join kernel (:mod:`repro.datalog.joins`)
``plan.``   join planner
``magic.``  magic-sets / supplementary rewrite + saturation
``store.``  fact-store backends (group index builds, …)
``cache.``  derived-result cache
``wal.``    write-ahead log
``txn.``    transaction manager / group commit
``gate.``   integrity-gate admission
========== ====================================================
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "set_default_registry",
]


# Latency buckets in seconds: 0.1ms .. 5s, wide enough for both the
# join kernel's per-query work and the service's commit lingers.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)


class Counter:
    """A monotonically increasing count. Reads are lock-free."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: int) -> None:
        """Force the count (used by the legacy ``JOIN_COUNTERS`` reset
        shim; new code should only ever :meth:`inc`)."""
        with self._lock:
            self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-bucket histogram of observed values (typically seconds).

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``; the
    final slot counts overflows. Cumulative-style output is left to
    :meth:`to_dict` so hot-path observes stay one index + three adds.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "_lock")

    def __init__(self, buckets: Optional[Sequence[float]] = None) -> None:
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets: Tuple[float, ...] = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.sum += value

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "buckets": {
                    ("le_%g" % bound): count
                    for bound, count in zip(
                        self.buckets, self.bucket_counts
                    )
                },
                "overflow": self.bucket_counts[-1],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, sum={self.sum:.6f})"


Instrument = Union[Counter, Gauge, Histogram]
SnapshotValue = Union[int, float, Dict[str, object]]


class MetricsRegistry:
    """A named collection of instruments.

    ``counter``/``gauge``/``histogram`` create-or-return by name under
    a registry lock; callers cache the returned instrument in a local
    (module- or instance-level) so steady-state bumps never touch the
    registry again.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors -------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._reserve(name)
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._reserve(name)
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._reserve(name)
                instrument = self._histograms[name] = Histogram(buckets)
            return instrument

    def _reserve(self, name: str) -> None:
        """Guard against one name registered as two instrument kinds."""
        if (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        ):
            raise ValueError(
                f"metric {name!r} already registered as another kind"
            )

    # -- inspection ------------------------------------------------
    def snapshot(self) -> Dict[str, SnapshotValue]:
        """A flat name→value dict: ints for counters, floats for
        gauges, ``{count, sum, buckets, overflow}`` for histograms."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out: Dict[str, SnapshotValue] = {}
        for name, counter in counters.items():
            out[name] = counter.value
        for name, gauge in gauges.items():
            out[name] = gauge.value
        for name, histogram in histograms.items():
            out[name] = histogram.to_dict()
        return out

    def diff(
        self, before: Mapping[str, SnapshotValue]
    ) -> Dict[str, SnapshotValue]:
        """Change since *before* (an earlier :meth:`snapshot`).

        Counters/gauges subtract; histograms subtract count and sum.
        Names absent from *before* diff against zero, so benchmarks can
        take a snapshot before any instrument exists.
        """
        out: Dict[str, SnapshotValue] = {}
        for name, value in self.snapshot().items():
            prior = before.get(name)
            if isinstance(value, dict):
                prior_count = prior.get("count", 0) if isinstance(
                    prior, dict
                ) else 0
                prior_sum = prior.get("sum", 0.0) if isinstance(
                    prior, dict
                ) else 0.0
                out[name] = {
                    "count": value["count"] - prior_count,
                    "sum": value["sum"] - prior_sum,
                }
            else:
                base = prior if isinstance(prior, (int, float)) else 0
                out[name] = value - base
        return out

    def reset(self) -> None:
        """Zero every instrument (tests only — production counters are
        monotonic by contract)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        for counter in counters:
            counter.set(0)
        for gauge in gauges:
            gauge.set(0.0)
        for histogram in histograms:
            with histogram._lock:
                histogram.bucket_counts = [0] * len(
                    histogram.bucket_counts
                )
                histogram.count = 0
                histogram.sum = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})"
            )


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry every layer reports into."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default (test isolation); returns the old one.

    Layers cache instrument objects at import time, so swapping the
    registry does not redirect already-bound instruments — use
    ``default_registry().diff(...)`` for most tests and reserve this
    for whole-process isolation.
    """
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = registry
    return previous

"""Wire-propagated trace context: one trace across the service edge.

A :class:`TraceContext` is the pair ``(trace_id, span_id)`` a client
stamps onto every NDJSON request (the ``trace`` field). The server
adopts it into the ContextVar-based :class:`~repro.obs.trace.QueryTrace`
machinery, so the server-side work a request causes — verb dispatch,
session staging, the integrity-gate check, the WAL append — becomes
:class:`Span` records *under the client's trace_id*, and the client can
correlate its request with the server's slow-query log line, EXPLAIN
payload and structured error records without any clock agreement.

Stdlib-only (like the rest of :mod:`repro.obs`) so the lowest layers
can import it without cycles. Identifiers follow the W3C
traceparent shape: 16-byte hex trace ids, 8-byte hex span ids.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Mapping, Optional

__all__ = ["TraceContext", "Span"]


def new_trace_id() -> str:
    """A fresh 16-byte (32 hex chars) trace identifier."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 8-byte (16 hex chars) span identifier."""
    return os.urandom(8).hex()


def _is_hex_id(value: Any, length: int) -> bool:
    if not isinstance(value, str) or len(value) != length:
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


class TraceContext:
    """The propagated half of a trace: which trace, which parent span."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    @classmethod
    def generate(cls) -> "TraceContext":
        """A root context: new trace, new root span (the client call)."""
        return cls(new_trace_id(), new_span_id())

    def child(self) -> "TraceContext":
        """Same trace, fresh span — for fan-out under one request."""
        return TraceContext(self.trace_id, new_span_id())

    def to_wire(self) -> Dict[str, str]:
        """The ``trace`` field of a protocol request."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, data: Any) -> Optional["TraceContext"]:
        """Parse a request's ``trace`` field; anything malformed is
        ignored (``None``) — observability must never fail a verb."""
        if not isinstance(data, Mapping):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not _is_hex_id(trace_id, 32) or not _is_hex_id(span_id, 16):
            return None
        return cls(trace_id, span_id)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and (self.trace_id, self.span_id)
            == (other.trace_id, other.span_id)
        )

    def __repr__(self) -> str:
        return f"TraceContext({self.trace_id}, {self.span_id})"


class Span:
    """One timed unit of server-side work under a trace.

    ``parent_id`` links spans into a tree: the root spans' parent is
    the *client's* span id (from the wire context), so the client call
    is the tree's root even though it was timed on another machine.
    """

    __slots__ = ("name", "span_id", "parent_id", "elapsed", "attrs")

    def __init__(
        self,
        name: str,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.span_id = span_id or new_span_id()
        self.parent_id = parent_id
        self.elapsed: Optional[float] = None
        self.attrs: Dict[str, Any] = dict(attrs or {})

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "elapsed_seconds": self.elapsed,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.span_id})"

"""Windowed aggregation: rates and quantiles over the last N seconds.

The metrics registry is cumulative — perfect for Prometheus, useless
for "what is the commit rate *right now*". :class:`SlidingWindow`
closes that gap: a ring of per-second buckets fed from registry
snapshots (the exporter thread samples once a second), each bucket
holding the counter deltas and per-histogram-bucket observation deltas
landed in that second. From the ring it rolls up:

* **rates** — counter movement per second over 1s/10s/60s horizons
  (commit throughput, query rate, conflict rate, WAL bytes/s);
* **windowed quantiles** — p50/p95/p99 over the last 60s of each
  latency histogram (gate check, WAL append, session), via the same
  :func:`~repro.obs.metrics.quantile_from_buckets` estimator the
  cumulative summaries use.

The clock is injectable so rollup behaviour is testable under
simulated time; wall-clock gaps (an idle server) simply leave missing
ring slots, which read as zero.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import QUANTILES, quantile_from_buckets

__all__ = ["SlidingWindow", "HORIZONS"]

#: Rollup horizons in seconds: instantaneous, smoothed, trend.
HORIZONS: Tuple[int, ...] = (1, 10, 60)


class _Bucket:
    """Deltas landed during one wall-clock second."""

    __slots__ = ("second", "counters", "histograms")

    def __init__(self, second: int):
        self.second = second
        self.counters: Dict[str, float] = {}
        # name -> (bounds, per-bucket observation deltas incl. overflow)
        self.histograms: Dict[str, Tuple[List[float], List[int]]] = {}


class SlidingWindow:
    """Ring of per-second buckets over the trailing *width* seconds."""

    def __init__(
        self,
        width: int = 60,
        clock: Callable[[], float] = time.monotonic,
    ):
        if width < max(HORIZONS):
            raise ValueError(
                f"window width {width} shorter than the largest "
                f"rollup horizon {max(HORIZONS)}"
            )
        self._width = width
        self._clock = clock
        self._ring: List[Optional[_Bucket]] = [None] * width
        self._previous: Optional[Dict[str, object]] = None
        self._lock = threading.Lock()
        self.samples = 0

    # -- feeding ---------------------------------------------------
    def ingest(self, snapshot: Mapping[str, object]) -> None:
        """Fold one registry snapshot into the current second's bucket.

        The first snapshot only establishes the baseline; every later
        one contributes (snapshot - previous) to the bucket for
        ``int(clock())``. Multiple ingests within one second accumulate
        into the same bucket.
        """
        second = int(self._clock())
        with self._lock:
            previous, self._previous = self._previous, dict(snapshot)
            self.samples += 1
            if previous is None:
                return
            bucket = self._bucket_for(second)
            for name, value in snapshot.items():
                before = previous.get(name)
                if isinstance(value, (int, float)):
                    base = before if isinstance(before, (int, float)) else 0
                    delta = value - base
                    if delta:
                        bucket.counters[name] = (
                            bucket.counters.get(name, 0) + delta
                        )
                elif isinstance(value, dict) and "counts" in value:
                    counts = list(value["counts"])
                    prior = (
                        list(before.get("counts", ()))
                        if isinstance(before, dict)
                        else []
                    )
                    if len(prior) != len(counts):
                        prior = [0] * len(counts)
                    deltas = [
                        now - then for now, then in zip(counts, prior)
                    ]
                    if any(deltas):
                        bounds, acc = bucket.histograms.get(
                            name, (list(value.get("bounds", ())), None)
                        )
                        if acc is None or len(acc) != len(deltas):
                            acc = [0] * len(deltas)
                        bucket.histograms[name] = (
                            bounds,
                            [a + d for a, d in zip(acc, deltas)],
                        )

    def _bucket_for(self, second: int) -> _Bucket:
        slot = second % self._width
        bucket = self._ring[slot]
        if bucket is None or bucket.second != second:
            bucket = self._ring[slot] = _Bucket(second)
        return bucket

    # -- rollups ---------------------------------------------------
    def _live_buckets(self, horizon: int) -> List[_Bucket]:
        """Buckets within the last *horizon* whole seconds (excluding
        the still-filling current second when older data exists)."""
        now = int(self._clock())
        lo = now - horizon
        return [
            bucket
            for bucket in self._ring
            if bucket is not None and lo <= bucket.second < now
        ]

    def rate(self, name: str, horizon: int = 10) -> float:
        """Average per-second movement of counter *name* over the last
        *horizon* seconds (absent seconds count as zero)."""
        with self._lock:
            total = sum(
                bucket.counters.get(name, 0)
                for bucket in self._live_buckets(horizon)
            )
        return total / horizon if horizon else 0.0

    def quantile(self, name: str, q: float, horizon: int = 60) -> float:
        """The *q*-quantile of histogram *name* over the last *horizon*
        seconds of observations (0.0 when none landed)."""
        with self._lock:
            bounds, counts = self._merged_histogram(name, horizon)
        if not counts:
            return 0.0
        return quantile_from_buckets(bounds, counts, q)

    def _merged_histogram(
        self, name: str, horizon: int
    ) -> Tuple[List[float], List[int]]:
        bounds: List[float] = []
        merged: List[int] = []
        for bucket in self._live_buckets(horizon):
            entry = bucket.histograms.get(name)
            if entry is None:
                continue
            entry_bounds, deltas = entry
            if not merged:
                bounds = entry_bounds
                merged = list(deltas)
            elif len(deltas) == len(merged):
                merged = [a + d for a, d in zip(merged, deltas)]
        return bounds, merged

    def summary(self) -> Dict[str, object]:
        """Everything ``repro top`` renders: per-counter rates at every
        horizon and windowed quantiles per histogram."""
        with self._lock:
            names: set = set()
            hist_names: set = set()
            per_horizon: Dict[int, List[_Bucket]] = {
                horizon: self._live_buckets(horizon)
                for horizon in HORIZONS
            }
            for bucket in per_horizon[max(HORIZONS)]:
                names.update(bucket.counters)
                hist_names.update(bucket.histograms)
            rates: Dict[str, Dict[str, float]] = {}
            for name in sorted(names):
                rates[name] = {
                    f"{horizon}s": sum(
                        bucket.counters.get(name, 0)
                        for bucket in per_horizon[horizon]
                    )
                    / horizon
                    for horizon in HORIZONS
                }
            quantiles: Dict[str, Dict[str, float]] = {}
            for name in sorted(hist_names):
                bounds, counts = self._merged_histogram(
                    name, max(HORIZONS)
                )
                if not counts or not sum(counts):
                    continue
                entry = {"observations": sum(counts)}
                for q in QUANTILES:
                    entry["p%g" % (q * 100)] = quantile_from_buckets(
                        bounds, counts, q
                    )
                quantiles[name] = entry
        return {
            "width_seconds": self._width,
            "samples": self.samples,
            "rates": rates,
            "quantiles": quantiles,
        }

"""repro.obs — the unified telemetry subsystem.

Three pieces, all stdlib-only so every engine layer can import them
without cycles:

* :mod:`repro.obs.metrics` — the process-default :class:`MetricsRegistry`
  of named counters/gauges/histograms (``layer.metric`` naming).
* :mod:`repro.obs.trace` — per-query :class:`QueryTrace` collection and
  the human-readable EXPLAIN rendering.
* stdlib :mod:`logging` under the ``repro.obs`` namespace for the
  slow-query log and the server's structured connection events. A
  ``NullHandler`` is installed here so an application that never
  configures logging sees no spurious stderr output.
"""

from __future__ import annotations

import logging

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.trace import (
    QueryTrace,
    current_trace,
    maybe_trace,
    trace_query,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "QueryTrace",
    "current_trace",
    "maybe_trace",
    "trace_query",
]

logging.getLogger("repro.obs").addHandler(logging.NullHandler())

"""repro.obs — the unified telemetry subsystem.

All stdlib-only so every engine layer can import them without cycles:

* :mod:`repro.obs.metrics` — the process-default :class:`MetricsRegistry`
  of named counters/gauges/histograms (``layer.metric`` naming), with
  Prometheus text rendering and bucket-interpolated quantiles.
* :mod:`repro.obs.spans` — wire-propagatable :class:`TraceContext`
  (trace_id + span id) and timed :class:`Span` records.
* :mod:`repro.obs.trace` — per-query :class:`QueryTrace` collection and
  the human-readable EXPLAIN rendering (:func:`render_trace` works on
  wire payloads too).
* :mod:`repro.obs.window` — :class:`SlidingWindow` rollups of registry
  snapshots: per-second rates and windowed quantiles.
* :mod:`repro.obs.export` — the :class:`MetricsExporter` HTTP sidecar
  (``/metrics``, ``/metrics.json``, ``/healthz``, ``/readyz``).
* stdlib :mod:`logging` under the ``repro.obs`` namespace for the
  slow-query log and the server's structured connection events. A
  ``NullHandler`` is installed here so an application that never
  configures logging sees no spurious stderr output.
"""

from __future__ import annotations

import logging

from repro.obs.export import MetricsExporter, ReadinessProbe
from repro.obs.metrics import (
    QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    quantile_from_buckets,
    set_default_registry,
)
from repro.obs.spans import Span, TraceContext
from repro.obs.trace import (
    QueryTrace,
    current_trace,
    maybe_trace,
    render_trace,
    trace_query,
)
from repro.obs.window import HORIZONS, SlidingWindow

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QUANTILES",
    "default_registry",
    "quantile_from_buckets",
    "set_default_registry",
    "Span",
    "TraceContext",
    "QueryTrace",
    "current_trace",
    "maybe_trace",
    "render_trace",
    "trace_query",
    "HORIZONS",
    "SlidingWindow",
    "MetricsExporter",
    "ReadinessProbe",
]

logging.getLogger("repro.obs").addHandler(logging.NullHandler())

"""The scrape surface: Prometheus/JSON metrics and health endpoints.

A :class:`MetricsExporter` runs a stdlib :mod:`http.server` on its own
daemon thread next to the NDJSON service (started by ``repro serve
--metrics-port``), serving:

``/metrics``
    The process registry in Prometheus text exposition format
    (:meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`).
``/metrics.json``
    The raw snapshot plus the sliding-window rollups (rates and
    windowed quantiles) and any host-supplied ``info`` payload
    (per-database LSN/fact/session counts) — what ``repro top`` reads.
``/healthz``
    Process liveness: 200 whenever the thread can answer at all.
``/readyz``
    Service readiness: 200 only while every registered check passes —
    recovery finished, WAL writable (last append succeeded), commit
    queue below its threshold, last fsync not stale behind appends.
    503 with a JSON body naming the failing checks otherwise.

A second daemon thread samples the registry once a second into a
:class:`~repro.obs.window.SlidingWindow`, so windowed rates exist even
when nobody is scraping.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import urlparse

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.window import SlidingWindow

__all__ = [
    "MetricsExporter",
    "ReadinessProbe",
    "DEFAULT_QUEUE_MAX",
    "DEFAULT_FSYNC_MAX_AGE",
]

_LOG = logging.getLogger("repro.obs.export")

#: Readiness thresholds: a commit queue deeper than this, or appends
#: running this many seconds ahead of the last successful fsync, mean
#: the service should stop receiving new traffic.
DEFAULT_QUEUE_MAX = 64
DEFAULT_FSYNC_MAX_AGE = 60.0


class ReadinessProbe:
    """The ``/readyz`` decision: named checks over the live registry."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        *,
        queue_max: int = DEFAULT_QUEUE_MAX,
        fsync_max_age: float = DEFAULT_FSYNC_MAX_AGE,
        clock: Callable[[], float] = time.time,
    ):
        self._registry = registry or default_registry()
        self.queue_max = queue_max
        self.fsync_max_age = fsync_max_age
        self._clock = clock
        self._ready = threading.Event()

    def mark_ready(self, ready: bool = True) -> None:
        """Flip the recovery-finished bit (the server sets it once it
        is accepting connections)."""
        if ready:
            self._ready.set()
        else:
            self._ready.clear()

    def checks(self) -> Dict[str, Dict[str, object]]:
        """Every check's verdict with the number it judged."""
        snapshot = self._registry.snapshot()

        def gauge(name: str, default: float = 0.0) -> float:
            value = snapshot.get(name, default)
            return value if isinstance(value, (int, float)) else default

        out: Dict[str, Dict[str, object]] = {}
        out["recovery"] = {
            "ok": self._ready.is_set(),
            "detail": "serving" if self._ready.is_set() else "starting",
        }
        # wal.healthy is 1 after a successful append, 0 after a failed
        # one; a process that never appended (no WAL, read-only) has no
        # opinion and passes.
        healthy = gauge("wal.healthy", 1.0)
        out["wal_writable"] = {
            "ok": bool(healthy),
            "detail": f"wal.healthy={healthy:g}",
        }
        depth = gauge("txn.queue_depth")
        out["commit_queue"] = {
            "ok": depth <= self.queue_max,
            "detail": f"depth {depth:g} (max {self.queue_max})",
        }
        # Stale fsync: appends are being attempted but the last
        # successful fsync is falling behind them. Servers running
        # sync=False never fsync (last_fsync stays 0) and pass.
        last_fsync = gauge("wal.last_fsync_unix")
        last_append = gauge("wal.last_append_unix")
        lag = last_append - last_fsync if last_fsync > 0 else 0.0
        out["fsync_age"] = {
            "ok": lag <= self.fsync_max_age,
            "detail": f"append-over-fsync lag {lag:.1f}s "
            f"(max {self.fsync_max_age:g}s)",
        }
        return out

    def ready(self) -> Tuple[bool, Dict[str, Dict[str, object]]]:
        checks = self.checks()
        return all(check["ok"] for check in checks.values()), checks


class _Handler(BaseHTTPRequestHandler):
    server: "_HttpServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        exporter = self.server.exporter
        path = urlparse(self.path).path
        try:
            if path == "/metrics":
                body = exporter.registry.render_prometheus().encode("utf-8")
                self._reply(
                    200, body, "text/plain; version=0.0.4; charset=utf-8"
                )
            elif path == "/metrics.json":
                self._reply_json(200, exporter.payload())
            elif path == "/healthz":
                self._reply_json(200, {"status": "ok"})
            elif path == "/readyz":
                ok, checks = exporter.probe.ready()
                self._reply_json(
                    200 if ok else 503, {"ready": ok, "checks": checks}
                )
            else:
                self._reply_json(404, {"error": f"no route {path!r}"})
        except BrokenPipeError:  # scraper went away mid-reply
            pass
        except Exception as error:  # pragma: no cover - defensive
            _LOG.warning("scrape failed: %s", error)
            try:
                self._reply_json(500, {"error": str(error)})
            except OSError:
                pass

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, status: int, payload: Dict) -> None:
        self._reply(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _LOG.debug("http: " + format, *args)


class _HttpServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    exporter: "MetricsExporter"


class MetricsExporter:
    """The observability sidecar: scrape endpoints + window sampler."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        probe: Optional[ReadinessProbe] = None,
        info: Optional[Callable[[], Dict]] = None,
        window: Optional[SlidingWindow] = None,
        sample_interval: float = 1.0,
    ):
        self.registry = registry or default_registry()
        self.probe = probe or ReadinessProbe(self.registry)
        self.window = window or SlidingWindow()
        self._info = info
        self._interval = sample_interval
        self._http = _HttpServer((host, port), _Handler)
        self._http.exporter = self
        self._threads: list = []
        self._stop = threading.Event()
        self._started = time.time()

    # -- lifecycle -------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return self._http.server_address[:2]

    def url(self, path: str = "/metrics") -> str:
        host, port = self.address
        return f"http://{host}:{port}{path}"

    def start(self) -> "MetricsExporter":
        serve = threading.Thread(
            target=self._http.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        sample = threading.Thread(
            target=self._sample_loop,
            name="repro-metrics-sampler",
            daemon=True,
        )
        self._threads = [serve, sample]
        serve.start()
        sample.start()
        return self

    def close(self) -> None:
        self._stop.set()
        self._http.shutdown()
        self._http.server_close()
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads = []

    def mark_ready(self, ready: bool = True) -> None:
        self.probe.mark_ready(ready)

    # -- data ------------------------------------------------------
    def _sample_loop(self) -> None:
        # Seed the delta baseline immediately so the first interval's
        # movement is already attributed.
        self.window.ingest(self.registry.snapshot())
        while not self._stop.wait(self._interval):
            try:
                self.window.ingest(self.registry.snapshot())
            except Exception as error:  # pragma: no cover - defensive
                _LOG.warning("window sample failed: %s", error)

    def sample_now(self) -> None:
        """Force one window sample (tests; the loop owns production)."""
        self.window.ingest(self.registry.snapshot())

    def payload(self) -> Dict:
        """The ``/metrics.json`` document."""
        out: Dict = {
            "uptime_seconds": time.time() - self._started,
            "metrics": self.registry.snapshot(),
            "window": self.window.summary(),
        }
        if self._info is not None:
            try:
                out["info"] = self._info()
            except Exception as error:  # info must never fail a scrape
                out["info"] = {"error": str(error)}
        return out

"""Selectivity-driven join planning for conjunctive rule bodies.

Every inference method in this library — bottom-up (naive and
semi-naive) model computation, tabled top-down resolution, DRed
maintenance joins, the ``delta`` meta-interpreter's rest-of-body
evaluation — bottoms out in the same kernel: enumerate the
substitutions satisfying a conjunction of literals
(:func:`repro.datalog.joins.join_literals`). The literal *order* chosen
for that enumeration dominates its cost: solving a large relation
before the small one that restricts it multiplies the search by the
large relation's cardinality.

A :class:`Planner` decides that order. Two implementations exist:

``source``
    Literals are solved exactly in rule-source order — the seed
    behaviour, kept as the correctness oracle the property tests and
    benchmarks compare against.

``greedy``
    Classic selectivity-greedy ordering, re-planned per call (bindings
    differ between calls, so selectivity does too). At each step the
    planner picks, among the literals *connected* to what is already
    bound (sharing a variable, or fully bound — avoiding cross
    products whenever the body's join graph allows), the literal with
    the smallest index-aware cardinality estimate (bound argument
    positions shrink it), breaking ties by fewer unbound arguments and
    finally by source position (for determinism).

Planning covers the positive literals only; negative literals are
interleaved dynamically by ``join_literals`` at the earliest point
their variables are ground, which the chosen positive order determines.

Cardinality estimates come from whatever the consumer evaluates
against: anything exposing ``estimate(pattern)`` (``FactStore``,
``OverlayFactStore``, ``QueryEngine``) or, failing that, ``count(pred)``.
Both are O(1) per the stores' cardinality accounting, so planning a
body of k literals costs O(k²) dictionary lookups — noise next to a
single needless relation scan.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Set, Tuple

from repro.logic.formulas import Atom, Literal
from repro.logic.terms import Variable
from repro.obs.trace import current_trace

PLANS = ("greedy", "source")
DEFAULT_PLAN = "greedy"

# Estimated matches for a positive literal, given its original body
# index and its (partially instantiated) atom.
CardinalityEstimator = Callable[[int, Atom], int]

# What an unknown predicate is assumed to cost: pessimistic, so unknown
# literals are scheduled late. Public because engines use it to mark
# intensional predicates whose extent has not been computed yet.
UNKNOWN_CARDINALITY = 1 << 30

# A positive literal tagged with its original body index (the index
# keys the caller's matcher, e.g. semi-naive delta restriction).
IndexedLiteral = Tuple[int, Literal]


def validate_plan(plan: str) -> str:
    if plan not in PLANS:
        raise ValueError(f"unknown plan {plan!r}; pick one of {PLANS}")
    return plan


class Planner:
    """Order the positive literals of a rule body for evaluation."""

    name: str = "abstract"

    def order(
        self, positives: Sequence[IndexedLiteral], bound: Set[Variable]
    ) -> List[IndexedLiteral]:
        raise NotImplementedError

    def with_cardinality(self, estimator: CardinalityEstimator) -> "Planner":
        """A planner variant using *estimator* for this join only (the
        semi-naive seam: the delta-restricted occurrence is far smaller
        than its predicate's full extent)."""
        return self


class SourcePlanner(Planner):
    """The identity plan: source order, the unplanned oracle."""

    name = "source"

    def order(
        self, positives: Sequence[IndexedLiteral], bound: Set[Variable]
    ) -> List[IndexedLiteral]:
        return list(positives)


class GreedyPlanner(Planner):
    """Greedy selectivity ordering over a cardinality estimator."""

    name = "greedy"

    __slots__ = ("_estimate",)

    def __init__(self, estimator: CardinalityEstimator):
        self._estimate = estimator

    def with_cardinality(self, estimator: CardinalityEstimator) -> "GreedyPlanner":
        return GreedyPlanner(estimator)

    def order(
        self, positives: Sequence[IndexedLiteral], bound: Set[Variable]
    ) -> List[IndexedLiteral]:
        if len(positives) < 2:
            return list(positives)
        trace = current_trace()
        if trace is None:
            return self._order(positives, bound)
        with trace.phase("plan"):
            return self._order(positives, bound)

    def _order(
        self, positives: Sequence[IndexedLiteral], bound: Set[Variable]
    ) -> List[IndexedLiteral]:
        remaining = list(positives)
        bound_vars = set(bound)
        ordered: List[IndexedLiteral] = []
        while remaining:
            best_position = min(
                range(len(remaining)),
                key=lambda i: self._score(remaining[i], bound_vars),
            )
            chosen = remaining.pop(best_position)
            ordered.append(chosen)
            bound_vars.update(chosen[1].atom.variables())
        return ordered

    def _score(
        self, indexed: IndexedLiteral, bound: Set[Variable]
    ) -> Tuple[int, int, int, int]:
        """Smaller is better: (cross-product?, cardinality estimate,
        unbound argument count, source position).

        The estimate outranks the unbound-argument count: it is already
        index-aware (bound constant positions shrink it), whereas
        arity says nothing about extent — a huge unary relation must
        not be enumerated before a three-tuple binary one just because
        it has fewer argument positions.
        """
        index, literal = indexed
        atom = literal.atom
        free = [
            arg
            for arg in atom.args
            if isinstance(arg, Variable) and arg not in bound
        ]
        connected = len(free) < len(atom.args) or not atom.args
        return (
            0 if connected else 1,
            self._estimate(index, atom),
            len(free),
            index,
        )


def source_cardinality(source) -> CardinalityEstimator:
    """Best-effort O(1) estimator over any fact source.

    Prefers ``estimate(pattern)`` (index-aware: accounts for bound
    argument positions), falls back to ``count(pred)``, and assumes the
    worst for sources exposing neither.
    """
    estimate = getattr(source, "estimate", None)
    if estimate is not None:
        return lambda index, atom: estimate(atom)
    count = getattr(source, "count", None)
    if count is not None:
        return lambda index, atom: count(atom.pred)
    return lambda index, atom: UNKNOWN_CARDINALITY


_SOURCE_PLANNER = SourcePlanner()


def make_planner(plan: str, source=None) -> Planner:
    """The planner implementing *plan* over *source*'s statistics."""
    validate_plan(plan)
    if plan == "source":
        return _SOURCE_PLANNER
    return GreedyPlanner(source_cardinality(source))

"""Top-down, goal-directed evaluation with tabling.

This is the stand-in for the recursion-capable query evaluator the
paper assumes ([VIEI 87]): queries are solved backward from the goal,
answers to every subgoal are memoized in *tables* keyed by the subgoal's
variant class, and recursive programs are handled by iterating the
whole proof-tree exploration until no table grows (a restart-based
approximation of OLDT completion — simpler than suspension/resumption
bookkeeping and adequate for the fact-base sizes a main-memory deductive
database handles).

Negative subgoals are evaluated against strictly lower strata (the
program is stratified), via a nested, independently-driven evaluation —
lower strata can never reach the tables currently in progress, so the
nested result is already complete.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.datalog.joins import join_body
from repro.datalog.planner import (
    UNKNOWN_CARDINALITY,
    make_planner,
)
from repro.datalog.program import Program
from repro.logic.formulas import Atom
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable
from repro.logic.unify import match, mgu

_TableKey = Tuple[str, Tuple[object, ...]]


def _variant_key(pattern: Atom) -> _TableKey:
    """Canonical key identifying the variant class of a subgoal:
    constants stay, variables are numbered by first occurrence."""
    numbering: Dict[Variable, int] = {}
    parts: List[object] = []
    for arg in pattern.args:
        if isinstance(arg, Variable):
            if arg not in numbering:
                numbering[arg] = len(numbering)
            parts.append(numbering[arg])
        else:
            parts.append(arg)
    return (pattern.pred, tuple(parts))


class TabledEvaluator:
    """Goal-directed evaluator over a fact source and a program."""

    def __init__(
        self,
        facts,
        program: Program,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        *,
        config=None,
    ):
        from repro.config import resolve_config

        config = resolve_config(
            config, plan=plan, exec_mode=exec_mode, warn=False
        )
        self.config = config
        plan, exec_mode = config.plan, config.exec_mode
        self.facts = facts
        self.program = program
        # Body joins dispatch through join_body with the head unifier
        # folded into the rule up front (standardized apart), so the
        # binding seam is always relational and batch execution never
        # falls back to tuple joins.
        self.exec_mode = exec_mode
        self.join_algo = config.join_algo
        self._tables: Dict[_TableKey, Set[Atom]] = {}
        self._complete: Set[_TableKey] = set()
        self._in_progress: Set[_TableKey] = set()
        self._in_progress_preds: Dict[str, int] = {}
        self._changed = False
        # Rule-derived answers per variant table, and per predicate the
        # largest variant's count — the intensional half of the
        # planner's cardinality estimate. Taking the maximum (not the
        # sum) keeps the estimate stable when the same fact lands in
        # several differently-bound variant tables over repeated
        # queries.
        self._key_derived: Dict[_TableKey, int] = {}
        self._pred_answers: Dict[str, int] = {}
        # Predicates with at least one completed variant — only their
        # table counts are trustworthy statistics; an unsolved
        # intensional predicate's extent is unknown regardless of how
        # many extensional facts share its name.
        self._solved_preds: Set[str] = set()
        self.planner = make_planner(plan, facts).with_cardinality(
            lambda index, atom: self.estimate(atom)
        )

    # -- public API ---------------------------------------------------------------

    def answers(self, pattern: Atom) -> Iterator[Substitution]:
        """All answer substitutions for *pattern*."""
        for fact in self.solve(pattern):
            subst = match(pattern, fact)
            if subst is not None:
                yield subst

    def holds(self, atom: Atom) -> bool:
        """Truth of a ground atom in the canonical model."""
        if not atom.is_ground():
            raise ValueError(f"holds() needs a ground atom: {atom}")
        return any(True for _ in self.solve(atom))

    def solve(self, pattern: Atom) -> List[Atom]:
        """All facts matching *pattern* in the canonical model."""
        if not self.program.is_idb(pattern.pred):
            return list(self.facts.match(pattern))
        key = _variant_key(pattern)
        if key not in self._complete:
            self._drive(pattern)
        return [
            fact
            for fact in self._tables.get(key, ())
            if match(pattern, fact) is not None
        ]

    def invalidate(self) -> None:
        """Drop all tables (call after the underlying facts change)."""
        self._tables.clear()
        self._complete.clear()
        self._key_derived.clear()
        self._pred_answers.clear()
        self._solved_preds.clear()

    def _bump_answers(self, key: _TableKey) -> None:
        derived = self._key_derived.get(key, 0) + 1
        self._key_derived[key] = derived
        pred = key[0]
        if derived > self._pred_answers.get(pred, 0):
            self._pred_answers[pred] = derived

    def estimate(self, pattern: Atom) -> int:
        """Cardinality estimate: extensional facts plus rule-derived
        answers tabled so far. An intensional predicate with no
        completed variant is costed pessimistically — solving it means
        running a possibly unbounded recursive evaluation, so it must
        not be scheduled ahead of known-small relations, even when a
        few extensional facts share its name.

        A predicate whose evaluation is currently *in progress* is the
        exception: a recursive occurrence consumes the partially built
        table (cheap), and scheduling it early keeps the subgoal's
        variant general so it hits the in-progress table instead of
        spawning one nested bound variant per binding — the restart
        loop completes the table with a shallow stack either way."""
        pred = pattern.pred
        if (
            self.program.is_idb(pred)
            and pred not in self._solved_preds
            and not self._in_progress_preds.get(pred)
        ):
            return UNKNOWN_CARDINALITY
        base = getattr(self.facts, "estimate", None)
        known = base(pattern) if base is not None else 0
        return known + self._pred_answers.get(pred, 0)

    # -- driver ----------------------------------------------------------------------

    def _drive(self, pattern: Atom) -> None:
        """Restart loop: re-explore the proof tree of *pattern* until no
        table grows, then mark every table it touched complete."""
        saved_state = (
            self._in_progress,
            self._in_progress_preds,
            self._changed,
        )
        touched: Set[_TableKey] = set()
        while True:
            self._in_progress = set()
            self._in_progress_preds = {}
            self._changed = False
            self._evaluate_goal(pattern, touched)
            if not self._changed:
                break
        self._complete.update(touched)
        self._solved_preds.update(key[0] for key in touched)
        self._in_progress, self._in_progress_preds, self._changed = saved_state

    def _evaluate_goal(self, pattern: Atom, touched: Set[_TableKey]) -> Set[Atom]:
        key = _variant_key(pattern)
        table = self._tables.setdefault(key, set())
        if key in self._complete or key in self._in_progress:
            return table
        touched.add(key)
        self._in_progress.add(key)
        pred_count = self._in_progress_preds
        pred_count[pattern.pred] = pred_count.get(pattern.pred, 0) + 1
        # Extensional contribution (a predicate may have facts and rules).
        # Not counted in _pred_answers: the facts store's own estimate
        # already covers these, only rule-derived answers are news.
        for fact in self.facts.match(pattern):
            if fact not in table:
                table.add(fact)
                self._changed = True
        for rule in self.program.rules_for(pattern.pred):
            renamed = rule.rename_apart(pattern.variables())
            unifier = mgu(renamed.head, pattern)
            if unifier is None:
                continue
            # Standardize the binding apart: fold the head unifier into
            # the rule up front, so the join starts from the empty
            # (trivially relational) binding and stays on the batch
            # path even when the unifier maps variables to variables —
            # the shape that used to force a tuple fallback
            # (JOIN_COUNTERS.tuple_fallbacks pins "no fallback" on the
            # recursive workloads).
            head = renamed.head.substitute(unifier)
            body = tuple(l.substitute(unifier) for l in renamed.body)

            def matcher(index: int, subpattern: Atom):
                yield from self._match_subgoal(subpattern, touched)

            for binding in join_body(
                body,
                Substitution.empty(),
                matcher,
                self._negation_holds,
                self.planner,
                exec_mode=self.exec_mode,
                join_algo=self.join_algo,
            ):
                fact = head.substitute(binding)
                if fact.is_ground() and fact not in table:
                    table.add(fact)
                    self._bump_answers(key)
                    self._changed = True
        self._in_progress.discard(key)
        left = self._in_progress_preds.get(pattern.pred, 0) - 1
        if left > 0:
            self._in_progress_preds[pattern.pred] = left
        else:
            self._in_progress_preds.pop(pattern.pred, None)
        return table

    def _match_subgoal(
        self, pattern: Atom, touched: Set[_TableKey]
    ) -> Iterator[Substitution]:
        if not self.program.is_idb(pattern.pred):
            yield from self.facts.match_substitutions(pattern)
            return
        answers = self._evaluate_goal(pattern, touched)
        for fact in list(answers):  # snapshot: table may grow while consumed
            subst = match(pattern, fact)
            if subst is not None:
                yield subst

    def _negation_holds(self, atom: Atom) -> bool:
        """Closed-world test for a negative subgoal. Safe because the
        atom's predicate lies in a strictly lower stratum, whose
        evaluation cannot reach any in-progress table."""
        if not self.program.is_idb(atom.pred):
            return self.facts.contains(atom)
        key = _variant_key(atom)
        if key in self._complete:
            return atom in self._tables.get(key, ())
        self._drive(atom)
        return atom in self._tables.get(key, ())

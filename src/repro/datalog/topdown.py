"""Top-down, goal-directed evaluation with tabling.

This is the stand-in for the recursion-capable query evaluator the
paper assumes ([VIEI 87]): queries are solved backward from the goal,
answers to every subgoal are memoized in *tables* keyed by the subgoal's
variant class, and recursive programs are handled by iterating the
whole proof-tree exploration until no table grows (a restart-based
approximation of OLDT completion — simpler than suspension/resumption
bookkeeping and adequate for the fact-base sizes a main-memory deductive
database handles).

Negative subgoals are evaluated against strictly lower strata (the
program is stratified), via a nested, independently-driven evaluation —
lower strata can never reach the tables currently in progress, so the
nested result is already complete.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.datalog.joins import join_literals
from repro.datalog.program import Program
from repro.logic.formulas import Atom
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.logic.unify import match, mgu

_TableKey = Tuple[str, Tuple[object, ...]]


def _variant_key(pattern: Atom) -> _TableKey:
    """Canonical key identifying the variant class of a subgoal:
    constants stay, variables are numbered by first occurrence."""
    numbering: Dict[Variable, int] = {}
    parts: List[object] = []
    for arg in pattern.args:
        if isinstance(arg, Variable):
            if arg not in numbering:
                numbering[arg] = len(numbering)
            parts.append(numbering[arg])
        else:
            parts.append(arg)
    return (pattern.pred, tuple(parts))


class TabledEvaluator:
    """Goal-directed evaluator over a fact source and a program."""

    def __init__(self, facts, program: Program):
        self.facts = facts
        self.program = program
        self._tables: Dict[_TableKey, Set[Atom]] = {}
        self._complete: Set[_TableKey] = set()
        self._in_progress: Set[_TableKey] = set()
        self._changed = False

    # -- public API ---------------------------------------------------------------

    def answers(self, pattern: Atom) -> Iterator[Substitution]:
        """All answer substitutions for *pattern*."""
        for fact in self.solve(pattern):
            subst = match(pattern, fact)
            if subst is not None:
                yield subst

    def holds(self, atom: Atom) -> bool:
        """Truth of a ground atom in the canonical model."""
        if not atom.is_ground():
            raise ValueError(f"holds() needs a ground atom: {atom}")
        return any(True for _ in self.solve(atom))

    def solve(self, pattern: Atom) -> List[Atom]:
        """All facts matching *pattern* in the canonical model."""
        if not self.program.is_idb(pattern.pred):
            return list(self.facts.match(pattern))
        key = _variant_key(pattern)
        if key not in self._complete:
            self._drive(pattern)
        return [
            fact
            for fact in self._tables.get(key, ())
            if match(pattern, fact) is not None
        ]

    def invalidate(self) -> None:
        """Drop all tables (call after the underlying facts change)."""
        self._tables.clear()
        self._complete.clear()

    # -- driver ----------------------------------------------------------------------

    def _drive(self, pattern: Atom) -> None:
        """Restart loop: re-explore the proof tree of *pattern* until no
        table grows, then mark every table it touched complete."""
        saved_state = (self._in_progress, self._changed)
        touched: Set[_TableKey] = set()
        while True:
            self._in_progress = set()
            self._changed = False
            self._evaluate_goal(pattern, touched)
            if not self._changed:
                break
        self._complete.update(touched)
        self._in_progress, self._changed = saved_state

    def _evaluate_goal(self, pattern: Atom, touched: Set[_TableKey]) -> Set[Atom]:
        key = _variant_key(pattern)
        table = self._tables.setdefault(key, set())
        if key in self._complete or key in self._in_progress:
            return table
        touched.add(key)
        self._in_progress.add(key)
        # Extensional contribution (a predicate may have facts and rules).
        for fact in self.facts.match(pattern):
            if fact not in table:
                table.add(fact)
                self._changed = True
        for rule in self.program.rules_for(pattern.pred):
            renamed = rule.rename_apart(pattern.variables())
            unifier = mgu(renamed.head, pattern)
            if unifier is None:
                continue

            def matcher(index: int, subpattern: Atom):
                yield from self._match_subgoal(subpattern, touched)

            for binding in join_literals(
                renamed.body, unifier, matcher, self._negation_holds
            ):
                fact = renamed.head.substitute(binding)
                if fact.is_ground() and fact not in table:
                    table.add(fact)
                    self._changed = True
        self._in_progress.discard(key)
        return table

    def _match_subgoal(
        self, pattern: Atom, touched: Set[_TableKey]
    ) -> Iterator[Substitution]:
        if not self.program.is_idb(pattern.pred):
            yield from self.facts.match_substitutions(pattern)
            return
        answers = self._evaluate_goal(pattern, touched)
        for fact in list(answers):  # snapshot: table may grow while consumed
            subst = match(pattern, fact)
            if subst is not None:
                yield subst

    def _negation_holds(self, atom: Atom) -> bool:
        """Closed-world test for a negative subgoal. Safe because the
        atom's predicate lies in a strictly lower stratum, whose
        evaluation cannot reach any in-progress table."""
        if not self.program.is_idb(atom.pred):
            return self.facts.contains(atom)
        key = _variant_key(atom)
        if key in self._complete:
            return atom in self._tables.get(key, ())
        self._drive(atom)
        return atom in self._tables.get(key, ())

"""Magic-sets demand transformation: goal-directed bottom-up evaluation.

Bottom-up evaluation materializes whole dependency closures even when a
query only touches a narrow slice of the model. The magic-sets rewrite
(Bancilhon/Maier/Sagiv/Ullman; Behrend's uniform fixpoint treatment
shows it is the canonical way to make bottom-up evaluation
goal-directed) specializes a program to a *query pattern*: every
intensional predicate is split into *adorned* versions — one per
binding pattern it is called with — and each adorned predicate is
guarded by a *magic* predicate holding exactly the bound-argument
tuples some demanded (sub)query asks about. Evaluating the rewritten
program bottom-up then derives only demanded tuples, matching the
goal-directedness of top-down resolution while keeping the set-at-a-
time, termination-safe fixpoint machinery.

The pipeline, in this module's terms:

1. **Adornment** — the query pattern's argument positions are classed
   ``b`` (bound: a constant) or ``f`` (free: a variable); rule bodies
   are walked in *sideways information passing* (SIP) order and every
   intensional subgoal gets the adornment its position in that order
   implies.
2. **SIP selection** — the walk order *is* the session's join plan: the
   existing :class:`repro.datalog.planner.Planner` orders the positive
   body literals given the head-bound variables (``greedy`` picks a
   selectivity-driven SIP, ``source`` the textual one), and each
   negative literal is placed at the earliest point its variables are
   ground.
3. **Rewrite** — per adorned rule, one *guarded* rule (the original
   body in SIP order, intensional subgoals adorned, prefixed with the
   head's magic guard) plus one *magic* rule per intensional subgoal
   (its bound arguments, derived from the guard and the positive
   prefix). A *copy* rule per adorned predicate keeps extensional
   facts of mixed EDB/IDB predicates visible. The query contributes
   one ground magic *seed* fact.
4. **Supplementary predicates** (default, ``supplementary=False`` to
   disable) — without them, every magic rule re-derives the guard +
   positive-prefix join its subgoal sits behind, and the guarded rule
   derives it once more: a body with k intensional subgoals evaluates
   its longest prefix k+1 times. The supplementary rewrite splits the
   SIP-ordered body at each intensional subgoal: the prefix up to the
   split is materialized **once** as a ``sup@…`` predicate (projected
   onto the variables still needed downstream), and both the magic
   rule it seeds and the next prefix segment consume that relation
   instead of re-joining. Under the set-at-a-time kernel a
   supplementary predicate is exactly a named intermediate
   ``(schema, rows)`` relation of :func:`join_literals_rows`: its
   semi-naive delta flows straight into its consumer joins, so each
   prefix is evaluated once per saturation pass instead of once per
   consumer. Negative literals stay out of supplementary bodies
   (exactly as they stay out of magic prefixes — sound, and it avoids
   gratuitous negative dependencies between demand predicates); they
   are carried to the guarded rule, whose projection keeps their
   variables alive.

Negation: negative subgoals on extensional predicates pass through
untouched. Negative intensional subgoals are ground when placed (range
restriction), get the all-bound adornment, and are demanded like
positive ones — sound for stratified programs *provided the rewritten
program is still stratified*. Demand propagation can create recursion
through negation that the source program did not have (a magic
predicate feeding a predicate its own prefix depends on negatively);
in that case :func:`magic_rewrite` raises :class:`MagicRewriteError`
with a diagnostic and callers fall back to closure materialization
(:class:`MagicEvaluator` records the reason and warns once).

Adorned and magic predicate names embed ``@``, which the parser never
produces, so rewritten programs cannot capture user predicates.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.datalog.facts import FactStore
from repro.datalog.planner import (
    UNKNOWN_CARDINALITY,
    Planner,
    make_planner,
    source_cardinality,
)
from repro.datalog.program import Program, Rule, StratificationError
from repro.logic.formulas import Atom, Literal
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.logic.unify import match
from repro.obs.metrics import default_registry
from repro.obs.trace import current_trace

# Registry mirrors of the evaluator's per-instance work accounting —
# the process-wide view the `metrics` verb serves (layer prefix
# "magic.", see repro.obs.metrics).
_REWRITES = default_registry().counter("magic.rewrites")
_DECLINED = default_registry().counter("magic.declined")
_SEEDS = default_registry().counter("magic.seeds")
_DERIVATIONS = default_registry().counter("magic.derivations")
_SATURATION_PASSES = default_registry().counter("magic.saturation_passes")


class MagicRewriteError(ValueError):
    """The demand transformation declines: the diagnostic says why."""


class MagicStratificationError(MagicRewriteError):
    """Demand propagation through negation would lose stratification —
    the one decline worth a warning: unlike an unbound or extensional
    query (ordinary control flow, handled silently by the fallback),
    it means a query class the user may expect to be goal-directed
    is quietly paying for closure materialization instead."""


class MagicFallbackWarning(UserWarning):
    """Emitted once per (predicate, adornment) when a *stratification*
    decline forces evaluation back to closure materialization. Benign
    declines (unbound or extensional queries) fall back silently —
    they are ordinary control flow, recorded in
    :attr:`MagicEvaluator.declined` but not worth a warning."""


# -- adornments --------------------------------------------------------------------


def adornment_for(args: Sequence, bound: Set[Variable]) -> str:
    """The ``b``/``f`` string classifying *args*: constants and
    variables in *bound* are bound, the rest free."""
    return "".join(
        "b" if isinstance(arg, Constant) or arg in bound else "f"
        for arg in args
    )


def adorned_name(pred: str, adornment: str) -> str:
    return f"{pred}@{adornment}"


def magic_name(pred: str, adornment: str) -> str:
    return f"magic@{pred}@{adornment}"


def sup_name(pred: str, adornment: str, rule_index: int, split: int) -> str:
    """The supplementary predicate materializing the prefix of rule
    *rule_index* (position in ``program.rules_for(pred)``) up to its
    *split*-th intensional subgoal."""
    return f"sup@{pred}@{adornment}@{rule_index}@{split}"


def bound_args(atom: Atom, adornment: str) -> Tuple:
    """The atom's arguments at the adornment's bound positions — the
    argument vector of its magic predicate."""
    return tuple(
        arg for arg, cls in zip(atom.args, adornment) if cls == "b"
    )


# -- the rewrite -------------------------------------------------------------------


class MagicProgram:
    """A magic-sets rewrite of one (predicate, adornment) query class.

    ``program`` is the rewritten, re-stratified :class:`Program`;
    answers to a concrete pattern live in the adorned predicate
    ``answer_pred`` once the program is saturated against the pattern's
    :meth:`seed_for` fact.
    """

    __slots__ = (
        "source",
        "pred",
        "adornment",
        "program",
        "answer_pred",
        "magic_pred",
        "adornments",
        "supplementary",
    )

    def __init__(
        self,
        source: Program,
        pred: str,
        adornment: str,
        program: Program,
        adornments: Set[Tuple[str, str]],
        supplementary: bool = True,
    ):
        self.source = source
        self.pred = pred
        self.adornment = adornment
        self.program = program
        self.answer_pred = adorned_name(pred, adornment)
        self.magic_pred = magic_name(pred, adornment)
        self.adornments = frozenset(adornments)
        self.supplementary = supplementary

    def sup_predicates(self) -> frozenset:
        """The supplementary predicates the rewrite introduced (empty
        for the non-supplementary oracle)."""
        return frozenset(
            rule.head.pred
            for rule in self.program
            if rule.head.pred.startswith("sup@")
        )

    def seed_for(self, pattern: Atom) -> Atom:
        """The ground magic seed fact demanding *pattern*."""
        if pattern.pred != self.pred:
            raise ValueError(
                f"pattern {pattern} does not query {self.pred!r}"
            )
        seed_args = bound_args(pattern, self.adornment)
        seed = Atom(self.magic_pred, seed_args)
        if not seed.is_ground():
            raise ValueError(
                f"pattern {pattern} does not match adornment "
                f"{self.adornment!r}: bound positions must hold constants"
            )
        return seed

    def answer_atom(self, pattern: Atom) -> Atom:
        """The adorned pattern whose matches are the query's answers."""
        return Atom(self.answer_pred, pattern.args)

    def __repr__(self) -> str:
        return (
            f"MagicProgram({self.pred}@{self.adornment}: "
            f"{len(self.program)} rules, {len(self.adornments)} adorned)"
        )


def _sip_order(
    rule: Rule, head_bound: Set[Variable], planner: Optional[Planner]
) -> List[Literal]:
    """The rule body in SIP order: positive literals as the planner
    schedules them given the head bindings, each negative literal at
    the earliest point its variables are ground."""
    positives = [
        (index, literal)
        for index, literal in enumerate(rule.body)
        if literal.positive
    ]
    if planner is not None and len(positives) > 1:
        positives = planner.order(positives, set(head_bound))
    pending = [l for l in rule.body if not l.positive]
    ordered: List[Literal] = []
    covered = set(head_bound)

    def place_ground_negatives() -> None:
        nonlocal pending
        still: List[Literal] = []
        for negative in pending:
            if negative.atom.variables() <= covered:
                ordered.append(negative)
            else:
                still.append(negative)
        pending = still

    place_ground_negatives()
    for _, literal in positives:
        ordered.append(literal)
        covered.update(literal.atom.variables())
        place_ground_negatives()
    if pending:  # pragma: no cover - Rule() enforces range restriction
        raise MagicRewriteError(
            f"negative literal(s) never grounded in {rule}: "
            f"{', '.join(map(str, pending))}"
        )
    return ordered


def magic_rewrite(
    program: Program,
    pattern: Atom,
    planner: Optional[Planner] = None,
    supplementary: bool = True,
) -> MagicProgram:
    """Rewrite *program* for goal-directed evaluation of *pattern*.

    With *supplementary* (the default) each rule's SIP prefix is
    materialized once per split point as a ``sup@…`` predicate shared
    by the magic rule it seeds and the rest of the body; without it the
    rewrite is the classic one — every consumer re-derives its prefix —
    kept as the differential oracle.

    Raises :class:`MagicRewriteError` when the transformation would not
    help (extensional or fully-unbound query) or would be unsound
    (the rewritten program loses stratification).
    """
    if not program.is_idb(pattern.pred):
        raise MagicRewriteError(
            f"query predicate {pattern.pred!r} is extensional; "
            f"there is nothing to rewrite"
        )
    query_adornment = adornment_for(pattern.args, set())
    if "b" not in query_adornment:
        raise MagicRewriteError(
            f"query {pattern} binds no argument; the demand "
            f"transformation would recompute the full extent"
        )
    rules: Dict[Rule, None] = {}
    done: Set[Tuple[str, str]] = set()
    worklist: List[Tuple[str, str, int]] = [
        (pattern.pred, query_adornment, pattern.arity)
    ]
    while worklist:
        pred, adornment, arity = worklist.pop()
        if (pred, adornment) in done:
            continue
        done.add((pred, adornment))
        guard_pred = magic_name(pred, adornment)
        # Copy rule: extensional facts of a mixed EDB/IDB predicate
        # remain part of the adorned extent (inert when the predicate
        # is purely intensional).
        copy_vars = tuple(Variable(f"V{i}@magic") for i in range(arity))
        copy_head = Atom(adorned_name(pred, adornment), copy_vars)
        copy_guard = Atom(guard_pred, bound_args(copy_head, adornment))
        rules.setdefault(
            Rule(copy_head, (Literal(copy_guard), Literal(Atom(pred, copy_vars)))),
        )
        for rule_index, rule in enumerate(program.rules_for(pred)):
            head = rule.head
            head_bound = {
                arg
                for arg, cls in zip(head.args, adornment)
                if cls == "b" and isinstance(arg, Variable)
            }
            guard = Atom(guard_pred, bound_args(head, adornment))
            ordered = _sip_order(rule, head_bound, planner)
            covered = set(head_bound)
            # Deterministic first-bound order of the covered variables —
            # the column order of supplementary heads.
            covered_order: List[Variable] = []
            for arg in guard.args:
                if isinstance(arg, Variable) and arg not in covered_order:
                    covered_order.append(arg)
            # Variables still needed at (and after) each body position:
            # the head's, everything any later literal mentions, and —
            # because negatives before a split are carried to the
            # guarded rule rather than folded into supplementary
            # bodies — every negative literal's, at every position.
            head_vars = set(head.variables())
            negative_vars: Set[Variable] = set()
            for literal in ordered:
                if not literal.positive:
                    negative_vars |= literal.atom.variables()
            needed_after: List[Set[Variable]] = [set()] * len(ordered)
            acc = head_vars | negative_vars
            for position in range(len(ordered) - 1, -1, -1):
                acc = acc | ordered[position].atom.variables()
                needed_after[position] = acc
            # The running prefix: its seed (guard, then the latest
            # supplementary literal) plus the positive adorned literals
            # since the last split; `tail` holds *all* adorned literals
            # since the last split in SIP order, `carried_negatives`
            # the adorned negatives folded past a split (they stay out
            # of supplementary bodies, mirroring the magic prefixes).
            prefix: List[Literal] = [Literal(guard)]
            tail: List[Literal] = []
            carried_negatives: List[Literal] = []
            split_count = 0
            for position, literal in enumerate(ordered):
                atom = literal.atom
                if program.is_idb(atom.pred):
                    sub_adornment = adornment_for(atom.args, covered)
                    worklist.append((atom.pred, sub_adornment, atom.arity))
                    magic_head = Atom(
                        magic_name(atom.pred, sub_adornment),
                        bound_args(atom, sub_adornment),
                    )
                    if supplementary and len(prefix) > 1:
                        # Materialize the prefix once, projected onto
                        # the variables any later consumer (remaining
                        # literals, carried negatives, the head, the
                        # magic rules downstream) still needs.
                        sup_head = Atom(
                            sup_name(pred, adornment, rule_index, split_count),
                            tuple(
                                v
                                for v in covered_order
                                if v in needed_after[position]
                            ),
                        )
                        split_count += 1
                        rules.setdefault(Rule(sup_head, tuple(prefix)))
                        carried_negatives.extend(
                            l for l in tail if not l.positive
                        )
                        prefix = [Literal(sup_head)]
                        tail = []
                    # Demand rule: the subgoal's bound arguments, given
                    # the prefix seed (guard or supplementary) and any
                    # positive literals since. (A recursive subgoal
                    # whose demand is exactly the guard would produce
                    # the tautology m :- m; skip it.)
                    if not (
                        len(prefix) == 1 and magic_head == prefix[0].atom
                    ):
                        rules.setdefault(Rule(magic_head, tuple(prefix)))
                    adorned_literal = Literal(
                        Atom(adorned_name(atom.pred, sub_adornment), atom.args),
                        literal.positive,
                    )
                else:
                    adorned_literal = literal
                tail.append(adorned_literal)
                if literal.positive:
                    # Negative literals are filters: they pass no
                    # bindings sideways, and keeping them out of the
                    # demand prefixes only widens the magic sets
                    # (sound) while avoiding gratuitous negative
                    # dependencies between magic predicates.
                    prefix.append(adorned_literal)
                    for variable in atom.variables():
                        if variable not in covered:
                            covered.add(variable)
                            covered_order.append(variable)
            guarded_head = Atom(adorned_name(pred, adornment), head.args)
            rules.setdefault(
                Rule(
                    guarded_head,
                    tuple([prefix[0]] + tail + carried_negatives),
                )
            )
    try:
        rewritten = Program(rules)
    except StratificationError as error:
        raise MagicStratificationError(
            f"magic rewrite of {pattern.pred}@{query_adornment} is not "
            f"stratified ({error}); demand propagation through negation "
            f"is unsound here — fall back to closure materialization"
        ) from None
    return MagicProgram(
        program, pattern.pred, query_adornment, rewritten, done,
        supplementary,
    )


# -- evaluation --------------------------------------------------------------------


class _DemandView:
    """Read view over the extensional store plus one rewrite's derived
    store; writes go to the derived store. Adorned/magic predicate
    names never collide with extensional ones, so no deduplication is
    needed between the two halves."""

    __slots__ = ("extensional", "derived")

    def __init__(self, extensional, derived: FactStore):
        self.extensional = extensional
        self.derived = derived

    def match(self, pattern: Atom) -> Iterator[Atom]:
        yield from self.derived.match(pattern)
        yield from self.extensional.match(pattern)

    def contains(self, fact: Atom) -> bool:
        return self.derived.contains(fact) or self.extensional.contains(fact)

    def add(self, fact: Atom) -> bool:
        return self.derived.add(fact)

    def bucket(self, pred: str, positions, key):
        """Batched probe over both halves (no dedup needed — adorned
        names never collide with extensional ones)."""
        out = list(self.derived.bucket(pred, positions, key))
        out.extend(self.extensional.bucket(pred, positions, key))
        return out

    def count(self, pred: str) -> int:
        return self.derived.count(pred) + self.extensional.count(pred)

    def estimate(self, pattern: Atom) -> int:
        return self.derived.estimate(pattern) + self.extensional.estimate(
            pattern
        )


class MagicEvaluator:
    """Demand-driven query answering over facts and a program.

    Rewrites are cached per (predicate, adornment); their derived
    stores are shared across queries of the same class, so repeated
    queries with different constants accumulate (sound — every adorned
    fact is a genuine consequence) and re-saturation only pays for the
    newly demanded slice. Patterns whose rewrite declines are recorded
    in :attr:`declined` and answered by the caller's fallback path.
    """

    def __init__(
        self,
        facts,
        program: Program,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        supplementary: Optional[bool] = None,
        *,
        config=None,
    ):
        from repro.config import resolve_config

        config = resolve_config(
            config,
            plan=plan,
            exec_mode=exec_mode,
            supplementary=supplementary,
            warn=False,
        )
        self.config = config
        plan = config.plan
        self.facts = facts
        self.program = program
        self.plan = plan
        self.exec_mode = config.exec_mode
        self.join_algo = config.join_algo
        self.supplementary = config.supplementary
        # SIP chooser: the session's join plan over EDB statistics.
        # An intensional subgoal's extent is unknown at rewrite time —
        # the EDB store would report it as empty (cardinality 0) and
        # the greedy planner would schedule it *first*, yielding freer
        # adornments and wider demand sets. Cost it pessimistically so
        # intensional subgoals are demanded with the most bindings the
        # join graph allows (mirrors QueryEngine.estimate).
        edb_estimate = source_cardinality(facts)

        def estimator(index: int, atom: Atom) -> int:
            if program.is_idb(atom.pred):
                return UNKNOWN_CARDINALITY
            return edb_estimate(index, atom)

        self._sip_planner = make_planner(plan, facts).with_cardinality(
            estimator
        )
        self._rewrites: Dict[Tuple[str, str], MagicProgram] = {}
        self.declined: Dict[Tuple[str, str], str] = {}
        self._stores: Dict[Tuple[str, str], FactStore] = {}
        self._seeded: Set[Atom] = set()
        # Work accounting for the incremental-maintenance guarantee:
        # ``derivations`` counts every fact a semi-naive round produced
        # (before deduplication), so a regression to round-zero
        # re-saturation shows up even when it derives nothing new —
        # net-new fact counts alone cannot catch it. The regression
        # tests pin repeat queries at zero and new seeds at
        # O(new slice).
        self.derivations = 0
        self.saturation_passes = 0

    # -- rewrite cache -----------------------------------------------------------

    def rewrite_for(self, pattern: Atom) -> Optional[MagicProgram]:
        """The cached rewrite answering *pattern*, or ``None`` when the
        transformation declines (the reason lands in :attr:`declined`
        and is warned once)."""
        key = (pattern.pred, adornment_for(pattern.args, set()))
        if key in self.declined:
            return None
        rewrite = self._rewrites.get(key)
        trace = current_trace()
        if rewrite is None:
            try:
                if trace is None:
                    rewrite = magic_rewrite(
                        self.program, pattern, self._sip_planner,
                        self.supplementary,
                    )
                else:
                    with trace.phase("rewrite"):
                        rewrite = magic_rewrite(
                            self.program, pattern, self._sip_planner,
                            self.supplementary,
                        )
            except MagicRewriteError as error:
                self.declined[key] = str(error)
                _DECLINED.inc()
                if isinstance(error, MagicStratificationError):
                    warnings.warn(
                        str(error), MagicFallbackWarning, stacklevel=3
                    )
                return None
            self._rewrites[key] = rewrite
            _REWRITES.inc()
        if trace is not None:
            trace.record_rewrite(
                pattern.pred,
                key[1],
                tuple(sorted(rewrite.sup_predicates())),
                len(rewrite.program),
            )
        return rewrite

    def supports(self, pattern: Atom) -> bool:
        """Whether *pattern* can be answered demand-driven."""
        return self.rewrite_for(pattern) is not None

    # -- query answering ---------------------------------------------------------

    def answers(self, pattern: Atom) -> Iterator[Substitution]:
        """Answer substitutions for *pattern*, deriving only demanded
        tuples. Callers must have checked :meth:`supports`."""
        rewrite = self.rewrite_for(pattern)
        if rewrite is None:
            raise MagicRewriteError(
                self.declined[(pattern.pred, adornment_for(pattern.args, set()))]
            )
        store = self._saturate(rewrite, pattern)
        for fact in store.match(rewrite.answer_atom(pattern)):
            # Answers carry the adorned predicate name; bindings come
            # from the argument vector, which the rewrite preserves.
            binding = match(pattern, Atom(pattern.pred, fact.args))
            if binding is not None:
                yield binding

    def holds(self, atom: Atom) -> bool:
        """Demand-driven truth of a ground atom."""
        return any(True for _ in self.answers(atom))

    def _saturate(self, rewrite: MagicProgram, pattern: Atom) -> FactStore:
        key = (rewrite.pred, rewrite.adornment)
        store = self._stores.get(key)
        if store is None:
            store = self._stores[key] = FactStore()
        seed = rewrite.seed_for(pattern)
        if seed in self._seeded:
            return store
        self._seeded.add(seed)
        _SEEDS.inc()
        if not store.add(seed):
            # The tuple was already demanded as a sub-demand of an
            # earlier query of this class; its slice is saturated.
            return store
        self._propagate(rewrite, store, [seed])
        return store

    def _propagate(
        self, rewrite: MagicProgram, store: FactStore, new_facts: List[Atom]
    ) -> None:
        """Delta-driven saturation from the newly added facts.

        Every rewritten rule carries a magic guard in its body, so all
        derivations descend from seeds: semi-naive propagation of just
        the new facts is complete — no round-zero full join — both on
        first saturation and when a later seed extends an already
        saturated store (re-saturation pays only for the newly
        demanded slice). Strata run lowest-first, so negative adorned
        subgoals are settled before any rule tests them."""
        view = _DemandView(self.facts, store)
        planner = make_planner(self.plan, view)
        self.saturation_passes += 1
        _SATURATION_PASSES.inc()
        trace = current_trace()
        if trace is None:
            self._run_rounds(rewrite, view, planner, new_facts, None)
        else:
            with trace.phase("saturate"):
                self._run_rounds(rewrite, view, planner, new_facts, trace)

    def _run_rounds(
        self, rewrite: MagicProgram, view, planner, new_facts, trace
    ) -> None:
        from repro.datalog.bottomup import _derive_round

        # All facts added during this pass; each stratum's delta starts
        # from the full list because its rules were last saturated
        # before the pass began.
        fresh: List[Atom] = list(new_facts)
        for _, rules in rewrite.program.rules_by_stratum():
            delta = FactStore(fresh)
            while len(delta):
                derived = _derive_round(
                    view, rules, set(delta.predicates()), delta, planner,
                    self.exec_mode, self.join_algo,
                )
                self.derivations += len(derived)
                _DERIVATIONS.inc(len(derived))
                delta = FactStore()
                for fact in derived:
                    if view.add(fact):
                        delta.add(fact)
                        fresh.append(fact)
                if trace is not None:
                    trace.record_round(len(delta))

    # -- instrumentation ---------------------------------------------------------

    def derived_fact_count(self) -> int:
        """Total facts materialized across all demand stores (magic
        seeds, magic tuples and adorned answers alike) — the benchmark
        counterpart of a full model's derived-fact count."""
        return sum(len(store) for store in self._stores.values())

    def stats(self) -> Dict[str, int]:
        """This evaluator's work accounting under the registry's
        ``layer.metric`` names (see :mod:`repro.obs.metrics`) — the
        per-instance view of the process-wide ``magic.*`` series."""
        return {
            "magic.supplementary": int(self.supplementary),
            "magic.rewrites": len(self._rewrites),
            "magic.declined": len(self.declined),
            "magic.seeds": len(self._seeded),
            "magic.derived_facts": self.derived_fact_count(),
            "magic.derivations": self.derivations,
            "magic.saturation_passes": self.saturation_passes,
        }

"""Shared body-join machinery for rule evaluation.

Both evaluators (bottom-up semi-naive and top-down tabled) reduce rule
application to the same operation: enumerate the substitutions that make
a conjunction of literals true against some fact source. Positive
literals are solved left to right, propagating bindings; each negative
literal is tested by closed-world lookup as soon as its variables are
fully bound (range restriction guarantees this happens before the end).
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, Tuple

from repro.logic.formulas import Atom, Literal
from repro.logic.substitution import Substitution

# A matcher receives (literal index, instantiated pattern) and yields the
# substitutions for the pattern's remaining variables.
Matcher = Callable[[int, Atom], Iterator[Substitution]]
# A holds-test receives a ground atom and decides its truth.
HoldsTest = Callable[[Atom], bool]


def join_literals(
    literals: Sequence[Literal],
    binding: Substitution,
    matcher: Matcher,
    holds: HoldsTest,
) -> Iterator[Substitution]:
    """Enumerate bindings extending *binding* that satisfy *literals*.

    ``matcher(i, pattern)`` supplies candidate substitutions for the
    positive literal at position ``i``; ``holds`` decides ground negative
    subgoals (closed world: the literal succeeds when the atom does
    *not* hold).
    """
    positives: List[Tuple[int, Literal]] = []
    negatives: List[Literal] = []
    for index, literal in enumerate(literals):
        if literal.positive:
            positives.append((index, literal))
        else:
            negatives.append(literal)

    def descend(
        pos_index: int, current: Substitution, pending: List[Literal]
    ) -> Iterator[Substitution]:
        remaining: List[Literal] = []
        for negative in pending:
            atom = negative.atom.substitute(current)
            if atom.is_ground():
                if holds(atom):
                    return  # closed-world failure of the negative literal
            else:
                remaining.append(negative)
        if pos_index == len(positives):
            if remaining:
                unbound = ", ".join(str(n) for n in remaining)
                raise ValueError(
                    f"negative literal(s) not ground at end of join: "
                    f"{unbound} — rule is not range-restricted"
                )
            yield current
            return
        index, literal = positives[pos_index]
        pattern = literal.atom.substitute(current)
        for extension in matcher(index, pattern):
            yield from descend(
                pos_index + 1, current.compose(extension), remaining
            )

    yield from descend(0, binding, negatives)

"""Shared body-join machinery for rule evaluation.

Every evaluator (bottom-up, top-down tabled, maintenance, delta)
reduces rule application to the same operation: enumerate the
substitutions that make a conjunction of literals true against some
fact source. Positive literals are solved one at a time, propagating
bindings; each negative literal is tested by closed-world lookup as
soon as its variables are fully bound (range restriction guarantees
this happens before the end).

The *order* in which positive literals are solved is delegated to a
:class:`repro.datalog.planner.Planner` when one is supplied; without
one they are solved left to right in source order (the seed
behaviour). Either way the answer set is identical — conjunction is
commutative — only the cost differs.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.planner import Planner
from repro.logic.formulas import Atom, Literal
from repro.logic.substitution import Substitution

# A matcher receives (literal index, instantiated pattern) and yields the
# substitutions for the pattern's remaining variables.
Matcher = Callable[[int, Atom], Iterator[Substitution]]
# A holds-test receives a ground atom and decides its truth.
HoldsTest = Callable[[Atom], bool]


def join_literals(
    literals: Sequence[Literal],
    binding: Substitution,
    matcher: Matcher,
    holds: HoldsTest,
    planner: Optional[Planner] = None,
) -> Iterator[Substitution]:
    """Enumerate bindings extending *binding* that satisfy *literals*.

    ``matcher(i, pattern)`` supplies candidate substitutions for the
    positive literal at position ``i`` — ``i`` is always the literal's
    position in *literals*, independent of the order *planner* chooses;
    ``holds`` decides ground negative subgoals (closed world: the
    literal succeeds when the atom does *not* hold).
    """
    positives: List[Tuple[int, Literal]] = []
    negatives: List[Literal] = []
    for index, literal in enumerate(literals):
        if literal.positive:
            positives.append((index, literal))
        else:
            negatives.append(literal)
    if planner is not None and len(positives) > 1:
        if binding:
            # Apply the initial binding before planning: variables it
            # grounds become constants, visible to the index-aware
            # cardinality estimate. (Harmless for evaluation — descend
            # re-applies `current`, which subsumes `binding`.)
            positives = [
                (index, literal.substitute(binding))
                for index, literal in positives
            ]
        positives = planner.order(positives, set(binding.domain()))

    def descend(
        pos_index: int, current: Substitution, pending: List[Literal]
    ) -> Iterator[Substitution]:
        remaining: List[Literal] = []
        for negative in pending:
            atom = negative.atom.substitute(current)
            if atom.is_ground():
                if holds(atom):
                    return  # closed-world failure of the negative literal
            else:
                remaining.append(negative)
        if pos_index == len(positives):
            if remaining:
                unbound = ", ".join(str(n) for n in remaining)
                raise ValueError(
                    f"negative literal(s) not ground at end of join: "
                    f"{unbound} — rule is not range-restricted"
                )
            yield current
            return
        index, literal = positives[pos_index]
        pattern = literal.atom.substitute(current)
        for extension in matcher(index, pattern):
            yield from descend(
                pos_index + 1, current.compose(extension), remaining
            )

    yield from descend(0, binding, negatives)

"""Shared body-join machinery for rule evaluation.

Every evaluator (bottom-up, top-down tabled, maintenance, delta)
reduces rule application to the same operation: enumerate the
substitutions that make a conjunction of literals true against some
fact source. Two execution models implement it:

``tuple`` (:func:`join_literals`, the seed behaviour and the oracle)
    Positive literals are solved one binding at a time, propagating
    substitutions; each negative literal is tested by closed-world
    lookup as soon as its variables are fully bound (range restriction
    guarantees this happens before the end).

``batch`` (:func:`join_literals_batch`, the default)
    Set-at-a-time evaluation: a *relation of bindings* — plain value
    tuples over the join variables, no per-tuple
    :class:`Substitution` — flows through the body one literal at a
    time. Each positive literal is a hash join: bindings sharing the
    same key values probe the fact source once (memoized per key, and
    served by the stores' composite group indexes where available);
    negative literals are batched anti-joins with per-key memoization
    of the closed-world test. The relation is carried in chunks, so
    consumers that stop after the first answer (witness search,
    existence tests) never pay for the full join — the generator seam
    is preserved end to end.

Both paths produce the same answer multiset (a property the
differential harness pins); only enumeration order and cost differ. The module
default :data:`DEFAULT_EXEC` is ``"batch"`` and can be flipped process-
wide with the ``REPRO_EXEC`` environment variable — the oracle leg of
the CI matrix runs the whole suite under ``REPRO_EXEC=tuple``.

The *order* in which positive literals are solved is delegated to a
:class:`repro.datalog.planner.Planner` when one is supplied; without
one they are solved left to right in source order (the seed
behaviour). Either way the answer set is identical — conjunction is
commutative — only the cost differs.
"""

from __future__ import annotations

import os
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.datalog import wcoj
from repro.datalog.columnar import ColumnarRelation
from repro.datalog.planner import Planner
from repro.logic.formulas import Atom, Literal
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.obs.metrics import default_registry
from repro.obs.trace import current_trace

# A matcher receives (literal index, instantiated pattern) and yields the
# substitutions for the pattern's remaining variables.
Matcher = Callable[[int, Atom], Iterator[Substitution]]
# A holds-test receives a ground atom and decides its truth.
HoldsTest = Callable[[Atom], bool]
# A batch probe receives (literal index, instantiated pattern) and
# returns one value row per matching fact: the values of the pattern's
# distinct variables in first-occurrence order.
BatchProbe = Callable[[int, Atom], Iterable[Tuple[Constant, ...]]]

#: The execution models the join kernel implements.
EXEC_MODES = ("batch", "tuple")


def validate_exec(exec_mode: str) -> str:
    """Fail fast on an unknown execution mode, listing the accepted
    values — mirrors :func:`repro.datalog.planner.validate_plan`."""
    if exec_mode not in EXEC_MODES:
        raise ValueError(
            f"unknown exec mode {exec_mode!r}; pick one of {EXEC_MODES}"
        )
    return exec_mode


#: Process-wide default execution model; ``REPRO_EXEC`` overrides it so
#: the test matrix can pin the tuple oracle without touching call sites.
DEFAULT_EXEC = validate_exec(os.environ.get("REPRO_EXEC", "batch"))

#: The join algorithms the batch kernel dispatches between. ``hash``
#: is the pairwise set-at-a-time pipeline; ``wcoj`` attempts the
#: worst-case-optimal leapfrog triejoin (:mod:`repro.datalog.wcoj`) on
#: every eligible body and counts a fallback otherwise; ``auto`` (the
#: default) routes only *cyclic* eligible bodies to the leapfrog —
#: alpha-acyclic bodies have a join tree the hash pipeline already
#: evaluates near-optimally, so choosing hash there is a plan, not a
#: fallback.
JOIN_ALGOS = ("auto", "wcoj", "hash")


def validate_join_algo(join_algo: str) -> str:
    """Fail fast on an unknown join algorithm, listing the accepted
    values — mirrors :func:`validate_exec`."""
    if join_algo not in JOIN_ALGOS:
        raise ValueError(
            f"unknown join algo {join_algo!r}; pick one of {JOIN_ALGOS}"
        )
    return join_algo


#: Process-wide default join algorithm; ``REPRO_JOIN`` overrides it so
#: the CI matrix can run the whole suite over the leapfrog path.
DEFAULT_JOIN = validate_join_algo(os.environ.get("REPRO_JOIN", "auto"))


#: The kernel's registry instrument — the canonical home of the old
#: ``JOIN_COUNTERS.tuple_fallbacks`` count. A thread-safe
#: :class:`repro.obs.metrics.Counter`: the service layer commits from
#: multiple threads, and the old bare ``+=`` lost increments there.
_TUPLE_FALLBACKS = default_registry().counter("join.tuple_fallbacks")

#: Leapfrog dispatch accounting: bodies the worst-case-optimal path
#: ran (``join.wcoj_joins``) and bodies that asked for it
#: (``join_algo="wcoj"``) but had to fall back to the hash pipeline
#: (``join.wcoj_fallbacks``) — negatives, too few relations, no
#: shared variables, duplicated seed rows. ``auto`` choosing hash for
#: an acyclic body counts as neither: that is the planner planning.
_WCOJ_JOINS = default_registry().counter("join.wcoj_joins")
_WCOJ_FALLBACKS = default_registry().counter("join.wcoj_fallbacks")


class JoinCounters:
    """Deprecation shim: the kernel's work counters now live in the
    default :class:`repro.obs.metrics.MetricsRegistry` under
    ``join.*`` names.

    ``tuple_fallbacks`` counts :func:`join_body` calls that asked for
    the batch model but fell back to the tuple oracle because the
    initial binding mapped variables to non-constants — the relational
    representation carries value rows only. The counter exists so the
    regression tests can pin "no fallback" on code paths that are
    supposed to stay relational (e.g. tabled evaluation after its
    standardize-apart pass). Reads and :meth:`reset` delegate to the
    registry's ``join.tuple_fallbacks`` counter."""

    __slots__ = ()

    @property
    def tuple_fallbacks(self) -> int:
        return _TUPLE_FALLBACKS.value

    @tuple_fallbacks.setter
    def tuple_fallbacks(self, value: int) -> None:
        _TUPLE_FALLBACKS.set(value)

    def reset(self) -> None:
        _TUPLE_FALLBACKS.set(0)


#: The kernel's shared counter instance (reset freely in tests).
#: Deprecated alias — new code reads
#: ``default_registry().snapshot()["join.tuple_fallbacks"]``.
JOIN_COUNTERS = JoinCounters()

#: How many binding rows flow through the batch pipeline at once. Small
#: enough that first-answer consumers stay cheap, large enough that the
#: per-chunk Python overhead is amortized.
BATCH_CHUNK = 256


def join_literals(
    literals: Sequence[Literal],
    binding: Substitution,
    matcher: Matcher,
    holds: HoldsTest,
    planner: Optional[Planner] = None,
) -> Iterator[Substitution]:
    """Enumerate bindings extending *binding* that satisfy *literals*.

    ``matcher(i, pattern)`` supplies candidate substitutions for the
    positive literal at position ``i`` — ``i`` is always the literal's
    position in *literals*, independent of the order *planner* chooses;
    ``holds`` decides ground negative subgoals (closed world: the
    literal succeeds when the atom does *not* hold).
    """
    positives: List[Tuple[int, Literal]] = []
    negatives: List[Literal] = []
    for index, literal in enumerate(literals):
        if literal.positive:
            positives.append((index, literal))
        else:
            negatives.append(literal)
    if planner is not None and len(positives) > 1:
        if binding:
            # Apply the initial binding before planning: variables it
            # grounds become constants, visible to the index-aware
            # cardinality estimate. (Harmless for evaluation — descend
            # re-applies `current`, which subsumes `binding`.)
            positives = [
                (index, literal.substitute(binding))
                for index, literal in positives
            ]
        positives = planner.order(positives, set(binding.domain()))

    def descend(
        pos_index: int, current: Substitution, pending: List[Literal]
    ) -> Iterator[Substitution]:
        remaining: List[Literal] = []
        for negative in pending:
            atom = negative.atom.substitute(current)
            if atom.is_ground():
                if holds(atom):
                    return  # closed-world failure of the negative literal
            else:
                remaining.append(negative)
        if pos_index == len(positives):
            if remaining:
                unbound = ", ".join(str(n) for n in remaining)
                raise ValueError(
                    f"negative literal(s) not ground at end of join: "
                    f"{unbound} — rule is not range-restricted"
                )
            yield current
            return
        index, literal = positives[pos_index]
        pattern = literal.atom.substitute(current)
        for extension in matcher(index, pattern):
            yield from descend(
                pos_index + 1, current.compose(extension), remaining
            )

    trace = current_trace()
    if trace is None:
        yield from descend(0, binding, negatives)
        return
    join_stats = trace.join
    join_stats["joins"] += 1
    for answer in descend(0, binding, negatives):
        join_stats["rows_out"] += 1
        yield answer


# -- batch (set-at-a-time) path ------------------------------------------------------


def pattern_variables(atom: Atom) -> Tuple[Variable, ...]:
    """The atom's distinct variables in first-occurrence order — the
    column order of the rows a :data:`BatchProbe` returns for it."""
    seen: List[Variable] = []
    for arg in atom.args:
        if isinstance(arg, Variable) and arg not in seen:
            seen.append(arg)
    return tuple(seen)


def rows_from_source(source, pattern: Atom) -> List[Tuple[Constant, ...]]:
    """Value rows for *pattern* against a fact source: one tuple of the
    pattern's distinct-variable values per matching fact.

    Uses the source's composite hash index (``bucket``) when it has one
    — a single dictionary probe, no per-fact unification — and falls
    back to ``match`` otherwise."""
    key_positions: List[int] = []
    key: List[Constant] = []
    out_positions: List[int] = []
    checks: List[Tuple[int, int]] = []
    first: dict = {}
    for position, arg in enumerate(pattern.args):
        if isinstance(arg, Variable):
            if arg in first:
                checks.append((position, first[arg]))
            else:
                first[arg] = position
                out_positions.append(position)
        else:
            key_positions.append(position)
            key.append(arg)
    bucket = getattr(source, "bucket", None)
    if bucket is None:
        return [
            tuple(fact.args[p] for p in out_positions)
            for fact in source.match(pattern)
        ]
    facts = bucket(pattern.pred, tuple(key_positions), tuple(key))
    # The group index filters on the key positions only; a predicate
    # holding mixed-arity facts can still surface wider facts here, so
    # the pattern's arity is enforced fact by fact (the tuple path gets
    # this from match()).
    arity = len(pattern.args)
    if not checks:
        return [
            tuple(fact.args[p] for p in out_positions)
            for fact in facts
            if len(fact.args) == arity
        ]
    rows: List[Tuple[Constant, ...]] = []
    for fact in facts:
        args = fact.args
        if len(args) == arity and all(
            args[p] == args[q] for p, q in checks
        ):
            rows.append(tuple(args[p] for p in out_positions))
    return rows


def rows_from_substitutions(
    pattern: Atom, substitutions: Iterable[Substitution]
) -> List[Tuple[Constant, ...]]:
    """Convert answer substitutions for *pattern* into batch rows —
    the row layout contract (distinct variables, first-occurrence
    order) defined once for every substitution-shaped source."""
    variables = pattern_variables(pattern)
    return [
        tuple(subst.apply_term(v) for v in variables)
        for subst in substitutions
    ]


def probe_from_source(source) -> BatchProbe:
    """A :data:`BatchProbe` over a single fact source."""
    return lambda index, pattern: rows_from_source(source, pattern)


def probe_from_matcher(matcher: Matcher) -> BatchProbe:
    """Adapt a tuple-path matcher into a :data:`BatchProbe`.

    The batch kernel still wins through per-key probe memoization and
    tuple-typed intermediates; only the per-probe enumeration stays on
    the matcher's generic path."""

    def probe(index: int, pattern: Atom) -> List[Tuple[Constant, ...]]:
        return rows_from_substitutions(pattern, matcher(index, pattern))

    return probe


class _Level:
    """Per-literal layout of one batch join: which schema columns form
    the hash key, which negatives become testable on entry, and how the
    output schema extends."""

    __slots__ = (
        "index",
        "atom",
        "bound",
        "entry_negatives",
        "new_variables",
    )

    def __init__(self, index, atom, bound, entry_negatives, new_variables):
        self.index = index
        self.atom = atom
        # (variable, schema column, argument positions) per distinct
        # bound variable of the atom.
        self.bound = bound
        self.entry_negatives = entry_negatives
        self.new_variables = new_variables


def _row_instantiator(atom: Atom, column_of: dict):
    """A row → ground atom instantiator for *atom*: each argument is
    either a schema column index or a constant from the atom itself.
    Every variable of *atom* must be a *column_of* key."""
    layout = tuple(
        (column_of[arg], None) if isinstance(arg, Variable) else (None, arg)
        for arg in atom.args
    )
    pred = atom.pred

    def build(row) -> Atom:
        return Atom(
            pred,
            tuple(
                row[column] if column is not None else constant
                for column, constant in layout
            ),
        )

    return build


class _NegativeTest:
    """A negative literal plus the row layout grounding its atom."""

    __slots__ = ("columns", "ground")

    def __init__(self, atom: Atom, column_of: dict):
        # Distinct schema columns — the memo key of the anti-join.
        self.columns = tuple(
            column_of[v] for v in pattern_variables(atom)
        )
        self.ground = _row_instantiator(atom, column_of)


def atom_builder(atom: Atom, schema: Sequence[Variable]):
    """A row → ground atom instantiator for *atom* over *schema* —
    how batch consumers (semi-naive derivation) build rule heads
    without per-row substitutions. Every variable of *atom* must be a
    schema column (range restriction guarantees it for rule heads)."""
    return _row_instantiator(
        atom, {variable: i for i, variable in enumerate(schema)}
    )


def _wcoj_decision(algo, positives, negatives, seed_schema):
    """Whether this body may run the leapfrog triejoin, and why not
    when it may not. *seed_schema* is the initial relation's schema
    (it counts as one more relation) or ``None``."""
    if negatives:
        return False, "negative literals"
    relation_count = len(positives) + (1 if seed_schema is not None else 0)
    if relation_count < 3:
        return False, "fewer than 3 relations"
    varsets = [pattern_variables(literal.atom) for _, literal in positives]
    if seed_schema is not None:
        varsets.append(seed_schema)
    counts: dict = {}
    for varset in varsets:
        for variable in varset:
            counts[variable] = counts.get(variable, 0) + 1
    if not counts or max(counts.values()) < 2:
        return False, "no shared variables"
    if algo == "auto" and wcoj.is_acyclic(varsets):
        return False, "acyclic body"
    return True, "eligible"


def _wcoj_dispatch(
    algo,
    positives,
    negatives,
    seed_schema,
    seed_columnar,
    seed_rows,
    binding,
    binding_schema,
    probe,
    chunk_size,
    trace,
):
    """Decide the leapfrog attempt for one body: returns the chunk
    generator when the worst-case-optimal path runs, ``None`` when the
    hash pipeline should. Counts ``join.wcoj_joins`` /
    ``join.wcoj_fallbacks`` and records the eligibility decision in
    the active :class:`~repro.obs.trace.QueryTrace`."""
    eligible, reason = _wcoj_decision(algo, positives, negatives, seed_schema)
    if eligible and seed_schema is not None:
        if seed_columnar is None:
            seed_columnar = ColumnarRelation.from_rows(
                seed_schema, list(seed_rows)
            )
        if seed_columnar.distinct() is not seed_columnar:
            # The leapfrog runs set semantics; a duplicated seed row
            # would drop output multiplicity the hash path preserves.
            eligible, reason = False, "duplicate seed rows"
    goal = " ∧ ".join(str(literal.atom) for _, literal in positives)
    relation_count = len(positives) + (1 if seed_schema is not None else 0)
    if not eligible:
        # `auto` picking hash is a plan; only an explicit `wcoj` ask
        # that cannot be honored is a fallback. Near misses (`auto` on
        # an acyclic candidate) still reach the trace so EXPLAIN shows
        # why the leapfrog did not run.
        if algo == "wcoj":
            _WCOJ_FALLBACKS.inc()
            if trace is not None:
                trace.join["wcoj_fallbacks"] += 1
        if trace is not None and (
            algo == "wcoj" or reason == "acyclic body"
        ):
            trace.record_wcoj(goal, algo, relation_count, False, reason)
        return None
    _WCOJ_JOINS.inc()
    if trace is not None:
        trace.join["wcoj_joins"] += 1
        trace.record_wcoj(goal, algo, relation_count, True, reason)
    return _wcoj_rows(
        positives,
        seed_columnar,
        binding,
        binding_schema,
        probe,
        chunk_size,
        trace.join if trace is not None else None,
    )


def _wcoj_rows(
    positives,
    seed_columnar,
    binding,
    binding_schema,
    probe,
    chunk_size,
    join_stats,
):
    """Run the leapfrog triejoin and re-chunk its lazily enumerated
    assignments into the ``(schema, rows)`` contract. One probe per
    literal materializes its full relation (the trie needs sorted
    random access); the enumeration itself stays lazy, so the
    first-chunk short-circuit contract holds here too."""
    relations = []
    if seed_columnar is not None:
        relations.append(seed_columnar)
    for index, literal in positives:
        rows = list(probe(index, literal.atom))
        if join_stats is not None:
            join_stats["probes"] += 1
        relations.append(
            ColumnarRelation.from_rows(
                pattern_variables(literal.atom), rows
            )
        )
    order = wcoj.variable_order([rel.schema for rel in relations])
    out_schema = tuple(binding_schema) + order
    prefix = tuple(binding[variable] for variable in binding_schema)
    chunk: List[tuple] = []
    for row in wcoj.leapfrog_rows(order, relations):
        chunk.append(prefix + row)
        if len(chunk) >= chunk_size:
            if join_stats is not None:
                join_stats["chunks"] += 1
                join_stats["rows_out"] += len(chunk)
            yield (out_schema, chunk)
            chunk = []
    if chunk:
        if join_stats is not None:
            join_stats["chunks"] += 1
            join_stats["rows_out"] += len(chunk)
        yield (out_schema, chunk)


def join_literals_rows(
    literals: Sequence[Literal],
    binding: Substitution,
    probe: BatchProbe,
    holds: HoldsTest,
    planner: Optional[Planner] = None,
    chunk_size: int = BATCH_CHUNK,
    initial: Union[
        ColumnarRelation,
        Tuple[Sequence[Variable], Sequence[tuple]],
        None,
    ] = None,
    join_algo: Optional[str] = None,
) -> Iterator[Tuple[Tuple[Variable, ...], List[tuple]]]:
    """The relational core of the batch path: yields ``(schema, rows)``
    chunks, where *schema* names the row columns (fixed for the whole
    join) and *rows* holds up to *chunk_size* value tuples satisfying
    the body. Chunks surface as soon as they fill, so single-witness
    consumers stop after the first one.

    *join_algo* selects between the pairwise hash pipeline and the
    worst-case-optimal leapfrog triejoin (see :data:`JOIN_ALGOS`);
    eligible bodies — all-positive, at least three relations counting
    the *initial* seed, at least one shared variable (plus cyclicity
    under ``auto``) — run :mod:`repro.datalog.wcoj`, everything else
    the hash pipeline. Both produce the same chunk contract and the
    same answer multiset; only enumeration order and cost differ.

    *binding* must map variables to constants — :func:`join_body` falls
    back to the tuple path when it does not (tabled evaluation used to
    hit this with head unifiers before its standardize-apart pass).

    *initial*, when given, is a named ``(schema, rows)`` relation the
    pipeline starts from instead of the unit binding row — the seam
    semi-naive evaluation uses to flow a delta relation (a
    supplementary predicate's rows, or any derived predicate's new
    facts) straight into its consumer joins without re-probing it.
    Its schema must list distinct variables, its rows constant tuples;
    *binding* must be empty when *initial* is supplied.
    """
    positives: List[Tuple[int, Literal]] = []
    negatives: List[Literal] = []
    for index, literal in enumerate(literals):
        if literal.positive:
            positives.append((index, literal))
        else:
            negatives.append(literal)
    algo = (
        DEFAULT_JOIN if join_algo is None else validate_join_algo(join_algo)
    )
    seed_columnar: Optional[ColumnarRelation] = None
    if initial is not None:
        if binding:
            raise ValueError(
                "join_literals_rows: initial relation and non-empty "
                "binding are mutually exclusive"
            )
        if isinstance(initial, ColumnarRelation):
            seed_columnar = initial
            schema = list(initial.schema)
            seed_rows: Optional[Sequence[tuple]] = list(initial.rows())
        else:
            schema = list(initial[0])
            seed_rows = initial[1]
        bound_vars = set(schema)
    else:
        schema = sorted(binding.domain(), key=lambda v: v.name)
        seed_rows = None
        bound_vars = set(binding.domain())
        if binding:
            positives = [
                (index, literal.substitute(binding))
                for index, literal in positives
            ]
            negatives = [
                literal.substitute(binding) for literal in negatives
            ]
    if planner is not None and len(positives) > 1:
        positives = planner.order(positives, bound_vars)

    trace = current_trace()
    join_stats = trace.join if trace is not None else None
    if join_stats is not None:
        join_stats["joins"] += 1

    if algo != "hash":
        runner = _wcoj_dispatch(
            algo,
            positives,
            negatives,
            tuple(schema) if initial is not None else None,
            seed_columnar,
            seed_rows,
            binding,
            () if initial is not None else tuple(schema),
            probe,
            chunk_size,
            trace,
        )
        if runner is not None:
            yield from runner
            return

    column_of = {variable: i for i, variable in enumerate(schema)}
    initial_row = (
        tuple(binding[variable] for variable in schema)
        if seed_rows is None
        else None
    )

    def negative_tests(pending: List[Literal]) -> List[_NegativeTest]:
        """Consume from *pending* the negatives ground under the current
        schema, mirroring the tuple path's earliest-point placement."""
        testable: List[_NegativeTest] = []
        remaining: List[Literal] = []
        for literal in pending:
            if all(
                v in column_of for v in pattern_variables(literal.atom)
            ):
                testable.append(_NegativeTest(literal.atom, column_of))
            else:
                remaining.append(literal)
        pending[:] = remaining
        return testable

    pending = list(negatives)
    levels: List[_Level] = []
    for index, literal in positives:
        entry = negative_tests(pending)
        atom = literal.atom
        bound: List[Tuple[Variable, int, Tuple[int, ...]]] = []
        new_variables: List[Variable] = []
        for variable in pattern_variables(atom):
            if variable in column_of:
                positions = tuple(
                    p for p, a in enumerate(atom.args) if a == variable
                )
                bound.append((variable, column_of[variable], positions))
            else:
                new_variables.append(variable)
        levels.append(_Level(index, atom, tuple(bound), entry, new_variables))
        for variable in new_variables:
            column_of[variable] = len(schema)
            schema.append(variable)
    final_negatives = negative_tests(pending)
    # `pending` now holds negatives no positive literal ever grounds;
    # raising is deferred until a row actually reaches the end, exactly
    # like the tuple path.
    final_schema = tuple(schema)

    neg_cache: dict = {}

    def passes(tests: List[_NegativeTest], row) -> bool:
        for test in tests:
            key = (id(test), tuple(row[c] for c in test.columns))
            value = neg_cache.get(key)
            if value is None:
                value = neg_cache[key] = holds(test.ground(row))
            if value:
                return False  # closed-world failure of the negative
        return True

    probe_caches: List[dict] = [{} for _ in levels]

    def process(level_index: int, rows: List[tuple]):
        if level_index == len(levels):
            survivors = (
                [row for row in rows if passes(final_negatives, row)]
                if final_negatives
                else rows
            )
            if survivors and pending:
                unbound = ", ".join(str(n) for n in pending)
                raise ValueError(
                    f"negative literal(s) not ground at end of join: "
                    f"{unbound} — rule is not range-restricted"
                )
            if survivors:
                if join_stats is not None:
                    join_stats["chunks"] += 1
                    join_stats["rows_out"] += len(survivors)
                yield (final_schema, survivors)
            return
        level = levels[level_index]
        cache = probe_caches[level_index]
        entry_negatives = level.entry_negatives
        bound = level.bound
        args_template = list(level.atom.args)
        out: List[tuple] = []
        for row in rows:
            if entry_negatives and not passes(entry_negatives, row):
                continue
            key = tuple(row[column] for _, column, _ in bound)
            extensions = cache.get(key)
            if extensions is None:
                for value, (_, _, positions) in zip(key, bound):
                    for position in positions:
                        args_template[position] = value
                pattern = Atom(level.atom.pred, tuple(args_template))
                extensions = cache[key] = list(probe(level.index, pattern))
                if join_stats is not None:
                    join_stats["probes"] += 1
            for extension in extensions:
                out.append(row + extension)
                if len(out) >= chunk_size:
                    yield from process(level_index + 1, out)
                    out = []
        if out:
            yield from process(level_index + 1, out)

    if seed_rows is None:
        yield from process(0, [initial_row])
    else:
        # The initial relation enters pre-chunked so the short-circuit
        # contract holds for relation-seeded joins too.
        for start in range(0, len(seed_rows), chunk_size):
            yield from process(0, list(seed_rows[start:start + chunk_size]))


def join_literals_batch(
    literals: Sequence[Literal],
    binding: Substitution,
    probe: BatchProbe,
    holds: HoldsTest,
    planner: Optional[Planner] = None,
    chunk_size: int = BATCH_CHUNK,
    join_algo: Optional[str] = None,
) -> Iterator[Substitution]:
    """Set-at-a-time counterpart of :func:`join_literals`: the
    substitution seam over :func:`join_literals_rows`. Semantically
    identical to the tuple path (same answer multiset, same
    range-restriction error)."""
    for schema, rows in join_literals_rows(
        literals, binding, probe, holds, planner, chunk_size,
        join_algo=join_algo,
    ):
        for row in rows:
            yield Substitution.trusted(dict(zip(schema, row)))


def join_body(
    literals: Sequence[Literal],
    binding: Substitution,
    matcher: Matcher,
    holds: HoldsTest,
    planner: Optional[Planner] = None,
    exec_mode: Optional[str] = None,
    probe: Optional[BatchProbe] = None,
    join_algo: Optional[str] = None,
) -> Iterator[Substitution]:
    """Solve a rule body under the selected execution model.

    ``"batch"`` runs :func:`join_literals_batch` over *probe* (derived
    from *matcher* when the caller has no batched access path);
    ``"tuple"`` — or a *binding* that maps variables to non-constants —
    runs the :func:`join_literals` oracle. *join_algo* picks the batch
    path's join algorithm (:data:`JOIN_ALGOS`); the tuple oracle
    ignores it. An unknown *exec_mode* or *join_algo* fails here, at
    the seam, with a one-line error naming the choices — never by
    silently running the wrong path.
    """
    exec_mode = (
        DEFAULT_EXEC if exec_mode is None else validate_exec(exec_mode)
    )
    join_algo = (
        DEFAULT_JOIN if join_algo is None else validate_join_algo(join_algo)
    )
    if exec_mode == "batch":
        if all(
            isinstance(term, Constant) for _, term in binding.items()
        ):
            if probe is None:
                probe = probe_from_matcher(matcher)
            return join_literals_batch(
                literals, binding, probe, holds, planner,
                join_algo=join_algo,
            )
        _TUPLE_FALLBACKS.inc()
        trace = current_trace()
        if trace is not None:
            trace.join["tuple_fallbacks"] += 1
    return join_literals(literals, binding, matcher, holds, planner)

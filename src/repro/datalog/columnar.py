"""Columnar relations: parallel value arrays behind a schema header.

The batch kernel's intermediates were born as row-tuple lists — every
projection, key extraction and dedup walked the rows and rebuilt
tuples. A :class:`ColumnarRelation` stores one Python list per column
under a schema naming the columns, so those operations become
column-slice work shared by both join paths: the hash pipeline seeds
delta joins from one, and the worst-case-optimal path
(:mod:`repro.datalog.wcoj`) permutes/encodes columns without touching
row tuples. This is also the seam a future vectorized (numpy /
multi-backend) kernel plugs into: swap the per-column ``list`` for a
typed array and the schema contract stays put.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.logic.terms import Constant, Variable


class ColumnarRelation:
    """A relation as parallel columns plus a schema header.

    *schema* is a tuple of distinct :class:`Variable` column names;
    *columns* holds one equal-length value list per schema entry.
    *length* carries the row count when there are no columns — a
    width-0 relation still distinguishes "the unit row" (a satisfied
    ground body) from "no rows" (a failed one), and ``zip`` pivots
    cannot preserve that on their own.
    """

    __slots__ = ("schema", "columns", "_length")

    def __init__(
        self,
        schema: Sequence[Variable],
        columns: Sequence[List[Constant]],
        length: int = 0,
    ):
        self.schema: Tuple[Variable, ...] = tuple(schema)
        if len(columns) != len(self.schema):
            raise ValueError(
                f"schema/column mismatch: {len(self.schema)} columns "
                f"named, {len(columns)} supplied"
            )
        self.columns: Tuple[List[Constant], ...] = tuple(columns)
        self._length = len(self.columns[0]) if self.columns else length

    @classmethod
    def from_rows(
        cls, schema: Sequence[Variable], rows: Sequence[tuple]
    ) -> "ColumnarRelation":
        """Pivot row tuples into columns (the ingestion seam for
        probe results and delta rows)."""
        schema = tuple(schema)
        if not rows:
            return cls(schema, [[] for _ in schema])
        pivoted = list(zip(*rows))
        return cls(
            schema,
            [list(column) for column in pivoted],
            length=len(rows),
        )

    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def rows(self) -> Iterator[tuple]:
        """Back to row tuples (the chunk-yield contract of
        :func:`repro.datalog.joins.join_literals_rows`)."""
        if not self.columns:
            return iter([()] * self._length)
        return zip(*self.columns)

    def column(self, variable: Variable) -> List[Constant]:
        """One column by schema name."""
        return self.columns[self.schema.index(variable)]

    def project(self, variables: Sequence[Variable]) -> "ColumnarRelation":
        """Column selection/reordering — no row rebuild, the selected
        column lists are shared, not copied."""
        positions = [self.schema.index(v) for v in variables]
        return ColumnarRelation(
            tuple(variables),
            [self.columns[p] for p in positions],
            length=self._length,
        )

    def key_of(self, variables: Sequence[Variable]) -> List[tuple]:
        """Per-row key tuples over *variables* — hash-join key
        extraction as one column zip instead of per-row indexing."""
        positions = [self.schema.index(v) for v in variables]
        if not positions:
            return [()] * len(self)
        return list(zip(*(self.columns[p] for p in positions)))

    def distinct(self) -> "ColumnarRelation":
        """Dedup rows (set semantics); returns self when already
        distinct so callers can cheaply test ``rel.distinct() is rel``."""
        if not self.columns:
            if self._length <= 1:
                return self
            return ColumnarRelation(self.schema, (), length=1)
        seen = set(zip(*self.columns))
        if len(seen) == len(self.columns[0]):
            return self
        return ColumnarRelation.from_rows(self.schema, sorted_rows(seen))


def sorted_rows(rows) -> List[tuple]:
    """Deterministically ordered row list for a set of constant rows
    (constants are unordered; the surrogate key from
    :func:`repro.datalog.wcoj.sort_token` makes them sortable)."""
    from repro.datalog.wcoj import sort_token

    return sorted(rows, key=lambda row: tuple(sort_token(c) for c in row))

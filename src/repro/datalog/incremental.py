"""Incremental view maintenance: delete–re-derive (DRed).

The paper's conclusion calls for "further work … devoted to the
constraint evaluation phase". This module supplies the now-classical
answer for materialized deductive databases: given a materialized
canonical model and a transaction, maintain the model *differentially*
instead of recomputing it —

1. **over-delete**: propagate deletions through the rules, removing
   every derived fact that (transitively) used a deleted fact;
2. **re-derive**: put back over-deleted facts that still have an
   alternative derivation;
3. **insert**: semi-naive propagation of the insertions.

The net difference equals the ``delta`` meta-interpreter's answer set
(a property test pins this), but the cost profile differs: DRed
maintains the *whole* model — attractive when the model is materialized
anyway — while ``delta`` is goal-directed and computes only demanded
changes. The E8-adjacent ablation in ``benchmarks`` contrasts them.

Stratified negation is handled stratum by stratum: after maintaining a
stratum, the computed changes seed the maintenance of higher strata
(changes through negative literals flip polarity).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog.facts import (
    FactStore,
    build_group_index,
    index_into_groups,
)
from repro.datalog.joins import (
    join_body,
    probe_from_source,
)
from repro.datalog.planner import make_planner
from repro.datalog.program import Program, Rule
from repro.logic.formulas import Atom, Literal
from repro.logic.substitution import Substitution
from repro.logic.unify import match
from repro.obs.metrics import default_registry

# Process-wide mirror of the per-store group_builds counters.
_GROUP_BUILDS = default_registry().counter("store.group_builds")

_EMPTY_BUCKET: frozenset = frozenset()


class PredicateIndexedSet:
    """A set of ground atoms bucketed by predicate, like
    :class:`FactStore`'s per-predicate buckets.

    The DRed over-deletion joins probe the `removed` overlay once per
    join pattern; bucketing makes each probe via :meth:`matching`
    O(matching facts of that predicate) instead of a linear scan of
    the whole overlay, which dominates deletion-heavy cascades. The
    `inserted` overlay shares the representation for symmetry but is
    only ever consulted by membership, which a plain set also served
    in O(1).

    For the batch join path, :meth:`bucket` mirrors
    :meth:`FactStore.bucket`: a composite group index per
    (predicate, positions) pair, built lazily by one scan (counted in
    :attr:`group_builds`) and maintained incrementally by :meth:`add` —
    required, because the ``removed`` overlay grows *while* a deletion
    cascade's joins consume it."""

    __slots__ = ("_by_pred", "_size", "_groups", "group_builds")

    def __init__(self, atoms: Iterable[Atom] = ()):
        self._by_pred: dict = {}
        self._size = 0
        # positions -> key tuple -> atoms, per predicate (lazy).
        self._groups: dict = {}
        self.group_builds = 0
        self.update(atoms)

    def add(self, atom: Atom) -> None:
        bucket = self._by_pred.setdefault(atom.pred, set())
        if atom not in bucket:
            bucket.add(atom)
            self._size += 1
            groups = self._groups.get(atom.pred)
            if groups:
                index_into_groups(groups, atom)

    def update(self, atoms: Iterable[Atom]) -> None:
        for atom in atoms:
            self.add(atom)

    def matching(self, pred: str):
        """All stored atoms of predicate *pred* (the probe set)."""
        return self._by_pred.get(pred, _EMPTY_BUCKET)

    def bucket(self, pred: str, positions, key):
        """All atoms of *pred* whose arguments at *positions* equal
        *key* — one hash probe, exactly like
        :meth:`FactStore.bucket` (live set: treat as read-only)."""
        if not positions:
            return self._by_pred.get(pred, _EMPTY_BUCKET)
        bucket = self._by_pred.get(pred)
        if not bucket:
            return _EMPTY_BUCKET
        groups = self._groups.setdefault(pred, {})
        index = groups.get(positions)
        if index is None:
            index = groups[positions] = build_group_index(bucket, positions)
            self.group_builds += 1
            _GROUP_BUILDS.inc()

        return index.get(key, _EMPTY_BUCKET)

    def __contains__(self, atom: Atom) -> bool:
        return atom in self._by_pred.get(atom.pred, _EMPTY_BUCKET)

    def __iter__(self):
        for bucket in self._by_pred.values():
            yield from bucket

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"PredicateIndexedSet({self._size} atoms, "
            f"{len(self._by_pred)} predicates)"
        )


class _PreUpdateView:
    """The exact pre-update state — model ∪ removed − inserted — as a
    first-class fact source for DRed's over-deletion joins.

    Giving the composite view a real :meth:`bucket` (mirroring the
    dedup rules of ``_CombinedView``/``_DemandView``) lets deletion
    cascades hit the model store's composite group indexes directly
    instead of batching through the generic ``probe_from_matcher``
    adapter, which re-enumerated ``match`` per distinct join key.

    The caller removes facts from the model *while* consuming join
    results; that is safe here exactly as it was for the matcher: a
    fact removed mid-join lands in the ``removed`` overlay, which this
    view keeps visible (``removed`` wins over ``inserted``: a fact
    recorded as removed was in the old state even if propagation later
    re-added it)."""

    __slots__ = ("model", "removed", "inserted")

    def __init__(
        self,
        model: FactStore,
        removed: PredicateIndexedSet,
        inserted: PredicateIndexedSet,
    ):
        self.model = model
        self.removed = removed
        self.inserted = inserted

    def contains(self, atom: Atom) -> bool:
        if atom in self.removed:
            return True
        if atom in self.inserted:
            return False
        return self.model.contains(atom)

    def _matches(self, pattern: Atom):
        """(fact, binding) pairs for *pattern*, one unification per
        overlay fact. Snapshots (list): the caller mutates the model
        mid-iteration."""
        seen: Set[Atom] = set()
        for fact in list(self.model.match(pattern)):
            seen.add(fact)
            if fact in self.inserted and fact not in self.removed:
                continue  # not part of the old state
            binding = match(pattern, fact)
            if binding is not None:
                yield fact, binding
        for fact in list(self.removed.matching(pattern.pred)):
            if fact not in seen:
                binding = match(pattern, fact)
                if binding is not None:
                    yield fact, binding

    def match(self, pattern: Atom):
        for fact, _ in self._matches(pattern):
            yield fact

    def match_substitutions(self, pattern: Atom):
        for _, binding in self._matches(pattern):
            yield binding

    def bucket(self, pred: str, positions, key):
        """Batched probe over all three parts, one hash lookup each —
        the model facts win the dedup against the removed overlay,
        mirroring :meth:`match`. Returns a fresh list (the caller
        mutates the underlying stores while consuming joins)."""
        model_facts = self.model.bucket(pred, positions, key)
        inserted, removed = self.inserted, self.removed
        out = [
            fact
            for fact in model_facts
            if not (fact in inserted and fact not in removed)
        ]
        extra = removed.bucket(pred, positions, key)
        if extra:
            out.extend(fact for fact in extra if fact not in model_facts)
        return out

    def count(self, pred: str) -> int:
        return self.model.count(pred) + len(self.removed.matching(pred))

    def estimate(self, pattern: Atom) -> int:
        """Upper bound, like the overlay store's: removed facts may
        overlap the model's figure, which only overshoots."""
        return self.model.estimate(pattern) + len(
            self.removed.matching(pattern.pred)
        )


class MaintainedModel:
    """A materialized canonical model kept current under updates."""

    def __init__(
        self,
        edb,
        program: Program,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        join_algo: Optional[str] = None,
        *,
        config=None,
    ):
        from repro.config import resolve_config
        from repro.datalog.bottomup import compute_model

        config = resolve_config(
            config, plan=plan, exec_mode=exec_mode, join_algo=join_algo,
            warn=False,
        )
        self.config = config
        self.program = program
        # copy() preserves the EDB's backend, and compute_model hands
        # the model the same backend — a sqlite EDB maintains a sqlite
        # model, so out-of-core databases stay out of core end to end.
        self.edb = edb.copy()
        self.exec_mode = config.exec_mode
        self.join_algo = config.join_algo
        self.model = compute_model(self.edb, program, config=config)
        # Maintenance joins run over the evolving model; its cardinality
        # accounting keeps re-planning O(body²) per join.
        self.planner = make_planner(config.plan, self.model)

    @classmethod
    def from_snapshot(
        cls,
        edb,
        program: Program,
        model,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        join_algo: Optional[str] = None,
        *,
        config=None,
    ) -> "MaintainedModel":
        """Resume a maintained model from a persisted *model* store
        without recomputing the fixpoint — the storage engine's
        recovery path. The caller vouches that *model* is the canonical
        model of ``edb ∪ program`` (the crash-recovery tests verify
        this equals a from-scratch recomputation); both stores are
        copied, so the snapshot they came from stays pristine."""
        from repro.config import resolve_config

        config = resolve_config(
            config, plan=plan, exec_mode=exec_mode, join_algo=join_algo,
            warn=False,
        )
        maintained = cls.__new__(cls)
        maintained.config = config
        maintained.program = program
        maintained.edb = edb.copy()
        maintained.exec_mode = config.exec_mode
        maintained.join_algo = config.join_algo
        maintained.model = model.copy()
        maintained.planner = make_planner(config.plan, maintained.model)
        return maintained

    # -- public API -----------------------------------------------------------------

    def apply(self, updates) -> Tuple[Set[Atom], Set[Atom]]:
        """Apply a transaction to the EDB and maintain the model.

        Returns ``(inserted, deleted)`` — the net changes to the
        canonical model (both extensional and derived facts).

        *updates* takes any :meth:`Transaction.coerce` surface form
        (literals, source strings, a transaction), same as the checker.
        """
        from repro.integrity.transactions import Transaction

        insertions: List[Atom] = []
        deletions: List[Atom] = []
        for update in Transaction.coerce(updates).net():
            if update.positive:
                if self.edb.add(update.atom):
                    insertions.append(update.atom)
            else:
                if self.edb.remove(update.atom):
                    deletions.append(update.atom)
        # Inserts of facts already derivable are no model change.
        already_true = {
            atom for atom in insertions if self.model.contains(atom)
        }
        inserted, deleted = self._maintain(insertions, deletions)
        return inserted - already_true, deleted

    def holds(self, atom: Atom) -> bool:
        return self.model.contains(atom)

    def snapshot(self) -> FactStore:
        return self.model.copy()

    # -- DRed ------------------------------------------------------------------------

    def _maintain(
        self, base_inserts: List[Atom], base_deletes: List[Atom]
    ) -> Tuple[Set[Atom], Set[Atom]]:
        all_inserted: Set[Atom] = set()
        all_deleted: Set[Atom] = set()
        # Changes seeding the current stratum, as signed literals.
        pending_inserts: Set[Atom] = set(base_inserts)
        pending_deletes: Set[Atom] = set(base_deletes)
        # Facts the transaction genuinely adds (recorded before the
        # model is touched: an insert of an already-derivable fact is
        # no state change).
        inserted_so_far = PredicateIndexedSet(
            atom for atom in base_inserts if not self.model.contains(atom)
        )
        # Base changes apply directly to the model.
        for atom in base_deletes:
            # Keep the fact if a rule still derives it (it may be IDB too).
            self.model.remove(atom)
        for atom in base_inserts:
            self.model.add(atom)
        # Everything removed from the pre-update model so far. Together
        # with ``inserted_so_far`` this lets over-deletion joins
        # reconstruct the *pre-update* state exactly: a derivation
        # whose support changed in several places at once (both body
        # facts of ``busy(X) :- p(X), q(X)`` deleted, or both atoms
        # under the negations of ``h(X) :- r(X), not p(X), not q(X)``
        # inserted in one transaction) is invisible through the current
        # model alone, leaving phantom derived facts behind.
        removed_so_far = PredicateIndexedSet(
            atom for atom in base_deletes if not self.model.contains(atom)
        )
        for _, rules in self.program.rules_by_stratum():
            stratum_preds = {rule.head.pred for rule in rules}
            deleted_here = self._over_delete(
                rules,
                stratum_preds,
                pending_deletes | pending_inserts,
                removed_so_far,
                inserted_so_far,
            )
            # Base-deleted facts of this stratum's predicates may still
            # have rule support (a predicate can be EDB and IDB at once).
            rederive_candidates = deleted_here | {
                atom
                for atom in base_deletes
                if atom.pred in stratum_preds
                and not self.model.contains(atom)
            }
            rederived = self._rederive(rules, rederive_candidates)
            deleted_here -= rederived
            removed_so_far.update(deleted_here)
            inserted_here = self._insert_propagate(
                rules,
                stratum_preds,
                pending_inserts | pending_deletes,
            )
            inserted_so_far.update(inserted_here)
            all_deleted |= deleted_here
            all_inserted |= inserted_here
            pending_inserts = pending_inserts | inserted_here
            pending_deletes = pending_deletes | deleted_here
        # Re-derivation of base deletions by rules: a deleted EDB fact
        # that is also derivable stays in the model.
        truly_deleted = {
            atom for atom in base_deletes if not self.model.contains(atom)
        }
        truly_inserted = {
            atom for atom in base_inserts if self.model.contains(atom)
        }
        return (all_inserted | truly_inserted), (all_deleted | truly_deleted)

    def _over_delete(
        self,
        rules: Sequence[Rule],
        stratum_preds: Set[str],
        changed: Set[Atom],
        removed_before: PredicateIndexedSet,
        inserted: PredicateIndexedSet,
    ) -> Set[Atom]:
        """Remove every derived fact whose support may have used a
        changed fact (deleted positive / inserted negative dependency).
        Over-approximation; re-derivation repairs it. *removed_before*
        holds facts already gone from the pre-update model (base
        deletions, lower-stratum over-deletions) and *inserted* the
        facts the update genuinely added — together they reconstruct
        the old state the derivations being hunted lived in. Both
        overlays are predicate-indexed so each join probe touches only
        same-predicate facts."""
        deleted: Set[Atom] = set()
        # The pre-deletion overlay: grows with our own over-deletions.
        removed = PredicateIndexedSet(removed_before)
        frontier: Set[Atom] = set(changed)
        while frontier:
            current = frontier
            frontier = set()
            for rule in rules:
                for index, literal in enumerate(rule.body):
                    for atom in current:
                        if literal.atom.pred != atom.pred:
                            continue
                        binding = self._bind_occurrence(literal, atom)
                        if binding is None:
                            continue
                        rest = [
                            l.substitute(binding)
                            for l in rule.body_without(index)
                        ]
                        head = rule.head.substitute(binding)
                        for answer in self._join_over_model_or_deleted(
                            rest, removed, inserted
                        ):
                            candidate = head.substitute(answer)
                            if self.model.contains(candidate):
                                self.model.remove(candidate)
                                if not self.edb.contains(candidate):
                                    deleted.add(candidate)
                                    removed.add(candidate)
                                    frontier.add(candidate)
                                else:
                                    # Extensional fact stays.
                                    self.model.add(candidate)
        return deleted

    def _bind_occurrence(self, literal: Literal, atom: Atom):
        return match(literal.atom, atom)

    def _join_over_model_or_deleted(
        self,
        rest: Sequence[Literal],
        removed: PredicateIndexedSet,
        inserted: PredicateIndexedSet,
    ):
        """During over-deletion, joins must see the *pre-update* state:
        the current model, plus everything removed from it so far (base
        deletions and over-deleted facts alike), minus everything the
        update genuinely added. The :class:`_PreUpdateView` gives that
        composite a real ``bucket()``, so the batch path probes the
        store group indexes directly instead of adapting the generic
        matcher."""
        view = _PreUpdateView(self.model, removed, inserted)

        def matcher(index: int, pattern: Atom):
            return view.match_substitutions(pattern)

        yield from join_body(
            rest,
            Substitution.empty(),
            matcher,
            view.contains,
            self.planner,
            exec_mode=self.exec_mode,
            probe=probe_from_source(view),
            join_algo=self.join_algo,
        )

    def _rederive(
        self, rules: Sequence[Rule], deleted: Set[Atom]
    ) -> Set[Atom]:
        """Put back over-deleted facts with surviving alternative
        derivations."""
        rederived: Set[Atom] = set()
        changed = True
        while changed:
            changed = False
            for atom in list(deleted - rederived):
                for rule in rules:
                    if rule.head.pred != atom.pred:
                        continue
                    binding = match(rule.head, atom)
                    if binding is None:
                        continue
                    body = [l.substitute(binding) for l in rule.body]

                    def matcher(index: int, pattern: Atom):
                        for fact in self.model.match(pattern):
                            inner = match(pattern, fact)
                            if inner is not None:
                                yield inner

                    if any(
                        True
                        for _ in join_body(
                            body,
                            Substitution.empty(),
                            matcher,
                            self.model.contains,
                            self.planner,
                            exec_mode=self.exec_mode,
                            probe=probe_from_source(self.model),
                            join_algo=self.join_algo,
                        )
                    ):
                        self.model.add(atom)
                        rederived.add(atom)
                        changed = True
                        break
        return rederived

    def _insert_propagate(
        self,
        rules: Sequence[Rule],
        stratum_preds: Set[str],
        changed: Set[Atom],
    ) -> Set[Atom]:
        """Semi-naive insertion propagation seeded by the changes."""
        inserted: Set[Atom] = set()
        frontier: Set[Atom] = set(changed)
        while frontier:
            current = frontier
            frontier = set()
            derived: List[Atom] = []
            for rule in rules:
                for index, literal in enumerate(rule.body):
                    for atom in current:
                        if literal.atom.pred != atom.pred:
                            continue
                        binding = self._bind_occurrence(literal, atom)
                        if binding is None:
                            continue
                        # Positive occurrence fires on insert; negative
                        # occurrence fires on delete — handled by the
                        # model state itself: we simply re-join the rest
                        # against the *current* model and re-check the
                        # occurrence's truth.
                        occurrence = literal.substitute(binding)
                        occurrence_atom = occurrence.atom
                        holds_now = self.model.contains(occurrence_atom)
                        if occurrence.positive != holds_now:
                            continue
                        rest = [
                            l.substitute(binding)
                            for l in rule.body_without(index)
                        ]
                        head = rule.head.substitute(binding)

                        def matcher(i: int, pattern: Atom):
                            for fact in self.model.match(pattern):
                                inner = match(pattern, fact)
                                if inner is not None:
                                    yield inner

                        for answer in join_body(
                            rest,
                            Substitution.empty(),
                            matcher,
                            self.model.contains,
                            self.planner,
                            exec_mode=self.exec_mode,
                            probe=probe_from_source(self.model),
                            join_algo=self.join_algo,
                        ):
                            derived.append(head.substitute(answer))
            for fact in derived:
                if self.model.add(fact):
                    inserted.add(fact)
                    frontier.add(fact)
        return inserted

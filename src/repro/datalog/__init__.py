"""Deductive-database substrate: fact storage, rules, evaluation.

This subpackage is the stand-in for the Prolog–DBMS coupling the paper
relied on ([BOCC 86]): an indexed extensional store, stratified Datalog
rules, a bottom-up semi-naive evaluator, a tabled top-down evaluator
(in the spirit of [VIEI 87]), and a formula-level query engine that the
integrity and satisfiability layers drive.
"""

from repro.datalog.facts import FactStore
from repro.datalog.joins import (
    DEFAULT_EXEC,
    EXEC_MODES,
    join_body,
    join_literals,
    join_literals_batch,
    join_literals_rows,
    validate_exec,
)
from repro.datalog.magic import (
    MagicEvaluator,
    MagicFallbackWarning,
    MagicProgram,
    MagicRewriteError,
    MagicStratificationError,
    magic_rewrite,
)
from repro.datalog.overlay import OverlayFactStore
from repro.datalog.planner import (
    DEFAULT_PLAN,
    PLANS,
    GreedyPlanner,
    Planner,
    SourcePlanner,
    make_planner,
)
from repro.datalog.program import (
    Program,
    Rule,
    StratificationError,
)
from repro.datalog.bottomup import compute_model, compute_model_naive
from repro.datalog.incremental import MaintainedModel
from repro.datalog.topdown import TabledEvaluator
from repro.datalog.query import STRATEGIES, QueryEngine, validate_strategy
from repro.datalog.database import Constraint, DeductiveDatabase

__all__ = [
    "Constraint",
    "DEFAULT_EXEC",
    "DEFAULT_PLAN",
    "EXEC_MODES",
    "DeductiveDatabase",
    "FactStore",
    "GreedyPlanner",
    "MagicEvaluator",
    "MagicFallbackWarning",
    "MagicProgram",
    "MagicRewriteError",
    "MagicStratificationError",
    "MaintainedModel",
    "OverlayFactStore",
    "PLANS",
    "Planner",
    "Program",
    "QueryEngine",
    "Rule",
    "STRATEGIES",
    "SourcePlanner",
    "StratificationError",
    "TabledEvaluator",
    "compute_model",
    "compute_model_naive",
    "join_body",
    "join_literals",
    "join_literals_batch",
    "join_literals_rows",
    "magic_rewrite",
    "make_planner",
    "validate_exec",
    "validate_strategy",
]

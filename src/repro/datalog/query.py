"""Formula-level query evaluation over a deductive database state.

The :class:`QueryEngine` answers three kinds of questions the rest of
the library needs:

* ``holds(atom)`` — truth of a ground atom in the canonical model;
* ``match_atom(pattern)`` — answer substitutions for an atom pattern;
* ``evaluate(formula)`` / ``answers(...)`` — truth of a (restricted-
  quantification) formula, and answers to restriction conjunctions.

Three strategies are available:

``lazy`` (default)
    Intensional predicates are materialized *per dependency closure* on
    first access: querying ``p`` computes exactly the predicates ``p``
    transitively depends on, nothing else. This mirrors the paper's
    efficiency argument — an update method that never asks about a
    predicate never pays for it (Section 3.2's first drawback of the
    interleaved approaches).

``topdown``
    Goal-directed tabled evaluation (:class:`TabledEvaluator`).

``model``
    Materialize the full canonical model up front; cheapest when every
    constraint will be swept anyway (the *full check* baseline).

``magic``
    Goal-directed *bottom-up* evaluation: each query pattern is
    answered by the magic-sets rewrite of its dependency slice
    (:mod:`repro.datalog.magic`), so only demanded tuples are ever
    materialized. Patterns the rewrite declines (unbound queries, or
    demand propagation breaking stratification) fall back to the lazy
    per-closure path with a recorded diagnostic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

from repro.config import (  # noqa: F401  (STRATEGIES re-exported: old home)
    STRATEGIES,
    EngineConfig,
    resolve_config,
    validate_strategy,
)
from repro.datalog.bottomup import evaluate_stratum
from repro.datalog.facts import FactStore
from repro.datalog.joins import (
    join_body,
    rows_from_source,
    rows_from_substitutions,
)
from repro.datalog.magic import MagicEvaluator
from repro.datalog.planner import (
    UNKNOWN_CARDINALITY,
    make_planner,
)
from repro.datalog.program import Program
from repro.datalog.topdown import TabledEvaluator
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Literal,
    Or,
    TrueFormula,
)
from repro.logic.safety import constraint_predicates
from repro.logic.substitution import Substitution
from repro.logic.unify import match
from repro.obs.trace import current_trace
from repro.storage.result_cache import ResultCache


class _CombinedView:
    """Read view over extensional facts plus a derived-facts side store;
    writes go to the side store. Lets bottom-up evaluation materialize a
    subprogram without copying the extensional database."""

    __slots__ = ("extensional", "derived")

    def __init__(self, extensional, derived: FactStore):
        self.extensional = extensional
        self.derived = derived

    def match(self, pattern: Atom) -> Iterator[Atom]:
        seen: Set[Atom] = set()
        for fact in self.extensional.match(pattern):
            seen.add(fact)
            yield fact
        for fact in self.derived.match(pattern):
            if fact not in seen:
                yield fact

    def contains(self, fact: Atom) -> bool:
        return self.extensional.contains(fact) or self.derived.contains(fact)

    def add(self, fact: Atom) -> bool:
        if self.extensional.contains(fact):
            return False
        return self.derived.add(fact)

    def bucket(self, pred: str, positions, key):
        """Batched probe over both halves (extensional facts win the
        dedup, mirroring :meth:`match`)."""
        out = list(self.extensional.bucket(pred, positions, key))
        extra = self.derived.bucket(pred, positions, key)
        if extra:
            contains = self.extensional.contains
            out.extend(fact for fact in extra if not contains(fact))
        return out

    def count(self, pred: str) -> int:
        return self.extensional.count(pred) + self.derived.count(pred)

    def estimate(self, pattern: Atom) -> int:
        return self.extensional.estimate(pattern) + self.derived.estimate(
            pattern
        )


class QueryEngine:
    """Evaluator for atoms and restricted-quantification formulas."""

    def __init__(
        self,
        facts,
        program: Program,
        strategy: Union[EngineConfig, str, None] = None,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        supplementary: Optional[bool] = None,
        *,
        config: Optional[EngineConfig] = None,
        result_cache: Optional[ResultCache] = None,
    ):
        config = resolve_config(
            config if config is not None else strategy,
            plan=plan,
            exec_mode=exec_mode,
            supplementary=supplementary,
        )
        self.config = config
        self.facts = facts
        self.program = program
        # Loose-knob attributes kept for backward compatibility (and
        # internal brevity); `config` is the source of truth.
        self.strategy = config.strategy
        self.plan = config.plan
        self.exec_mode = config.exec_mode
        self.join_algo = config.join_algo
        # Whether the magic rewrite shares rule prefixes through
        # supplementary predicates; inert for the other strategies.
        self.supplementary = config.supplementary
        # Derived-result cache. A shared instance (the transaction
        # manager's, invalidated from DRed change sets) arrives via
        # result_cache; a standalone engine with config.cache owns a
        # private one, safe because engines are per database version.
        if result_cache is not None:
            self.result_cache: Optional[ResultCache] = result_cache
        elif config.cache:
            self.result_cache = ResultCache(config.cache_size)
        else:
            self.result_cache = None
        self._cache_key = config.key()
        self._derived = FactStore()
        self._view = _CombinedView(facts, self._derived)
        # The planner consults the engine's own estimate(), which knows
        # about tabled answers (topdown) and unmaterialized intensional
        # predicates — the raw view would report those as empty.
        self._planner = make_planner(config.plan, self._view).with_cardinality(
            lambda index, atom: self.estimate(atom)
        )
        self._materialized: Set[str] = set()
        self._tabled: Optional[TabledEvaluator] = (
            TabledEvaluator(facts, program, config=config)
            if config.strategy == "topdown"
            else None
        )
        # Demand-driven bottom-up evaluation; patterns whose rewrite
        # declines fall back to the lazy materialization path below.
        self.magic: Optional[MagicEvaluator] = (
            MagicEvaluator(facts, program, config=config)
            if config.strategy == "magic"
            else None
        )
        if config.strategy == "model":
            self._materialize_all()
        # Instrumentation for the benchmarks: how many atom-level lookups
        # this engine has served.
        self.lookup_count = 0

    # -- materialization -------------------------------------------------------------

    def _materialize_all(self) -> None:
        for pred in self.program.idb_predicates:
            self._ensure_materialized(pred)

    def _ensure_materialized(self, pred: str) -> None:
        if pred in self._materialized or not self.program.is_idb(pred):
            return
        trace = current_trace()
        if trace is None:
            self._materialize_closure(pred)
        else:
            with trace.phase("materialize"):
                self._materialize_closure(pred)

    def _materialize_closure(self, pred: str) -> None:
        closure = self.program.reachable_from(pred)
        pending = [
            p
            for p in closure
            if self.program.is_idb(p) and p not in self._materialized
        ]
        by_stratum: Dict[int, List] = {}
        for rule in self.program.rules:
            if rule.head.pred in pending:
                by_stratum.setdefault(
                    self.program.stratum_of(rule.head.pred), []
                ).append(rule)
        for stratum in sorted(by_stratum):
            rules = by_stratum[stratum]
            stratum_preds = {r.head.pred for r in rules}
            evaluate_stratum(
                self._view, rules, stratum_preds, self._planner,
                self.exec_mode, self.join_algo,
            )
            # A stratum is final once saturated (stratified semantics),
            # so its extents become usable statistics immediately.
            self._materialized.update(stratum_preds)
        self._materialized.update(pending)

    # -- atom-level access -------------------------------------------------------------

    def holds(self, atom: Atom) -> bool:
        """Truth of a ground atom in the canonical model. Cached with
        atom-level precision when a result cache is attached: the entry
        depends on exactly this atom's membership in the model, so only
        a change set containing *this* atom evicts it."""
        if not atom.is_ground():
            raise ValueError(f"holds() needs a ground atom: {atom}")
        cache = self.result_cache
        if cache is not None:
            key = ("holds", self._cache_key, atom)
            hit, value = cache.get(key)
            trace = current_trace()
            if trace is not None:
                trace.record_cache(hit)
            if hit:
                return value
        self.lookup_count += 1
        value = self._holds(atom)
        if cache is not None:
            cache.put(key, value, (atom.pred,), (atom,))
        return value

    def _holds(self, atom: Atom) -> bool:
        if self._tabled is not None:
            return self._tabled.holds(atom)
        if self.program.is_idb(atom.pred):
            if self.magic is not None and self.magic.supports(atom):
                # Demand stores cover extensional facts via copy rules.
                return self.magic.holds(atom)
            self._ensure_materialized(atom.pred)
            if self._derived.contains(atom):
                return True
        return self.facts.contains(atom)

    def match_atom(self, pattern: Atom) -> Iterator[Substitution]:
        """Answer substitutions for an atom pattern (EDB ∪ derived)."""
        self.lookup_count += 1
        if self._tabled is not None:
            yield from self._tabled.answers(pattern)
            return
        if self.program.is_idb(pattern.pred):
            if self.magic is not None and self.magic.supports(pattern):
                yield from self.magic.answers(pattern)
                return
            self._ensure_materialized(pattern.pred)
            seen: Set[Atom] = set()
            for fact in self.facts.match(pattern):
                seen.add(fact)
                subst = match(pattern, fact)
                if subst is not None:
                    yield subst
            for fact in self._derived.match(pattern):
                if fact not in seen:
                    subst = match(pattern, fact)
                    if subst is not None:
                        yield subst
            return
        yield from self.facts.match_substitutions(pattern)

    def probe_rows(self, pattern: Atom):
        """Batched counterpart of :meth:`match_atom`: one value row per
        answer (the pattern's distinct-variable values in
        first-occurrence order). Served from the stores' composite hash
        indexes wherever the strategy materializes facts; tabled and
        magic answers go through their substitution APIs."""
        self.lookup_count += 1
        if self._tabled is not None:
            return rows_from_substitutions(
                pattern, self._tabled.answers(pattern)
            )
        if self.program.is_idb(pattern.pred):
            if self.magic is not None and self.magic.supports(pattern):
                return rows_from_substitutions(
                    pattern, self.magic.answers(pattern)
                )
            self._ensure_materialized(pattern.pred)
            return rows_from_source(self._view, pattern)
        return rows_from_source(self.facts, pattern)

    @property
    def planner(self):
        """The engine's join planner — wired to :meth:`estimate`, so
        consumers joining over this engine (delta evaluation, rule-seed
        enumeration) reuse it instead of rebuilding their own."""
        return self._planner

    def estimate(self, pattern: Atom) -> int:
        """O(1)-ish cardinality estimate for *pattern* over this
        engine's visible state (EDB plus whatever intensional answers
        are materialized/tabled so far) — the statistic join planners
        built over an engine consume. An intensional predicate not yet
        materialized has an unknown extent and is costed
        pessimistically so it is not scheduled ahead of known-small
        relations."""
        if self._tabled is not None:
            return self._tabled.estimate(pattern)
        if (
            self.program.is_idb(pattern.pred)
            and pattern.pred not in self._materialized
        ):
            return UNKNOWN_CARDINALITY
        return self._view.estimate(pattern)

    # -- conjunction answers --------------------------------------------------------------

    def answers_conjunction(
        self,
        atoms: Sequence[Atom],
        binding: Substitution = Substitution.empty(),
    ) -> Iterator[Substitution]:
        """Answer substitutions for a conjunction of positive atoms —
        evaluation of a quantifier's *restriction*. Delegates to the
        shared join kernel, so the conjunction is join-planned like a
        rule body (conjunction is commutative: the answer set is
        order-independent)."""

        def matcher(index: int, pattern: Atom) -> Iterator[Substitution]:
            return self.match_atom(pattern)

        def probe(index: int, pattern: Atom):
            return self.probe_rows(pattern)

        trace = current_trace()
        if trace is not None and atoms:
            # Record the planner's choice for the EXPLAIN tree. Done
            # here (not in the kernel) because a semi-naive round's
            # batch and tuple legs plan *different* literal lists — the
            # conjunction order is the leg-independent logical plan.
            positives = [
                (index, Literal(atom.substitute(binding), True))
                for index, atom in enumerate(atoms)
            ]
            ordered = self._planner.order(
                positives, set(binding.domain())
            )
            trace.record_plan(
                " ∧ ".join(str(atom) for atom in atoms),
                tuple(str(literal.atom) for _, literal in ordered),
                tuple(
                    self.estimate(literal.atom)
                    for _, literal in ordered
                ),
            )

        yield from join_body(
            [Literal(atom, True) for atom in atoms],
            binding,
            matcher,
            self.holds,
            self._planner,
            exec_mode=self.exec_mode,
            probe=probe,
            join_algo=self.join_algo,
        )

    # -- formula evaluation ------------------------------------------------------------------

    def evaluate(
        self, formula: Formula, binding: Substitution = Substitution.empty()
    ) -> bool:
        """Truth of *formula* (closed under *binding*) in the canonical
        model. Quantifiers must be in restricted form.

        Closed formulas (empty binding) are cached with
        predicate-level precision when a result cache is attached: the
        entry depends on the extensions of exactly the predicates the
        formula mentions, so commits whose DRed change set touches
        none of them leave it warm."""
        cache = self.result_cache
        if cache is not None and not binding:
            key = ("eval", self._cache_key, formula)
            hit, value = cache.get(key)
            trace = current_trace()
            if trace is not None:
                trace.record_cache(hit)
            if hit:
                return value
            value = self._evaluate(formula, binding)
            cache.put(key, value, constraint_predicates(formula))
            return value
        return self._evaluate(formula, binding)

    def _evaluate(
        self, formula: Formula, binding: Substitution = Substitution.empty()
    ) -> bool:
        if isinstance(formula, TrueFormula):
            return True
        if isinstance(formula, FalseFormula):
            return False
        if isinstance(formula, Literal):
            atom = formula.atom.substitute(binding)
            if not atom.is_ground():
                raise ValueError(
                    f"cannot evaluate non-ground literal {atom}; binding "
                    f"incomplete"
                )
            value = self.holds(atom)
            return value if formula.positive else not value
        if isinstance(formula, And):
            return all(self.evaluate(c, binding) for c in formula.children)
        if isinstance(formula, Or):
            return any(self.evaluate(c, binding) for c in formula.children)
        if isinstance(formula, Forall):
            if formula.restriction is None:
                raise ValueError(f"unrestricted quantifier: {formula}")
            for answer in self.answers_conjunction(formula.restriction, binding):
                if not self.evaluate(formula.matrix, answer):
                    return False
            return True
        if isinstance(formula, Exists):
            if formula.restriction is None:
                raise ValueError(f"unrestricted quantifier: {formula}")
            for answer in self.answers_conjunction(formula.restriction, binding):
                if self.evaluate(formula.matrix, answer):
                    return True
            return False
        raise ValueError(f"cannot evaluate node {formula!r}")

    def violations(
        self, formula: Formula, binding: Substitution = Substitution.empty()
    ) -> Iterator[Substitution]:
        """Witnesses of *falsity*: for a universal constraint, the
        restriction answers under which the matrix fails. For other
        formulas, yields the binding itself when the formula is false.

        This powers both violation reporting and the satisfiability
        checker's selection of instances to enforce.
        """
        if isinstance(formula, Forall) and formula.restriction is not None:
            for answer in self.answers_conjunction(formula.restriction, binding):
                if not self.evaluate(formula.matrix, answer):
                    yield answer.restrict(
                        set(formula.matrix.free_variables())
                        | set(formula.variables_tuple)
                    )
            return
        if not self.evaluate(formula, binding):
            yield binding

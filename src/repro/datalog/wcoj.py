"""Worst-case-optimal join: leapfrog triejoin (Veldhuizen 2014).

The batch kernel's hash pipeline joins a body pairwise, so cyclic
bodies — triangles, cliques, same-generation over dense graphs —
materialize intermediate relations that can dwarf the final output.
This module intersects *all* relations one variable at a time instead:
every relation is presented as a trie over a global variable order
(:class:`TrieIterator`), and for each variable the participating
tries leapfrog-seek to their common keys (:class:`Leapfrog`). The
running time is bounded by the AGM fractional-edge-cover bound of the
body — worst-case optimal — instead of the size of the largest
pairwise intermediate.

The tries are flat sorted arrays of integer-encoded rows: constants
are not orderable (:class:`~repro.logic.terms.Constant` compares by
value equality only), so each join builds one dense code dictionary —
distinct constants ranked by a surrogate :func:`sort_token` — and
runs the leapfrog over ``int`` codes. Code equality is value equality
by construction, so surrogate-key collisions cannot merge distinct
constants; the surrogate only fixes *an* order, which is all the
algorithm needs.

Eligibility detection and the fallback to the hash pipeline live in
:mod:`repro.datalog.joins` (the dispatcher); this module is pure
mechanism. :func:`is_acyclic` (GYO ear removal) is the planner test
the ``auto`` mode uses: alpha-acyclic bodies are exactly the ones
pairwise joins already handle near-optimally, so only cyclic bodies
are routed here by default.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from operator import itemgetter
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

from repro.datalog.columnar import ColumnarRelation
from repro.logic.terms import Constant, Variable


def sort_token(constant: Constant) -> Tuple[str, str]:
    """A surrogate sort key for a :class:`Constant`: constants wrap
    arbitrary hashable values that need not be mutually orderable, so
    ordering goes through ``(type name, repr)``. Collisions are
    harmless — the encoder assigns distinct codes to distinct
    constants regardless."""
    value = constant.value
    return (type(value).__name__, repr(value))


class TrieIterator:
    """A relation as a trie over its column order, backed by one flat
    sorted array of rows (Veldhuizen 2014 §3.2's presentation).

    *rows* are equal-width tuples of integer codes; duplicates are
    collapsed and the array sorted on construction. The iterator
    starts *above* the root: :meth:`open` descends one level (into the
    sorted distinct keys of the next column under the current prefix),
    :meth:`up` ascends, and within a level :meth:`next` / :meth:`seek`
    advance through the distinct keys in sorted order, setting
    :attr:`at_end` when the level is exhausted. Complexity is the
    textbook one: ``seek`` is a binary search over the current
    prefix's range.
    """

    __slots__ = ("rows", "depth", "pos", "lo", "hi", "at_end", "_stack")

    def __init__(self, rows: Iterable[Tuple[int, ...]]):
        self.rows: List[Tuple[int, ...]] = sorted(set(rows))
        self.depth = -1
        self.pos = 0
        self.lo = 0
        self.hi = len(self.rows)
        self.at_end = not self.rows
        self._stack: List[Tuple[int, int, int]] = []

    def key(self) -> int:
        """The current key at the current level."""
        return self.rows[self.pos][self.depth]

    def open(self) -> None:
        """Descend to the first key of the next level (the keys that
        extend the current prefix)."""
        self._stack.append((self.lo, self.hi, self.pos))
        if self.depth >= 0:
            # Narrow to the rows sharing the current key: the child
            # range of the trie node we are positioned on.
            self.hi = bisect_right(
                self.rows, self.key(), self.pos, self.hi,
                key=itemgetter(self.depth),
            )
            self.lo = self.pos
        self.depth += 1
        self.pos = self.lo
        self.at_end = self.pos >= self.hi

    def up(self) -> None:
        """Ascend to the parent level, restored to the key that was
        open."""
        self.lo, self.hi, self.pos = self._stack.pop()
        self.depth -= 1
        self.at_end = self.depth >= 0 and self.pos >= self.hi

    def next(self) -> None:
        """Advance to the next distinct key at this level."""
        self.pos = bisect_right(
            self.rows, self.key(), self.pos, self.hi,
            key=itemgetter(self.depth),
        )
        self.at_end = self.pos >= self.hi

    def seek(self, target: int) -> None:
        """Advance to the least key ``>= target`` at this level (no
        backward motion — *target* must be ``>=`` the current key)."""
        self.pos = bisect_left(
            self.rows, target, self.pos, self.hi,
            key=itemgetter(self.depth),
        )
        self.at_end = self.pos >= self.hi


class Leapfrog:
    """The single-variable intersection: unary leapfrog join of the
    iterators currently open at one trie level."""

    __slots__ = ("iters", "p", "key", "at_end")

    def __init__(self, iters: Sequence[TrieIterator]):
        self.iters: List[TrieIterator] = list(iters)
        self.p = 0
        self.key: int = -1
        self.at_end = False

    def init(self) -> None:
        if any(it.at_end for it in self.iters):
            self.at_end = True
            return
        self.at_end = False
        self.iters.sort(key=TrieIterator.key)
        self.p = 0
        self._search()

    def _search(self) -> None:
        iters = self.iters
        n = len(iters)
        max_key = iters[self.p - 1].key()  # p-1 wraps via negative index
        while True:
            it = iters[self.p]
            key = it.key()
            if key == max_key:
                self.key = key
                return
            it.seek(max_key)
            if it.at_end:
                self.at_end = True
                return
            max_key = it.key()
            self.p = (self.p + 1) % n

    def next(self) -> None:
        it = self.iters[self.p]
        it.next()
        if it.at_end:
            self.at_end = True
            return
        self.p = (self.p + 1) % len(self.iters)
        self._search()


def variable_order(varsets: Sequence[Iterable[Variable]]) -> Tuple[Variable, ...]:
    """A deterministic global variable order for the join: most-shared
    variables first (they prune hardest), ties broken by first
    occurrence across the body."""
    counts: Dict[Variable, int] = {}
    first: Dict[Variable, int] = {}
    position = 0
    for varset in varsets:
        for variable in varset:
            counts[variable] = counts.get(variable, 0) + 1
            if variable not in first:
                first[variable] = position
                position += 1
    return tuple(
        sorted(counts, key=lambda v: (-counts[v], first[v]))
    )


def is_acyclic(varsets: Sequence[Iterable[Variable]]) -> bool:
    """GYO ear removal: True iff the body hypergraph (one hyperedge of
    variables per relation) is alpha-acyclic. Acyclic bodies have a
    join tree — pairwise hash joins evaluate them without blowup, so
    ``auto`` keeps them on the hash pipeline."""
    edges: List[Set[Variable]] = [set(e) for e in varsets if e]
    while edges:
        changed = False
        counts: Dict[Variable, int] = {}
        for edge in edges:
            for variable in edge:
                counts[variable] = counts.get(variable, 0) + 1
        # Ear vertices: variables local to a single hyperedge.
        for edge in edges:
            lone = {v for v in edge if counts[v] == 1}
            if lone:
                edge -= lone
                changed = True
        # Hyperedges empty or contained in another are removed (one
        # survivor per duplicate class).
        kept: List[Set[Variable]] = []
        for i, edge in enumerate(edges):
            if not edge:
                changed = True
                continue
            if any(
                edge <= other and (edge < other or j < i)
                for j, other in enumerate(edges)
                if j != i
            ):
                changed = True
                continue
            kept.append(edge)
        edges = kept
        if not changed:
            return False
    return True


def leapfrog_rows(
    order: Sequence[Variable],
    relations: Sequence[ColumnarRelation],
) -> Iterator[Tuple[Constant, ...]]:
    """Enumerate the join of *relations* variable-by-variable: one
    constant tuple per satisfying assignment, columns laid out in
    *order*. Every relation's schema must be a subset of *order*;
    width-0 relations act as existence filters. Enumeration is lazy
    (depth-first), so single-witness consumers stop it early.
    """
    tries: List[Tuple[TrieIterator, List[int]]] = []
    pos_of = {variable: level for level, variable in enumerate(order)}
    # One dense code table per join: distinct constants ranked by the
    # surrogate token, decoded back on output. Column-sliced — the
    # relations never get re-rowed.
    values: Set[Constant] = set()
    for relation in relations:
        if not relation.schema:
            if len(relation) == 0:
                return  # a failed ground filter empties the join
            continue
        if len(relation) == 0:
            return  # any empty relation empties the join
        for column in relation.columns:
            values.update(column)
    decode = sorted(values, key=sort_token)
    code = {constant: index for index, constant in enumerate(decode)}
    for relation in relations:
        if not relation.schema:
            continue
        ordered_vars = sorted(relation.schema, key=pos_of.__getitem__)
        projected = relation.project(ordered_vars)
        encoded = zip(
            *([code[c] for c in column] for column in projected.columns)
        )
        tries.append(
            (TrieIterator(encoded), [pos_of[v] for v in ordered_vars])
        )
    if not order:
        yield ()
        return
    by_level: List[List[TrieIterator]] = [[] for _ in order]
    for trie, levels in tries:
        for level in levels:
            by_level[level].append(trie)
    assignment: List[int] = [0] * len(order)
    last = len(order) - 1

    def descend(level: int) -> Iterator[Tuple[Constant, ...]]:
        iters = by_level[level]
        for it in iters:
            it.open()
        try:
            frog = Leapfrog(iters)
            frog.init()
            while not frog.at_end:
                assignment[level] = frog.key
                if level == last:
                    yield tuple(decode[c] for c in assignment)
                else:
                    yield from descend(level + 1)
                frog.next()
        finally:
            for it in iters:
                it.up()

    yield from descend(0)

"""Indexed in-memory storage of ground facts — the ``dict`` backend.

The store keeps one set of facts per predicate plus a secondary index on
every (predicate, argument position, constant) triple, so matching a
partially instantiated atom costs a hash lookup on its most selective
bound position rather than a scan — the same access-path idea a
relational engine's hash index provides.

On top of the per-position index sits a *composite* hash index for the
batched join path: :meth:`FactStore.bucket` groups a predicate's facts
by their argument values at an arbitrary position set, so a hash join
probes one dictionary entry per distinct key instead of unifying
against a scan. Composite groups are built lazily — the first probe of
a (predicate, positions) pair pays one scan of that predicate's bucket
— and maintained incrementally by :meth:`FactStore.add`/
:meth:`FactStore.remove` thereafter: repeated probes of an unchanged
predicate never rescan (:attr:`FactStore.group_builds` counts the
build scans, pinned by the index tests).

:class:`FactStore` is the reference implementation of the
:class:`repro.storage.backends.base.StoreBackend` contract (registry
name ``"dict"``); the out-of-core sqlite backend implements the same
surface against real DB indexes. An optional ``max_facts`` cap turns
the store into a bounded buffer that raises
:class:`~repro.storage.backends.base.StoreCapacityError` when a
workload outgrows it — the signal to switch backends.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set, Tuple

from repro.logic.formulas import Atom
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.logic.unify import match
from repro.obs.metrics import default_registry

# The group-index helpers moved to the backend contract module with
# PR 6; re-exported here because the DRed overlay sets (and external
# code) import them from this, their historical home.
from repro.storage.backends.base import (  # noqa: F401  (re-exports)
    GroupIndex as _GroupIndex,
    StoreBackend,
    StoreCapacityError,
    build_group_index,
    drop_from_groups,
    index_into_groups,
)

_EMPTY: frozenset = frozenset()

# Process-wide mirror of the per-store group_builds counters.
_GROUP_BUILDS = default_registry().counter("store.group_builds")


class FactStore(StoreBackend):
    """A mutable, indexed set of ground atoms (in-process dicts)."""

    __slots__ = ("_by_pred", "_index", "_groups", "_size", "group_builds", "max_facts")

    name = "dict"

    def __init__(
        self,
        facts: Iterable[Atom] = (),
        *,
        max_facts: Optional[int] = None,
    ):
        if max_facts is not None and max_facts < 0:
            raise ValueError(f"max_facts must be non-negative: {max_facts}")
        self._by_pred: Dict[str, Set[Atom]] = {}
        self._index: Dict[Tuple[str, int, Constant], Set[Atom]] = {}
        # Composite hash indexes for the batch join path, per predicate.
        self._groups: Dict[str, _GroupIndex] = {}
        self._size = 0
        # Work counter: full-bucket scans spent building group indexes.
        self.group_builds = 0
        self.max_facts = max_facts
        for fact in facts:
            self.add(fact)

    # -- mutation -----------------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        """Insert *fact*; returns True iff it was not already present."""
        if not fact.is_ground():
            raise ValueError(f"facts must be ground: {fact}")
        bucket = self._by_pred.setdefault(fact.pred, set())
        if fact in bucket:
            return False
        if self.max_facts is not None and self._size >= self.max_facts:
            if not bucket:
                del self._by_pred[fact.pred]
            raise StoreCapacityError(
                f"dict backend is full ({self._size} facts, cap "
                f"{self.max_facts}); use backend='sqlite' for "
                f"out-of-core storage"
            )
        bucket.add(fact)
        self._size += 1
        for position, arg in enumerate(fact.args):
            self._index.setdefault((fact.pred, position, arg), set()).add(fact)
        groups = self._groups.get(fact.pred)
        if groups:
            index_into_groups(groups, fact)
        return True

    def remove(self, fact: Atom) -> bool:
        """Delete *fact*; returns True iff it was present."""
        bucket = self._by_pred.get(fact.pred)
        if bucket is None or fact not in bucket:
            return False
        bucket.remove(fact)
        self._size -= 1
        if not bucket:
            del self._by_pred[fact.pred]
        for position, arg in enumerate(fact.args):
            key = (fact.pred, position, arg)
            slot = self._index.get(key)
            if slot is not None:
                slot.discard(fact)
                if not slot:
                    del self._index[key]
        groups = self._groups.get(fact.pred)
        if groups:
            drop_from_groups(groups, fact)
        return True

    def clear(self) -> None:
        self._by_pred.clear()
        self._index.clear()
        self._groups.clear()
        self._size = 0

    # -- queries ------------------------------------------------------------------

    def contains(self, fact: Atom) -> bool:
        bucket = self._by_pred.get(fact.pred)
        return bucket is not None and fact in bucket

    __contains__ = contains

    def facts(self, pred: str) -> frozenset:
        """All stored facts of predicate *pred* (frozen snapshot)."""
        return frozenset(self._by_pred.get(pred, ()))

    def match(self, pattern: Atom) -> Iterator[Atom]:
        """All stored facts matching *pattern* (which may contain
        variables, including repeated ones)."""
        candidates = self._candidates(pattern)
        if candidates is None:
            return
        has_vars = not pattern.is_ground()
        for fact in candidates:
            if not has_vars:
                if fact == pattern:
                    yield fact
                continue
            if match(pattern, fact) is not None:
                yield fact

    def match_substitutions(self, pattern: Atom) -> Iterator[Substitution]:
        """Answer substitutions for *pattern* against the store."""
        candidates = self._candidates(pattern)
        if candidates is None:
            return
        for fact in candidates:
            subst = match(pattern, fact)
            if subst is not None:
                yield subst

    def bucket(
        self,
        pred: str,
        positions: Tuple[int, ...],
        key: Tuple[Constant, ...],
    ) -> Iterable[Atom]:
        """All facts of *pred* whose arguments at *positions* equal
        *key* — one hash probe against the composite group index. The
        index for a (pred, positions) pair is built on first use (one
        scan of the predicate's facts, counted in :attr:`group_builds`)
        and maintained incrementally afterwards.

        The result may be a *live* internal set (that's the zero-copy
        point of the probe): treat it as read-only, and materialize it
        before mutating the store mid-iteration."""
        if not positions:
            return self._by_pred.get(pred, _EMPTY)
        bucket = self._by_pred.get(pred)
        if not bucket:
            return _EMPTY
        groups = self._groups.setdefault(pred, {})
        index = groups.get(positions)
        if index is None:
            index = groups[positions] = build_group_index(bucket, positions)
            self.group_builds += 1
            _GROUP_BUILDS.inc()

        return index.get(key, _EMPTY)

    def _candidates(self, pattern: Atom) -> Optional[Iterable[Atom]]:
        """Choose the cheapest index entry that covers the pattern."""
        bucket = self._by_pred.get(pattern.pred)
        if not bucket:
            return None
        best: Optional[Set[Atom]] = None
        for position, arg in enumerate(pattern.args):
            if isinstance(arg, Variable):
                continue
            slot = self._index.get((pattern.pred, position, arg))
            if slot is None:
                return None  # a bound position with no entry: no matches
            if best is None or len(slot) < len(best):
                best = slot
        return bucket if best is None else best

    # -- inspection ------------------------------------------------------------------

    def predicates(self) -> frozenset:
        return frozenset(self._by_pred)

    def count(self, pred: str) -> int:
        return len(self._by_pred.get(pred, ()))

    def estimate(self, pattern: Atom) -> int:
        """O(arity) upper bound on the facts matching *pattern*: the
        size of the index slot :meth:`match` would actually scan. This
        is the access-path cost the join planner ranks literals by."""
        candidates = self._candidates(pattern)
        return 0 if candidates is None else len(candidates)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Atom]:
        for bucket in self._by_pred.values():
            yield from bucket

    def copy(self) -> "FactStore":
        clone = FactStore(max_facts=self.max_facts)
        for pred, bucket in self._by_pred.items():
            clone._by_pred[pred] = set(bucket)
        for key, slot in self._index.items():
            clone._index[key] = set(slot)
        clone._size = self._size
        # Composite group indexes are rebuilt lazily on the clone.
        return clone

    def constants(self) -> Set[Constant]:
        """All constants appearing in stored facts — the active domain."""
        out: Set[Constant] = set()
        for bucket in self._by_pred.values():
            for fact in bucket:
                out.update(a for a in fact.args if isinstance(a, Constant))
        return out

    def __repr__(self) -> str:
        return f"FactStore({len(self)} facts, {len(self._by_pred)} predicates)"

"""Bottom-up evaluation: naive and semi-naive, with stratified negation.

``compute_model`` materializes the canonical interpretation of F ∪ R
(Section 2 of the paper): strata are processed lowest first, and within
a stratum rules are iterated semi-naively — each round only joins rule
bodies against the facts newly derived in the previous round, which is
the standard differential optimization.

The module works against a *view* protocol (``match``, ``contains``,
``add``) so the query engine can reuse the same code to materialize a
subprogram into a side store without copying the extensional database.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
)

from repro.datalog.facts import FactStore
from repro.storage.backends.base import StoreBackend
from repro.datalog.columnar import ColumnarRelation
from repro.datalog.joins import (
    DEFAULT_EXEC,
    DEFAULT_JOIN,
    atom_builder,
    join_literals,
    join_literals_rows,
    pattern_variables,
    rows_from_source,
    validate_exec,
    validate_join_algo,
)
from repro.datalog.planner import (
    DEFAULT_PLAN,
    Planner,
    make_planner,
    source_cardinality,
)
from repro.datalog.program import Program, Rule
from repro.logic.formulas import Atom
from repro.logic.substitution import Substitution
from repro.obs.trace import current_trace

if TYPE_CHECKING:
    from repro.config import EngineConfig


class EvaluationView(Protocol):
    """What a store must provide to host bottom-up evaluation."""

    def match(self, pattern: Atom) -> Iterator[Atom]: ...

    def contains(self, fact: Atom) -> bool: ...

    def add(self, fact: Atom) -> bool: ...


def _derive_rule(
    rule: Rule,
    probe,
    holds,
    planner,
    derived: List[Atom],
    literals=None,
    initial=None,
    join_algo: Optional[str] = None,
) -> None:
    """Batch-solve one rule body and append its head instances to
    *derived* — heads are built straight from the value rows (column
    indexing, no per-tuple substitutions): the set-at-a-time fast path
    of semi-naive evaluation.

    *literals*/*initial* override the body and seed the pipeline from a
    named row relation (the delta occurrence's rows), so a semi-naive
    round flows the delta — a supplementary predicate's new tuples, or
    any derived predicate's — straight into its consumer joins instead
    of re-probing it through the store."""
    build = None
    for schema, rows in join_literals_rows(
        rule.body if literals is None else literals,
        Substitution.empty(),
        probe,
        holds,
        planner,
        initial=initial,
        join_algo=join_algo,
    ):
        if build is None:
            build = atom_builder(rule.head, schema)
        derived.extend(map(build, rows))


def _match_substitutions(view: EvaluationView, pattern: Atom):
    from repro.logic.unify import match

    for fact in view.match(pattern):
        subst = match(pattern, fact)
        if subst is not None:
            yield subst


def _derive_round(
    view: EvaluationView,
    rules: Sequence[Rule],
    stratum_preds: Set[str],
    delta: FactStore,
    planner: Optional[Planner] = None,
    exec_mode: str = DEFAULT_EXEC,
    join_algo: str = DEFAULT_JOIN,
) -> List[Atom]:
    """One semi-naive round: join each rule with at least one body
    occurrence restricted to *delta*. Returns derived facts (possibly
    already known)."""
    derived: List[Atom] = []
    view_estimate = source_cardinality(view)
    for rule in rules:
        delta_positions = [
            i
            for i, literal in enumerate(rule.body)
            if literal.positive and literal.atom.pred in stratum_preds
        ]
        for delta_position in delta_positions:
            if exec_mode == "batch":
                # Seed the pipeline from the delta occurrence's rows —
                # the delta relation (a supplementary predicate's new
                # tuples, or any derived predicate's) becomes the
                # join's initial relation, and the remaining literals
                # probe the full view as usual.
                delta_pattern = rule.body[delta_position].atom
                delta_rows = rows_from_source(delta, delta_pattern)
                if not delta_rows:
                    continue
                _derive_rule(
                    rule,
                    lambda index, pattern: rows_from_source(view, pattern),
                    view.contains,
                    planner,
                    derived,
                    literals=rule.body_without(delta_position),
                    # The delta relation enters columnar: the wcoj path
                    # consumes the columns directly, the hash path
                    # re-rows them once at the seam.
                    initial=ColumnarRelation.from_rows(
                        pattern_variables(delta_pattern), delta_rows
                    ),
                    join_algo=join_algo,
                )
            else:

                def matcher(index: int, pattern: Atom):
                    if index == delta_position:
                        for fact in delta.match(pattern):
                            from repro.logic.unify import match as _m

                            subst = _m(pattern, fact)
                            if subst is not None:
                                yield subst
                    else:
                        yield from _match_substitutions(view, pattern)

                # The delta-restricted occurrence matches against the
                # round's new facts, not the predicate's full extent —
                # tell the planner so it schedules the small side first.
                round_planner = planner
                if planner is not None:

                    def estimator(
                        index: int, atom: Atom, _dpos=delta_position
                    ) -> int:
                        if index == _dpos:
                            return delta.estimate(atom)
                        return view_estimate(index, atom)

                    round_planner = planner.with_cardinality(estimator)

                for binding in join_literals(
                    rule.body,
                    Substitution.empty(),
                    matcher,
                    view.contains,
                    round_planner,
                ):
                    derived.append(rule.head.substitute(binding))
    return derived


def evaluate_stratum(
    view: EvaluationView,
    rules: Sequence[Rule],
    stratum_preds: Set[str],
    planner: Optional[Planner] = None,
    exec_mode: str = DEFAULT_EXEC,
    join_algo: str = DEFAULT_JOIN,
) -> None:
    """Saturate one stratum's rules against *view* (semi-naive)."""
    validate_exec(exec_mode)
    validate_join_algo(join_algo)
    # Round zero: full join of every rule.
    delta = FactStore()
    initial: List[Atom] = []
    for rule in rules:

        def matcher(index: int, pattern: Atom):
            yield from _match_substitutions(view, pattern)

        def probe(index: int, pattern: Atom):
            return rows_from_source(view, pattern)

        if exec_mode == "batch":
            _derive_rule(
                rule, probe, view.contains, planner, initial,
                join_algo=join_algo,
            )
        else:
            for binding in join_literals(
                rule.body,
                Substitution.empty(),
                matcher,
                view.contains,
                planner,
            ):
                initial.append(rule.head.substitute(binding))
    for fact in initial:
        if view.add(fact):
            delta.add(fact)
    trace = current_trace()
    if trace is not None:
        trace.record_round(len(delta))
    # Differential rounds.
    while len(delta):
        derived = _derive_round(
            view, rules, stratum_preds, delta, planner, exec_mode,
            join_algo,
        )
        delta = FactStore()
        for fact in derived:
            if view.add(fact):
                delta.add(fact)
        if trace is not None:
            trace.record_round(len(delta))


def compute_model(
    edb: Iterable[Atom],
    program: Program,
    plan: Optional[str] = None,
    exec_mode: Optional[str] = None,
    join_algo: Optional[str] = None,
    *,
    config: Optional["EngineConfig"] = None,
) -> FactStore:
    """Materialize the canonical model of ``edb ∪ program``.

    Returns a fresh store — same backend as *edb* when the EDB is a
    :class:`~repro.storage.backends.base.StoreBackend` (so a sqlite
    EDB yields a sqlite model) — containing the extensional facts
    plus everything derivable, under the stratified semantics. *plan*
    selects the join order (see :mod:`repro.datalog.planner`);
    *exec_mode* the execution model and *join_algo* the batch path's
    join algorithm (see :mod:`repro.datalog.joins`); a *config*
    supplies them at once (an explicit loose knob still overrides it).
    """
    # Imported lazily: repro.config sits above the datalog kernel in
    # the import order (it imports this package's siblings).
    from repro.config import resolve_config

    resolved = resolve_config(
        config, plan=plan, exec_mode=exec_mode, join_algo=join_algo,
        warn=False,
    )
    plan, exec_mode = resolved.plan, resolved.exec_mode
    join_algo = resolved.join_algo
    validate_exec(exec_mode)
    validate_join_algo(join_algo)
    model = edb.copy() if isinstance(edb, StoreBackend) else FactStore(edb)
    planner = make_planner(plan, model)
    for _, rules in program.rules_by_stratum():
        stratum_preds = {rule.head.pred for rule in rules}
        evaluate_stratum(
            model, rules, stratum_preds, planner, exec_mode, join_algo
        )
    return model


def compute_model_naive(
    edb: Iterable[Atom], program: Program, plan: str = "source"
) -> FactStore:
    """Naive (non-differential) evaluation — the reference oracle the
    tests compare semi-naive against. Defaults to the unplanned join
    order so it stays a faithful oracle end to end."""
    model = edb.copy() if isinstance(edb, StoreBackend) else FactStore(edb)
    planner = make_planner(plan, model)
    for _, rules in program.rules_by_stratum():
        changed = True
        while changed:
            changed = False
            derived: List[Atom] = []
            for rule in rules:

                def matcher(index: int, pattern: Atom):
                    yield from _match_substitutions(model, pattern)

                for binding in join_literals(
                    rule.body,
                    Substitution.empty(),
                    matcher,
                    model.contains,
                    planner,
                ):
                    derived.append(rule.head.substitute(binding))
            for fact in derived:
                if model.add(fact):
                    changed = True
    return model

"""The deductive database façade: facts, rules and constraints together.

A :class:`DeductiveDatabase` is the paper's D = (F, R, I). It owns the
extensional store, the stratified program, the normalized constraint
set, and hands out query engines over either the current state or a
simulated updated state (Definition 1 / the overlay construction).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.config import EngineConfig, resolve_config
from repro.datalog.facts import FactStore
from repro.datalog.overlay import OverlayFactStore
from repro.datalog.program import Program, Rule
from repro.datalog.query import QueryEngine
from repro.logic.formulas import Atom, Formula, Literal
from repro.logic.normalize import normalize_constraint
from repro.logic.parser import (
    parse_atom,
    parse_formula,
    parse_literal,
    parse_program,
    parse_rule,
)
from repro.logic.safety import check_constraint_safety, constraint_predicates
from repro.obs.trace import QueryTrace, trace_query
from repro.storage.backends import StoreBackend, make_store
from repro.storage.result_cache import ResultCache


class Constraint:
    """A named, normalized integrity constraint."""

    __slots__ = ("id", "formula", "source")

    def __init__(self, id: str, formula: Formula, source: Optional[str] = None):
        self.id = id
        self.formula = formula
        self.source = source

    def predicates(self) -> frozenset:
        return frozenset(constraint_predicates(self.formula))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constraint)
            and self.id == other.id
            and self.formula == other.formula
        )

    def __hash__(self) -> int:
        return hash((self.id, self.formula))

    def __repr__(self) -> str:
        return f"Constraint({self.id}: {self.formula})"


class DeductiveDatabase:
    """Facts F, rules R and integrity constraints I (Section 2)."""

    def __init__(
        self,
        facts: Optional[Union[StoreBackend, OverlayFactStore]] = None,
        program: Optional[Program] = None,
        constraints: Sequence[Constraint] = (),
    ):
        self.facts = facts if facts is not None else FactStore()
        self.program = program if program is not None else Program()
        self.constraints: List[Constraint] = list(constraints)
        self._constraint_counter = itertools.count(len(self.constraints) + 1)
        self._version = 0
        self._engines: Dict[Tuple, QueryEngine] = {}
        self._engine_version = -1
        # Library-level derived-result caches, one per cache-enabled
        # config. Without a transaction manager there are no DRed
        # change sets to invalidate from, so _bump() clears coarsely;
        # the service layer passes its own precisely-invalidated cache
        # through engine(result_cache=...) instead.
        self._caches: Dict[Tuple, ResultCache] = {}

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_source(
        cls,
        text: str,
        *,
        backend: Optional[str] = None,
        config: Optional[EngineConfig] = None,
    ) -> "DeductiveDatabase":
        """Build a database from surface syntax (facts, rules and
        constraints mixed; see :mod:`repro.logic.parser`). The fact
        store's *backend* defaults to ``REPRO_BACKEND`` (or the one
        named by *config*)."""
        if backend is None and config is not None:
            backend = config.backend
        parsed = parse_program(text)
        db = cls(
            facts=make_store(backend, parsed.facts),
            program=Program.from_parsed(parsed.rules),
        )
        for formula in parsed.constraints:
            db.add_constraint(formula)
        return db

    def copy(self) -> "DeductiveDatabase":
        """An independent copy (facts deep-copied; program and
        constraints are immutable and shared)."""
        if isinstance(self.facts, OverlayFactStore):
            facts = self.facts.copy()
        else:
            facts = self.facts.copy()
        return DeductiveDatabase(facts, self.program, list(self.constraints))

    # -- mutation ----------------------------------------------------------------------

    def add_fact(self, fact: Union[str, Atom]) -> bool:
        atom = parse_atom(fact) if isinstance(fact, str) else fact
        self._bump()
        return self.facts.add(atom)

    def remove_fact(self, fact: Union[str, Atom]) -> bool:
        atom = parse_atom(fact) if isinstance(fact, str) else fact
        self._bump()
        return self.facts.remove(atom)

    def add_rule(self, rule: Union[str, Rule]) -> None:
        if isinstance(rule, str):
            rule = Rule.from_parsed(parse_rule(rule))
        self.program = self.program.extended([rule])
        self._bump()

    def add_constraint(
        self,
        constraint: Union[str, Formula],
        id: Optional[str] = None,
    ) -> Constraint:
        """Normalize, safety-check and register an integrity constraint.

        Accepts surface syntax or a formula; returns the stored
        :class:`Constraint` (with its assigned identifier).
        """
        source = constraint if isinstance(constraint, str) else None
        formula = (
            parse_formula(constraint) if isinstance(constraint, str) else constraint
        )
        normalized = normalize_constraint(formula)
        check_constraint_safety(normalized)
        if id is None:
            id = f"c{next(self._constraint_counter)}"
        stored = Constraint(id, normalized, source)
        self.constraints.append(stored)
        self._bump()
        return stored

    def apply_update(self, update: Union[str, Literal]) -> bool:
        """Apply a single-fact update per Definition 1: a positive
        literal inserts (no-op if present), a negative literal deletes
        (no-op if absent). Returns True iff the state changed."""
        literal = parse_literal(update) if isinstance(update, str) else update
        if not literal.atom.is_ground():
            raise ValueError(f"updates must be ground: {literal}")
        if isinstance(self.facts, OverlayFactStore):
            raise TypeError("cannot mutate a simulated (overlay) database")
        self._bump()
        if literal.positive:
            return self.facts.add(literal.atom)
        return self.facts.remove(literal.atom)

    def _bump(self) -> None:
        self._version += 1
        # Coarse invalidation for the library-level caches: without a
        # maintained model there is no change set to be precise with.
        for cache in self._caches.values():
            cache.clear()

    # -- simulated updates ------------------------------------------------------------------

    def updated(
        self, updates: Union[str, Literal, Sequence[Literal]]
    ) -> "DeductiveDatabase":
        """The simulated updated database U(D) — shares rules and
        constraints, reads facts through an overlay. Definition 1."""
        if isinstance(updates, str):
            updates = [parse_literal(updates)]
        elif isinstance(updates, Literal):
            updates = [updates]
        base = (
            self.facts.copy()
            if isinstance(self.facts, OverlayFactStore)
            else self.facts
        )
        overlay = OverlayFactStore.from_updates(base, updates)
        return DeductiveDatabase(overlay, self.program, list(self.constraints))

    # -- querying ----------------------------------------------------------------------------

    def engine(
        self,
        strategy: Union[EngineConfig, str, None] = None,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        supplementary: Optional[bool] = None,
        join_algo: Optional[str] = None,
        *,
        config: Optional[EngineConfig] = None,
        result_cache: Optional[ResultCache] = None,
    ) -> QueryEngine:
        """A query engine over the current state, configured by an
        :class:`EngineConfig` (pass it as *config* or in the first
        position; the loose keyword knobs survive as a deprecation
        shim). Engines are cached per config and invalidated whenever
        the database mutates.

        ``config.strategy`` picks where intensional facts come from —
        ``"lazy"`` (per-closure materialization, the default),
        ``"topdown"`` (tabled resolution), ``"model"`` (full canonical
        model up front) or ``"magic"`` (demand-driven bottom-up via the
        magic-sets rewrite; see :mod:`repro.datalog.magic`).
        ``config.plan`` picks the join order for rule bodies and
        restrictions — ``"greedy"`` (selectivity-driven, the default)
        or ``"source"`` (rule-source order, the unplanned oracle).
        ``config.exec_mode`` picks the join execution model —
        ``"batch"`` (set-at-a-time hash joins, the default) or
        ``"tuple"`` (one binding at a time, the oracle; see
        :mod:`repro.datalog.joins`). ``config.join_algo`` picks the
        batch path's join algorithm — ``"auto"`` (leapfrog triejoin on
        cyclic eligible bodies), ``"wcoj"`` or ``"hash"`` (see
        :mod:`repro.datalog.wcoj`). ``config.supplementary`` (default
        on) makes the magic rewrite share rule prefixes through
        supplementary predicates. ``config.cache`` attaches a derived-
        result cache; *result_cache* overrides it with a caller-owned
        instance (the transaction manager's, invalidated precisely
        from DRed change sets — without one, the database clears its
        own caches coarsely on every mutation)."""
        resolved = resolve_config(
            config if config is not None else strategy,
            plan=plan,
            exec_mode=exec_mode,
            supplementary=supplementary,
            join_algo=join_algo,
        )
        if self._engine_version != self._version:
            self._engines.clear()
            self._engine_version = self._version
        key = (resolved, id(result_cache) if result_cache is not None else None)
        engine = self._engines.get(key)
        if engine is None:
            if result_cache is None and resolved.cache:
                cache_key = resolved.key()
                result_cache = self._caches.get(cache_key)
                if result_cache is None:
                    result_cache = ResultCache(resolved.cache_size)
                    self._caches[cache_key] = result_cache
            engine = QueryEngine(
                self.facts,
                self.program,
                config=resolved,
                result_cache=result_cache,
            )
            self._engines[key] = engine
        return engine

    def holds(self, atom: Union[str, Atom]) -> bool:
        """Truth of a ground atom in the canonical model."""
        if isinstance(atom, str):
            atom = parse_atom(atom)
        return self.engine().holds(atom)

    def query(self, formula: Union[str, Formula]) -> bool:
        """Evaluate a closed (restricted-quantification) formula."""
        if isinstance(formula, str):
            formula = normalize_constraint(parse_formula(formula))
        return self.engine().evaluate(formula)

    def explain(
        self,
        formula: Union[str, Formula],
        *,
        config: Optional[EngineConfig] = None,
    ) -> QueryTrace:
        """Evaluate *formula* under an active
        :class:`repro.obs.QueryTrace` and return the completed trace
        (``trace.result`` holds the verdict, :meth:`QueryTrace.render`
        the EXPLAIN tree). A fresh engine run records its plans,
        rewrites, rounds and cache consults; nothing about the
        evaluation itself changes."""
        if isinstance(formula, str):
            formula = normalize_constraint(parse_formula(formula))
        engine = self.engine(config=config)
        with trace_query(str(formula), engine.config) as trace:
            value = engine.evaluate(formula)
            trace.result = str(value)
        return trace

    def canonical_model(
        self,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        *,
        config: Optional[EngineConfig] = None,
    ) -> StoreBackend:
        """Materialize the full canonical model (EDB plus everything
        derivable). The model store inherits the EDB's backend."""
        from repro.datalog.bottomup import compute_model

        resolved = resolve_config(config, plan=plan, exec_mode=exec_mode)
        base = (
            self.facts.copy()
            if isinstance(self.facts, OverlayFactStore)
            else self.facts
        )
        return compute_model(base, self.program, config=resolved)

    # -- constraint sweep (the naive baseline) ----------------------------------------------------

    def violated_constraints(
        self,
        strategy: Union[EngineConfig, str, None] = None,
        plan: Optional[str] = None,
        *,
        config: Optional[EngineConfig] = None,
    ) -> List[Constraint]:
        """Evaluate *every* constraint from scratch — the full check the
        paper's methods avoid. Kept as the ground-truth baseline."""
        resolved = resolve_config(
            config if config is not None else strategy,
            base=EngineConfig(strategy="model"),
            plan=plan,
            warn=False,
        )
        engine = self.engine(config=resolved)
        return [
            c for c in self.constraints if not engine.evaluate(c.formula)
        ]

    def all_constraints_satisfied(
        self,
        strategy: Union[EngineConfig, str, None] = None,
        plan: Optional[str] = None,
        *,
        config: Optional[EngineConfig] = None,
    ) -> bool:
        return not self.violated_constraints(strategy, plan, config=config)

    def constraint_by_id(self, id: str) -> Constraint:
        for constraint in self.constraints:
            if constraint.id == id:
                return constraint
        raise KeyError(f"no constraint with id {id!r}")

    # -- inspection ---------------------------------------------------------------------------------

    def analyze(self):
        """Run the static analyzer over this database and return an
        :class:`repro.analysis.AnalysisReport` (warning/info tiers
        plus fact-level schema checks; safety and stratification were
        already enforced at construction)."""
        from repro.analysis import analyze

        return analyze(self)

    def to_source(self) -> str:
        """The database as re-parseable surface syntax — the inverse of
        :meth:`from_source` (modulo constraint normalization)."""
        from repro.logic.unparse import unparse_database

        return unparse_database(self)

    def __repr__(self) -> str:
        return (
            f"DeductiveDatabase({len(self.facts)} facts, "
            f"{len(self.program)} rules, {len(self.constraints)} constraints)"
        )

"""The deductive database façade: facts, rules and constraints together.

A :class:`DeductiveDatabase` is the paper's D = (F, R, I). It owns the
extensional store, the stratified program, the normalized constraint
set, and hands out query engines over either the current state or a
simulated updated state (Definition 1 / the overlay construction).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.datalog.facts import FactStore
from repro.datalog.joins import DEFAULT_EXEC
from repro.datalog.overlay import OverlayFactStore
from repro.datalog.planner import DEFAULT_PLAN
from repro.datalog.program import Program, Rule
from repro.datalog.query import QueryEngine
from repro.logic.formulas import Atom, Formula, Literal
from repro.logic.normalize import normalize_constraint
from repro.logic.parser import (
    parse_atom,
    parse_formula,
    parse_literal,
    parse_program,
    parse_rule,
)
from repro.logic.safety import check_constraint_safety, constraint_predicates


class Constraint:
    """A named, normalized integrity constraint."""

    __slots__ = ("id", "formula", "source")

    def __init__(self, id: str, formula: Formula, source: Optional[str] = None):
        self.id = id
        self.formula = formula
        self.source = source

    def predicates(self) -> frozenset:
        return frozenset(constraint_predicates(self.formula))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Constraint)
            and self.id == other.id
            and self.formula == other.formula
        )

    def __hash__(self) -> int:
        return hash((self.id, self.formula))

    def __repr__(self) -> str:
        return f"Constraint({self.id}: {self.formula})"


class DeductiveDatabase:
    """Facts F, rules R and integrity constraints I (Section 2)."""

    def __init__(
        self,
        facts: Optional[Union[FactStore, OverlayFactStore]] = None,
        program: Optional[Program] = None,
        constraints: Sequence[Constraint] = (),
    ):
        self.facts = facts if facts is not None else FactStore()
        self.program = program if program is not None else Program()
        self.constraints: List[Constraint] = list(constraints)
        self._constraint_counter = itertools.count(len(self.constraints) + 1)
        self._version = 0
        self._engines: Dict[Tuple[str, str, str, bool], QueryEngine] = {}
        self._engine_version = -1

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_source(cls, text: str) -> "DeductiveDatabase":
        """Build a database from surface syntax (facts, rules and
        constraints mixed; see :mod:`repro.logic.parser`)."""
        parsed = parse_program(text)
        db = cls(
            facts=FactStore(parsed.facts),
            program=Program.from_parsed(parsed.rules),
        )
        for formula in parsed.constraints:
            db.add_constraint(formula)
        return db

    def copy(self) -> "DeductiveDatabase":
        """An independent copy (facts deep-copied; program and
        constraints are immutable and shared)."""
        if isinstance(self.facts, OverlayFactStore):
            facts = self.facts.copy()
        else:
            facts = self.facts.copy()
        return DeductiveDatabase(facts, self.program, list(self.constraints))

    # -- mutation ----------------------------------------------------------------------

    def add_fact(self, fact: Union[str, Atom]) -> bool:
        atom = parse_atom(fact) if isinstance(fact, str) else fact
        self._bump()
        return self.facts.add(atom)

    def remove_fact(self, fact: Union[str, Atom]) -> bool:
        atom = parse_atom(fact) if isinstance(fact, str) else fact
        self._bump()
        return self.facts.remove(atom)

    def add_rule(self, rule: Union[str, Rule]) -> None:
        if isinstance(rule, str):
            rule = Rule.from_parsed(parse_rule(rule))
        self.program = self.program.extended([rule])
        self._bump()

    def add_constraint(
        self,
        constraint: Union[str, Formula],
        id: Optional[str] = None,
    ) -> Constraint:
        """Normalize, safety-check and register an integrity constraint.

        Accepts surface syntax or a formula; returns the stored
        :class:`Constraint` (with its assigned identifier).
        """
        source = constraint if isinstance(constraint, str) else None
        formula = (
            parse_formula(constraint) if isinstance(constraint, str) else constraint
        )
        normalized = normalize_constraint(formula)
        check_constraint_safety(normalized)
        if id is None:
            id = f"c{next(self._constraint_counter)}"
        stored = Constraint(id, normalized, source)
        self.constraints.append(stored)
        self._bump()
        return stored

    def apply_update(self, update: Union[str, Literal]) -> bool:
        """Apply a single-fact update per Definition 1: a positive
        literal inserts (no-op if present), a negative literal deletes
        (no-op if absent). Returns True iff the state changed."""
        literal = parse_literal(update) if isinstance(update, str) else update
        if not literal.atom.is_ground():
            raise ValueError(f"updates must be ground: {literal}")
        if isinstance(self.facts, OverlayFactStore):
            raise TypeError("cannot mutate a simulated (overlay) database")
        self._bump()
        if literal.positive:
            return self.facts.add(literal.atom)
        return self.facts.remove(literal.atom)

    def _bump(self) -> None:
        self._version += 1

    # -- simulated updates ------------------------------------------------------------------

    def updated(
        self, updates: Union[str, Literal, Sequence[Literal]]
    ) -> "DeductiveDatabase":
        """The simulated updated database U(D) — shares rules and
        constraints, reads facts through an overlay. Definition 1."""
        if isinstance(updates, str):
            updates = [parse_literal(updates)]
        elif isinstance(updates, Literal):
            updates = [updates]
        base = (
            self.facts.copy()
            if isinstance(self.facts, OverlayFactStore)
            else self.facts
        )
        overlay = OverlayFactStore.from_updates(base, updates)
        return DeductiveDatabase(overlay, self.program, list(self.constraints))

    # -- querying ----------------------------------------------------------------------------

    def engine(
        self,
        strategy: str = "lazy",
        plan: str = DEFAULT_PLAN,
        exec_mode: str = DEFAULT_EXEC,
        supplementary: bool = True,
    ) -> QueryEngine:
        """A query engine over the current state. Engines are cached per
        (strategy, plan, exec_mode, supplementary) and invalidated
        whenever the database mutates. *strategy* picks where
        intensional facts come
        from — ``"lazy"`` (per-closure materialization, the default),
        ``"topdown"`` (tabled resolution), ``"model"`` (full canonical
        model up front) or ``"magic"`` (demand-driven bottom-up via the
        magic-sets rewrite; see :mod:`repro.datalog.magic`). *plan*
        picks the join order for rule bodies and restrictions —
        ``"greedy"`` (selectivity-driven, the default) or ``"source"``
        (rule-source order, the unplanned oracle). *exec_mode* picks the
        join execution model — ``"batch"`` (set-at-a-time hash joins,
        the default) or ``"tuple"`` (one binding at a time, the
        oracle; see :mod:`repro.datalog.joins`). *supplementary*
        (default on) makes the magic rewrite share rule prefixes
        through supplementary predicates; ``False`` keeps the classic
        rewrite as the differential oracle (inert for the other
        strategies)."""
        if self._engine_version != self._version:
            self._engines.clear()
            self._engine_version = self._version
        key = (strategy, plan, exec_mode, supplementary)
        engine = self._engines.get(key)
        if engine is None:
            engine = QueryEngine(
                self.facts, self.program, strategy, plan, exec_mode,
                supplementary,
            )
            self._engines[key] = engine
        return engine

    def holds(self, atom: Union[str, Atom]) -> bool:
        """Truth of a ground atom in the canonical model."""
        if isinstance(atom, str):
            atom = parse_atom(atom)
        return self.engine().holds(atom)

    def query(self, formula: Union[str, Formula]) -> bool:
        """Evaluate a closed (restricted-quantification) formula."""
        if isinstance(formula, str):
            formula = normalize_constraint(parse_formula(formula))
        return self.engine().evaluate(formula)

    def canonical_model(
        self, plan: str = DEFAULT_PLAN, exec_mode: str = DEFAULT_EXEC
    ) -> FactStore:
        """Materialize the full canonical model (EDB plus everything
        derivable)."""
        from repro.datalog.bottomup import compute_model

        base = (
            self.facts.copy()
            if isinstance(self.facts, OverlayFactStore)
            else self.facts
        )
        return compute_model(base, self.program, plan, exec_mode)

    # -- constraint sweep (the naive baseline) ----------------------------------------------------

    def violated_constraints(
        self, strategy: str = "model", plan: str = DEFAULT_PLAN
    ) -> List[Constraint]:
        """Evaluate *every* constraint from scratch — the full check the
        paper's methods avoid. Kept as the ground-truth baseline."""
        engine = self.engine(strategy, plan)
        return [
            c for c in self.constraints if not engine.evaluate(c.formula)
        ]

    def all_constraints_satisfied(
        self, strategy: str = "model", plan: str = DEFAULT_PLAN
    ) -> bool:
        return not self.violated_constraints(strategy, plan)

    def constraint_by_id(self, id: str) -> Constraint:
        for constraint in self.constraints:
            if constraint.id == id:
                return constraint
        raise KeyError(f"no constraint with id {id!r}")

    # -- inspection ---------------------------------------------------------------------------------

    def to_source(self) -> str:
        """The database as re-parseable surface syntax — the inverse of
        :meth:`from_source` (modulo constraint normalization)."""
        from repro.logic.unparse import unparse_database

        return unparse_database(self)

    def __repr__(self) -> str:
        return (
            f"DeductiveDatabase({len(self.facts)} facts, "
            f"{len(self.program)} rules, {len(self.constraints)} constraints)"
        )

"""Overlay fact store: the updated state U(D), simulated.

The paper's ``new`` meta-interpreter (Section 3.3.2) answers queries
*as if* the update had been performed, without touching the stored
facts. An :class:`OverlayFactStore` is the natural Python realization:
it wraps a base store together with an added-set and a removed-set and
exposes the same read interface, so every evaluator in this library
works over the simulated state unchanged — including recursive rules,
which is exactly the property the paper claims for its meta-interpreter
approach.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Set

from repro.datalog.facts import FactStore
from repro.logic.formulas import Atom, Literal
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant
from repro.logic.unify import match


class OverlayFactStore:
    """A read-only view of ``(base − removed) ∪ added``."""

    __slots__ = ("base", "added", "removed", "_delta_counts", "_added_groups")

    def __init__(
        self,
        base: FactStore,
        added: Iterable[Atom] = (),
        removed: Iterable[Atom] = (),
    ):
        self.base = base
        self.added: Set[Atom] = set()
        self.removed: Set[Atom] = set()
        for atom in added:
            self._require_ground(atom)
            self.added.add(atom)
        for atom in removed:
            self._require_ground(atom)
            self.removed.add(atom)
            self.added.discard(atom)
        self.added -= self.removed
        # Per-predicate cardinality deltas relative to the base store,
        # precomputed once so estimate() stays O(1) for the join
        # planner. (The diff sets are fixed after construction; the
        # figures drift only if the base mutates underneath the overlay,
        # which is harmless for estimates.)
        self._delta_counts: dict = {}
        for fact in self.added:
            if not self.base.contains(fact):
                self._delta_counts[fact.pred] = (
                    self._delta_counts.get(fact.pred, 0) + 1
                )
        for fact in self.removed:
            if self.base.contains(fact):
                self._delta_counts[fact.pred] = (
                    self._delta_counts.get(fact.pred, 0) - 1
                )
        # Composite group indexes over the (fixed) added set, built
        # lazily per (predicate, positions) by bucket(); the diff sets
        # never change after construction, so no maintenance is needed.
        self._added_groups: dict = {}

    @staticmethod
    def _require_ground(atom: Atom) -> None:
        if not atom.is_ground():
            raise ValueError(f"overlay updates must be ground: {atom}")

    @classmethod
    def from_update(cls, base: FactStore, update: Literal) -> "OverlayFactStore":
        """The single-fact update view of Definition 1."""
        if update.positive:
            return cls(base, added=[update.atom])
        return cls(base, removed=[update.atom])

    @classmethod
    def from_updates(
        cls, base: FactStore, updates: Iterable[Literal]
    ) -> "OverlayFactStore":
        """A transaction view: later updates win over earlier ones."""
        added: Set[Atom] = set()
        removed: Set[Atom] = set()
        for update in updates:
            if update.positive:
                added.add(update.atom)
                removed.discard(update.atom)
            else:
                removed.add(update.atom)
                added.discard(update.atom)
        return cls(base, added=added, removed=removed)

    # -- read interface (mirrors FactStore) ---------------------------------------

    def contains(self, fact: Atom) -> bool:
        if fact in self.removed:
            return False
        if fact in self.added:
            return True
        return self.base.contains(fact)

    __contains__ = contains

    def facts(self, pred: str) -> frozenset:
        out = {f for f in self.base.facts(pred) if f not in self.removed}
        out.update(f for f in self.added if f.pred == pred)
        return frozenset(out)

    def match(self, pattern: Atom) -> Iterator[Atom]:
        for fact in self.base.match(pattern):
            if fact not in self.removed:
                yield fact
        for fact in self.added:
            if fact.pred == pattern.pred and not self.base.contains(fact):
                if match(pattern, fact) is not None:
                    yield fact

    def bucket(self, pred: str, positions, key) -> "list[Atom]":
        """Batched probe mirroring :meth:`FactStore.bucket` over the
        overlay view: the base store's bucket minus the removed set,
        plus the added facts with matching key values (indexed lazily —
        the diff sets are fixed, so one pass per (pred, positions) pair
        suffices for the overlay's lifetime)."""
        removed = self.removed
        base_part = self.base.bucket(pred, positions, key)
        if removed:
            out = [fact for fact in base_part if fact not in removed]
        else:
            out = list(base_part)
        if self.added:
            index = self._added_groups.get((pred, positions))
            if index is None:
                index = {}
                deepest = positions[-1] if positions else -1
                for fact in self.added:
                    if fact.pred != pred or len(fact.args) <= deepest:
                        continue
                    args = fact.args
                    group_key = tuple(args[p] for p in positions)
                    index.setdefault(group_key, []).append(fact)
                self._added_groups[(pred, positions)] = index
            base_contains = self.base.contains
            out.extend(
                fact
                for fact in index.get(key, ())
                if not base_contains(fact)
            )
        return out

    def match_substitutions(self, pattern: Atom) -> Iterator[Substitution]:
        for fact in self.match(pattern):
            subst = match(pattern, fact)
            if subst is not None:
                yield subst

    def predicates(self) -> frozenset:
        preds = set(self.base.predicates())
        preds.update(f.pred for f in self.added)
        return frozenset(preds)

    def count(self, pred: str) -> int:
        # Exact, even if the base store mutates under the overlay;
        # the O(1) _delta_counts snapshot serves estimate() only.
        return len(self.facts(pred))

    def estimate(self, pattern: Atom) -> int:
        """O(arity) match estimate: the base store's index-aware figure
        plus the overlay's *net* cardinality delta as counted at
        construction, clamped at zero — when removals dominate, the
        removed facts still sit inside the base figure, so the estimate
        overshoots rather than undershoots. Base drift is tolerated;
        estimates never affect correctness."""
        extra = self._delta_counts.get(pattern.pred, 0)
        return self.base.estimate(pattern) + max(extra, 0)

    def __len__(self) -> int:
        total = len(self.base)
        total += sum(1 for f in self.added if not self.base.contains(f))
        total -= sum(1 for f in self.removed if self.base.contains(f))
        return total

    def __iter__(self) -> Iterator[Atom]:
        for fact in self.base:
            if fact not in self.removed:
                yield fact
        for fact in self.added:
            if not self.base.contains(fact):
                yield fact

    def copy(self) -> FactStore:
        """Materialize the overlay into a standalone store."""
        return FactStore(self)

    def constants(self) -> Set[Constant]:
        out = self.base.constants()
        for fact in self.added:
            out.update(a for a in fact.args if isinstance(a, Constant))
        return out

    def __repr__(self) -> str:
        return (
            f"OverlayFactStore(+{len(self.added)}, -{len(self.removed)} "
            f"over {self.base!r})"
        )

"""Rules, programs and stratification.

A :class:`Program` is the paper's rule set R. Rules must be
range-restricted (Section 2) and the program must be *stratified* in the
sense of [APT 87] so the canonical interpretation is well defined: no
recursion through negation.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.logic.formulas import Atom, Literal
from repro.logic.parser import ParsedRule
from repro.logic.safety import check_rule_range_restricted
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable


class StratificationError(ValueError):
    """Raised when a program has recursion through negation."""


class Rule:
    """A deduction rule ``head <- body`` with a range-restricted body."""

    __slots__ = ("head", "body", "_hash")

    def __init__(self, head: Atom, body: Iterable[Literal]):
        self.head = head
        self.body = tuple(body)
        if not self.body:
            raise ValueError(
                f"rules must have a non-empty body: {head}. "
                f"State unconditional facts as facts."
            )
        check_rule_range_restricted(head, self.body)
        self._hash = hash((head, self.body))

    @classmethod
    def from_parsed(cls, parsed: ParsedRule) -> "Rule":
        return cls(parsed.head, parsed.body)

    def variables(self) -> Set[Variable]:
        out = set(self.head.variables())
        for literal in self.body:
            out.update(literal.atom.variables())
        return out

    def positive_body(self) -> Tuple[Literal, ...]:
        return tuple(l for l in self.body if l.positive)

    def negative_body(self) -> Tuple[Literal, ...]:
        return tuple(l for l in self.body if not l.positive)

    def body_without(self, index: int) -> Tuple[Literal, ...]:
        """The body with the literal at *index* removed — the ``B\\L`` of
        Definitions 4 and 5."""
        return self.body[:index] + self.body[index + 1:]

    def substitute(self, subst: Substitution) -> "Rule":
        return Rule(
            self.head.substitute(subst),
            tuple(l.substitute(subst) for l in self.body),
        )

    def rename_apart(self, avoid: Iterable[Variable]) -> "Rule":
        """A variant of the rule sharing no variables with *avoid*."""
        avoid_set = set(avoid)
        clashes = {v for v in self.variables() if v in avoid_set}
        if not clashes:
            return self
        from repro.logic.terms import fresh_variable

        subst = Substitution({v: fresh_variable(v.name) for v in clashes})
        return self.substitute(subst)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rule)
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Rule({self!s})"

    def __str__(self) -> str:
        return f"{self.head} :- {', '.join(str(l) for l in self.body)}"


class Program:
    """An immutable collection of rules with stratification metadata."""

    __slots__ = (
        "rules",
        "_rules_by_head",
        "_strata",
        "_stratum_of",
        "_recursive_preds",
    )

    def __init__(self, rules: Iterable[Rule] = ()):
        self.rules: Tuple[Rule, ...] = tuple(rules)
        self._rules_by_head: Dict[str, List[Rule]] = {}
        for rule in self.rules:
            self._rules_by_head.setdefault(rule.head.pred, []).append(rule)
        self._stratum_of = self._compute_strata()
        max_stratum = max(self._stratum_of.values(), default=0)
        strata: List[List[str]] = [[] for _ in range(max_stratum + 1)]
        for pred, stratum in sorted(self._stratum_of.items()):
            strata[stratum].append(pred)
        self._strata = tuple(tuple(s) for s in strata if s)
        self._recursive_preds = self._compute_recursive()

    # -- construction ----------------------------------------------------------------

    @classmethod
    def from_parsed(cls, parsed_rules: Iterable[ParsedRule]) -> "Program":
        return cls(Rule.from_parsed(p) for p in parsed_rules)

    def extended(self, extra_rules: Iterable[Rule]) -> "Program":
        """A new program with *extra_rules* appended (re-stratified)."""
        return Program(self.rules + tuple(extra_rules))

    # -- lookups ----------------------------------------------------------------------

    def rules_for(self, pred: str) -> Tuple[Rule, ...]:
        return tuple(self._rules_by_head.get(pred, ()))

    @property
    def idb_predicates(self) -> FrozenSet[str]:
        """Predicates defined by at least one rule."""
        return frozenset(self._rules_by_head)

    def is_idb(self, pred: str) -> bool:
        return pred in self._rules_by_head

    def body_predicates(self) -> FrozenSet[str]:
        out: Set[str] = set()
        for rule in self.rules:
            out.update(l.atom.pred for l in rule.body)
        return frozenset(out)

    def all_predicates(self) -> FrozenSet[str]:
        return self.idb_predicates | self.body_predicates()

    # -- stratification ------------------------------------------------------------------

    def _compute_strata(self) -> Dict[str, int]:
        """Assign a stratum to every predicate.

        Standard fixpoint computation: stratum(h) ≥ stratum(b) for a
        positive body literal b, strictly greater for a negative one.
        Divergence beyond the predicate count signals recursion through
        negation.
        """
        preds = set(self._rules_by_head)
        for rule in self.rules:
            preds.update(l.atom.pred for l in rule.body)
        stratum = {p: 0 for p in preds}
        limit = len(preds) + 1
        for _ in range(limit * limit + 1):
            changed = False
            for rule in self.rules:
                head_pred = rule.head.pred
                for literal in rule.body:
                    body_pred = literal.atom.pred
                    required = stratum[body_pred] + (0 if literal.positive else 1)
                    if stratum[head_pred] < required:
                        stratum[head_pred] = required
                        changed = True
                        if stratum[head_pred] > limit:
                            raise StratificationError(
                                self._stratification_failure(head_pred)
                            )
            if not changed:
                return stratum
        raise StratificationError(self._stratification_failure(None))

    def _stratification_failure(self, pred: Optional[str]) -> str:
        """The error message for an unstratifiable program, naming the
        negative-recursion predicate cycle when the analyzer's graph
        pass can find one (imported lazily: repro.analysis.graph is a
        leaf over the logic layer, so no cycle with this module)."""
        from repro.analysis.graph import find_negative_cycle

        cycle = find_negative_cycle((r.head, r.body) for r in self.rules)
        if cycle is not None:
            path = " -> ".join(cycle)
            return (
                f"program is not stratified: recursion through negation "
                f"along {path}"
            )
        if pred is not None:
            return (
                f"program is not stratified: negative recursion "
                f"through {pred!r}"
            )
        return "program is not stratified"

    def stratum_of(self, pred: str) -> int:
        return self._stratum_of.get(pred, 0)

    @property
    def strata(self) -> Tuple[Tuple[str, ...], ...]:
        """Predicates grouped by stratum, lowest first."""
        return self._strata

    def rules_by_stratum(self) -> Iterator[Tuple[int, Tuple[Rule, ...]]]:
        """Yield (stratum index, rules whose head is in that stratum)."""
        by_stratum: Dict[int, List[Rule]] = {}
        for rule in self.rules:
            by_stratum.setdefault(self.stratum_of(rule.head.pred), []).append(
                rule
            )
        for index in sorted(by_stratum):
            yield index, tuple(by_stratum[index])

    # -- recursion analysis -----------------------------------------------------------------

    def _compute_recursive(self) -> FrozenSet[str]:
        """Predicates involved in a dependency cycle (Tarjan SCC)."""
        graph: Dict[str, Set[str]] = {}
        for rule in self.rules:
            edges = graph.setdefault(rule.head.pred, set())
            edges.update(l.atom.pred for l in rule.body)
        index_counter = itertools.count()
        indices: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        recursive: Set[str] = set()

        def strongconnect(node: str) -> None:
            indices[node] = lowlink[node] = next(index_counter)
            stack.append(node)
            on_stack.add(node)
            for succ in graph.get(node, ()):
                if succ not in indices:
                    strongconnect(succ)
                    lowlink[node] = min(lowlink[node], lowlink[succ])
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], indices[succ])
            if lowlink[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph.get(node, ()):
                    recursive.update(component)

        for node in list(graph):
            if node not in indices:
                strongconnect(node)
        return frozenset(recursive)

    @property
    def recursive_predicates(self) -> FrozenSet[str]:
        return self._recursive_preds

    def is_recursive(self) -> bool:
        return bool(self._recursive_preds)

    def reachable_from(self, pred: str) -> FrozenSet[str]:
        """All predicates *pred* depends on (transitively), including
        itself — the support set a query of *pred* can touch."""
        seen: Set[str] = set()
        frontier = [pred]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            for rule in self._rules_by_head.get(current, ()):
                frontier.extend(l.atom.pred for l in rule.body)
        return frozenset(seen)

    # -- dunder -------------------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Program) and self.rules == other.rules

    def __repr__(self) -> str:
        return f"Program({len(self.rules)} rules)"

"""``repro.analysis`` — static program analysis (lint) for rules and
constraints.

The analyzer runs over a program *without evaluating anything* and
returns an :class:`AnalysisReport` of coded :class:`Diagnostic`
records. It backs four surfaces: the public :func:`repro.analyze` API,
the ``repro lint`` CLI verb, the service's DDL admission gates
(rule/constraint DDL is rejected on errors before any satisfiability
or integrity machinery runs), and the CI lint leg.

Import discipline: this ``__init__`` only pulls in the diagnostics
leaf and the metrics registry at import time. The check passes import
the engine (``datalog.magic`` → ``datalog.program``), and
``datalog.program`` lazily imports :mod:`repro.analysis.graph` in its
``StratificationError`` path — loading ``checks`` lazily keeps that
triangle acyclic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple, Union

from repro.analysis.diagnostics import (
    CATALOG,
    AnalysisReport,
    Diagnostic,
    code_for_error,
    coded,
    coded_message,
)
from repro.obs.metrics import default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.logic.formulas import Formula
    from repro.logic.parser import ParsedRule

__all__ = [
    "CATALOG",
    "AnalysisReport",
    "Diagnostic",
    "analyze",
    "analyze_constraint_candidate",
    "analyze_rule_candidate",
    "code_for_error",
    "coded",
    "coded_message",
]

_RUNS = default_registry().counter("analysis.runs")
_ERRORS = default_registry().counter("analysis.errors")
_WARNINGS = default_registry().counter("analysis.warnings")


def _report(diagnostics: List[Diagnostic]) -> AnalysisReport:
    """Wrap raw diagnostics in a report and account for the run."""
    report = AnalysisReport(diagnostics)
    _RUNS.inc()
    errors = len(report.errors())
    warnings = len(report.warnings())
    if errors:
        _ERRORS.inc(errors)
    if warnings:
        _WARNINGS.inc(warnings)
    return report


def analyze(target: Any) -> AnalysisReport:
    """Statically analyze *target* and return an
    :class:`AnalysisReport`.

    *target* may be program source text (surface syntax), a
    :class:`repro.datalog.database.DeductiveDatabase`, or a managed
    :class:`repro.Database` handle. Source-level analysis is the only
    form that can report R001/R002 — a constructed database has
    already rejected those programs.
    """
    from repro.analysis import checks

    if isinstance(target, str):
        return _report(checks.analyze_source(target))
    # A managed repro.Database wraps the engine database; unwrap it.
    inner = getattr(target, "database", None)
    if inner is not None and hasattr(inner, "program"):
        return _report(checks.analyze_database(inner))
    if hasattr(target, "program") and hasattr(target, "facts"):
        return _report(checks.analyze_database(target))
    raise TypeError(
        f"analyze() expects program source or a database, got "
        f"{type(target).__name__}"
    )


def analyze_rule_candidate(
    database: Any, source: Union[str, "ParsedRule"]
) -> Tuple[Optional["ParsedRule"], AnalysisReport]:
    """Static admission gate for rule DDL (see
    :func:`repro.analysis.checks.analyze_rule_candidate`); counted
    like any other analyzer run."""
    from repro.analysis import checks

    parsed, diags = checks.analyze_rule_candidate(database, source)
    return parsed, _report(diags)


def analyze_constraint_candidate(
    database: Any, source: Union[str, "Formula"]
) -> Tuple[Optional["Formula"], AnalysisReport]:
    """Static admission gate for constraint DDL (see
    :func:`repro.analysis.checks.analyze_constraint_candidate`);
    counted like any other analyzer run."""
    from repro.analysis import checks

    normalized, diags = checks.analyze_constraint_candidate(database, source)
    return normalized, _report(diags)

"""Signed predicate dependency graph for static analysis.

Works on bare ``(head, body)`` pairs so it serves both constructed
``Rule`` objects and parser-level ``ParsedRule`` tuples — the latter
matters because ``Rule.__init__`` rejects unsafe rules outright, so
source-level analysis never gets to build them.

``Program._compute_strata`` also calls into :func:`find_negative_cycle`
to name the offending predicate path when it raises
``StratificationError`` (lazily, to keep this package out of the
engine's import-time graph).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.logic.formulas import Atom, Literal


class DependencyGraph:
    """Predicate-level dependency graph with edge signs.

    An edge ``head -> pred`` exists when some rule for ``head`` uses
    ``pred`` in its body; it is *negative* when at least one such use
    is negated.
    """

    __slots__ = ("nodes", "successors", "negative_edges", "heads")

    def __init__(self) -> None:
        self.nodes: Set[str] = set()
        self.successors: Dict[str, Set[str]] = {}
        self.negative_edges: Set[Tuple[str, str]] = set()
        #: Predicates defined by at least one rule head.
        self.heads: Set[str] = set()

    def add_rule(self, head: Atom, body: Sequence[Literal]) -> None:
        head_pred = head.pred
        self.nodes.add(head_pred)
        self.heads.add(head_pred)
        edges = self.successors.setdefault(head_pred, set())
        for literal in body:
            pred = literal.atom.pred
            self.nodes.add(pred)
            edges.add(pred)
            if not literal.positive:
                self.negative_edges.add((head_pred, pred))

    def sccs(self) -> List[List[str]]:
        """Strongly connected components (iterative Tarjan, so deep
        rule chains cannot blow the recursion limit)."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[List[str]] = []
        counter = 0

        for root in sorted(self.nodes):
            if root in index:
                continue
            # Each work item is (node, iterator over its successors).
            work: List[Tuple[str, List[str]]] = [
                (root, sorted(self.successors.get(root, ())))
            ]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, succs = work[-1]
                advanced = False
                while succs:
                    nxt = succs.pop(0)
                    if nxt not in index:
                        index[nxt] = lowlink[nxt] = counter
                        counter += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append(
                            (nxt, sorted(self.successors.get(nxt, ())))
                        )
                        advanced = True
                        break
                    if nxt in on_stack:
                        lowlink[node] = min(lowlink[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def negative_cycle(self) -> Optional[List[str]]:
        """A predicate path witnessing recursion through negation.

        Returns e.g. ``['p', 'r', 'p']`` — a cycle that traverses at
        least one negative edge — or ``None`` when the graph is
        stratifiable. Deterministic: the lexicographically first
        negative edge inside a cycle is reported.
        """
        scc_of: Dict[str, int] = {}
        for i, component in enumerate(self.sccs()):
            for node in component:
                scc_of[node] = i
        for source, target in sorted(self.negative_edges):
            if scc_of.get(source) != scc_of.get(target):
                continue
            path = self._path_within_scc(target, source, scc_of)
            if path is not None:
                return [source] + path
        return None

    def _path_within_scc(
        self, start: str, goal: str, scc_of: Dict[str, int]
    ) -> Optional[List[str]]:
        """Shortest predicate path ``start -> … -> goal`` staying inside
        one SCC (BFS; both ends are in the same SCC by construction)."""
        component = scc_of[start]
        if start == goal:
            return [start]
        parents: Dict[str, str] = {}
        frontier = [start]
        seen = {start}
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for succ in sorted(self.successors.get(node, ())):
                    if succ in seen or scc_of.get(succ) != component:
                        continue
                    parents[succ] = node
                    if succ == goal:
                        path = [goal]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    seen.add(succ)
                    nxt.append(succ)
            frontier = nxt
        return None


def build_dependency_graph(
    rules: Iterable[Tuple[Atom, Sequence[Literal]]],
) -> DependencyGraph:
    graph = DependencyGraph()
    for head, body in rules:
        graph.add_rule(head, body)
    return graph


def find_negative_cycle(
    rules: Iterable[Tuple[Atom, Sequence[Literal]]],
) -> Optional[List[str]]:
    """Convenience wrapper: the negative-cycle predicate path of a rule
    set, or ``None`` if stratifiable. ``Program`` uses this to decorate
    ``StratificationError`` messages."""
    return build_dependency_graph(rules).negative_cycle()

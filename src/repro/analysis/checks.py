"""The analyzer's check passes.

Everything here is *static*: passes walk rule ASTs, the predicate
dependency graph, and fact-store metadata (counts and point probes) —
no rule is ever evaluated and no counter of the evaluation engine
moves. The only engine machinery invoked is ``magic_rewrite`` itself
(for the W001 fallback prediction), which is a syntactic program
transformation whose metrics live on the evaluator, not the rewrite.

Checks operate on parser-level ``(head, body)`` views rather than
``Rule`` objects because ``Rule.__init__`` rejects unsafe rules — the
very defects R001 exists to report.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.diagnostics import Diagnostic, code_for_error
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
    TrueFormula,
    conjuncts,
    disjuncts,
)
from repro.logic.normalize import NormalizationError, normalize_constraint
from repro.logic.parser import (
    ParseError,
    ParsedRule,
    parse_formula,
    parse_program,
    parse_rule,
)
from repro.logic.safety import (
    SafetyError,
    check_constraint_safety,
    check_rule_range_restricted,
)
from repro.logic.terms import Constant, Term, Variable

#: Bodies longer than this are exempt from the quadratic duplicate /
#: subsumption passes (W004/W005) — generated programs with huge rules
#: should not make lint super-linear.
_SUBSUMPTION_BODY_LIMIT = 8


class FactsLike(Protocol):
    """The slice of the fact-store contract the analyzer relies on.

    Satisfied structurally by ``FactStore`` and every ``StoreBackend``;
    the analyzer never mutates the store.
    """

    def count(self, pred: str) -> int: ...

    def match(self, pattern: Atom) -> Iterator[Atom]: ...

    def __iter__(self) -> Iterator[Atom]: ...


class RuleView(NamedTuple):
    """One rule as the analyzer sees it: parser-level head/body plus
    its source-order index (the ``rule`` field of diagnostics)."""

    index: int
    head: Atom
    body: Tuple[Literal, ...]

    def render(self) -> str:
        if not self.body:
            return f"{self.head}."
        return f"{self.head} :- {', '.join(str(l) for l in self.body)}."


class ConstraintView(NamedTuple):
    """One constraint: its identifier, the raw formula, and — when the
    owning database has already normalized and vetted it — the
    normalized form (so the analyzer skips re-deriving R003/R004)."""

    index: int
    id: str
    formula: Formula
    normalized: Optional[Formula]
    vetted: bool


# -- small AST helpers -------------------------------------------------------------------


def _atoms_of(formula: Formula) -> Iterator[Atom]:
    """Every atom occurrence in a formula, at any layer (raw parser
    output or normalized restricted form)."""
    if isinstance(formula, Atom):
        yield formula
    elif isinstance(formula, Literal):
        yield formula.atom
    elif isinstance(formula, Not):
        yield from _atoms_of(formula.child)
    elif isinstance(formula, (And, Or)):
        for child in formula.children:
            yield from _atoms_of(child)
    elif isinstance(formula, Implies):
        yield from _atoms_of(formula.antecedent)
        yield from _atoms_of(formula.consequent)
    elif isinstance(formula, Iff):
        yield from _atoms_of(formula.left)
        yield from _atoms_of(formula.right)
    elif isinstance(formula, (Exists, Forall)):
        if formula.restriction:
            for atom in formula.restriction:
                yield atom
        yield from _atoms_of(formula.matrix)
    # TrueFormula / FalseFormula contribute nothing.


def _as_literal(formula: Formula) -> Optional[Literal]:
    """View a propositional leaf as a literal (``None`` for anything
    that is not one)."""
    if isinstance(formula, Literal):
        return formula
    if isinstance(formula, Atom):
        return Literal(formula)
    if isinstance(formula, Not) and isinstance(formula.child, Atom):
        return Literal(formula.child, False)
    return None


_CanonTerm = Tuple[str, str]


def _canonical_key(
    view: RuleView,
) -> Tuple[Tuple[str, Tuple[_CanonTerm, ...]], Tuple[Any, ...]]:
    """A rename-invariant key for duplicate detection: variables are
    renamed V0, V1, … in order of first occurrence (head first), body
    literals sorted."""
    mapping: Dict[Variable, str] = {}

    def canon(term: Term) -> _CanonTerm:
        if isinstance(term, Variable):
            return ("v", mapping.setdefault(term, f"V{len(mapping)}"))
        return ("c", str(term))

    head = (view.head.pred, tuple(canon(a) for a in view.head.args))
    body = tuple(
        sorted(
            (lit.positive, lit.atom.pred, tuple(canon(a) for a in lit.atom.args))
            for lit in view.body
        )
    )
    return (head, body)


def _match_term(
    pattern: Term, target: Term, theta: Dict[Variable, Term]
) -> Optional[Dict[Variable, Term]]:
    """One-way matching: variables of *pattern* may bind, terms of
    *target* are treated as constants."""
    if isinstance(pattern, Variable):
        bound = theta.get(pattern)
        if bound is None:
            extended = dict(theta)
            extended[pattern] = target
            return extended
        return theta if bound == target else None
    return theta if pattern == target else None


def _match_atom(
    pattern: Atom, target: Atom, theta: Dict[Variable, Term]
) -> Optional[Dict[Variable, Term]]:
    if pattern.pred != target.pred or len(pattern.args) != len(target.args):
        return None
    current: Optional[Dict[Variable, Term]] = theta
    for a, b in zip(pattern.args, target.args):
        if current is None:
            return None
        current = _match_term(a, b, current)
    return current


def _subsumes(general: RuleView, specific: RuleView) -> bool:
    """θ-subsumption: some substitution maps *general*'s head onto
    *specific*'s head and every body literal of *general* onto a body
    literal of *specific* — making *specific* redundant."""
    seed = _match_atom(general.head, specific.head, {})
    if seed is None:
        return False

    def backtrack(position: int, theta: Dict[Variable, Term]) -> bool:
        if position == len(general.body):
            return True
        literal = general.body[position]
        for candidate in specific.body:
            if candidate.positive != literal.positive:
                continue
            extended = _match_atom(literal.atom, candidate.atom, theta)
            if extended is not None and backtrack(position + 1, extended):
                return True
        return False

    return backtrack(0, seed)


# -- check passes ------------------------------------------------------------------------


def _safety_diags(rules: Sequence[RuleView]) -> List[Diagnostic]:
    """R001 — range restriction, the pre-flight form of the error
    ``delta_eval`` used to raise mid-check."""
    out: List[Diagnostic] = []
    for view in rules:
        try:
            check_rule_range_restricted(view.head, view.body)
        except SafetyError as error:
            out.append(
                Diagnostic(
                    "R001",
                    str(error),
                    rule=view.index,
                    pred=view.head.pred,
                    details={"rule": view.render()},
                )
            )
    return out


def _stratification_diags(rules: Sequence[RuleView]) -> List[Diagnostic]:
    """R002 — recursion through negation, with the actual predicate
    cycle named."""
    from repro.analysis.graph import build_dependency_graph

    graph = build_dependency_graph((v.head, v.body) for v in rules)
    cycle = graph.negative_cycle()
    if cycle is None:
        return []
    path = " -> ".join(cycle)
    return [
        Diagnostic(
            "R002",
            f"program is not stratified: recursion through negation "
            f"along {path}",
            pred=cycle[0],
            details={"cycle": list(cycle)},
        )
    ]


def _arity_diags(
    rules: Sequence[RuleView],
    constraints: Sequence[ConstraintView],
    fact_atoms: Optional[Iterator[Atom]],
) -> List[Diagnostic]:
    """R005 — one predicate, several arities."""
    first: Dict[str, Tuple[int, str]] = {}
    conflicts: Dict[str, Set[int]] = {}
    locations: Dict[str, List[str]] = {}

    def record(atom: Atom, where: str) -> None:
        seen = first.get(atom.pred)
        if seen is None:
            first[atom.pred] = (atom.arity, where)
        elif seen[0] != atom.arity:
            conflicts.setdefault(atom.pred, {seen[0]}).add(atom.arity)
            spots = locations.setdefault(atom.pred, [seen[1]])
            if where not in spots:
                spots.append(where)

    if fact_atoms is not None:
        for atom in fact_atoms:
            record(atom, f"fact {atom}")
    for view in rules:
        record(view.head, f"rule {view.index}")
        for literal in view.body:
            record(literal.atom, f"rule {view.index}")
    for cview in constraints:
        for atom in _atoms_of(cview.formula):
            record(atom, f"constraint {cview.id}")

    out: List[Diagnostic] = []
    for pred in sorted(conflicts):
        arities = sorted(conflicts[pred])
        spots = ", ".join(locations[pred][:4])
        out.append(
            Diagnostic(
                "R005",
                f"predicate {pred!r} is used with conflicting arities "
                f"{arities} ({spots})",
                pred=pred,
                details={"arities": arities},
            )
        )
    return out


def _liveness_diags(
    rules: Sequence[RuleView],
    constraints: Sequence[ConstraintView],
    facts: FactsLike,
) -> List[Diagnostic]:
    """W003 — a positive body predicate with no facts and no rules can
    never hold, so the rule derives nothing. W002 — when constraints
    exist, a rule whose head predicate is not (transitively) consumed
    by any constraint is dead weight at check time."""
    out: List[Diagnostic] = []
    heads = {view.head.pred for view in rules}
    for view in rules:
        for position, literal in enumerate(view.body):
            pred = literal.atom.pred
            if not literal.positive or pred in heads:
                continue
            if facts.count(pred) == 0:
                out.append(
                    Diagnostic(
                        "W003",
                        f"rule can never fire: body predicate {pred!r} has "
                        f"no facts and no defining rule",
                        rule=view.index,
                        literal=position,
                        pred=pred,
                        details={"rule": view.render()},
                    )
                )
    if constraints:
        roots: Set[str] = set()
        for cview in constraints:
            roots.update(atom.pred for atom in _atoms_of(cview.formula))
        by_head: Dict[str, List[RuleView]] = {}
        for view in rules:
            by_head.setdefault(view.head.pred, []).append(view)
        live = set(roots)
        stack = list(roots)
        while stack:
            pred = stack.pop()
            for view in by_head.get(pred, ()):
                for literal in view.body:
                    body_pred = literal.atom.pred
                    if body_pred not in live:
                        live.add(body_pred)
                        stack.append(body_pred)
        for view in rules:
            if view.head.pred not in live:
                out.append(
                    Diagnostic(
                        "W002",
                        f"dead rule: no constraint depends on "
                        f"{view.head.pred!r} (directly or transitively)",
                        rule=view.index,
                        pred=view.head.pred,
                        details={"rule": view.render()},
                    )
                )
    return out


def _redundancy_diags(rules: Sequence[RuleView]) -> List[Diagnostic]:
    """W004 — duplicate rules (rename-invariant); W005 — rules made
    redundant by a more general rule (θ-subsumption)."""
    out: List[Diagnostic] = []
    eligible = [
        view for view in rules if len(view.body) <= _SUBSUMPTION_BODY_LIMIT
    ]
    keys = {view.index: _canonical_key(view) for view in eligible}
    seen_keys: Dict[Any, RuleView] = {}
    duplicate_of: Dict[int, int] = {}
    for view in eligible:
        key = keys[view.index]
        if key in seen_keys:
            original = seen_keys[key]
            duplicate_of[view.index] = original.index
            out.append(
                Diagnostic(
                    "W004",
                    f"rule duplicates rule {original.index} "
                    f"({original.render()})",
                    rule=view.index,
                    pred=view.head.pred,
                    details={"duplicate_of": original.index},
                )
            )
        else:
            seen_keys[key] = view
    for specific in eligible:
        if specific.index in duplicate_of:
            continue
        for general in eligible:
            if (
                general.index == specific.index
                or general.index in duplicate_of
                or general.head.pred != specific.head.pred
                or len(general.body) > len(specific.body)
                or keys[general.index] == keys[specific.index]
            ):
                continue
            if _subsumes(general, specific):
                out.append(
                    Diagnostic(
                        "W005",
                        f"rule is subsumed by the more general rule "
                        f"{general.index} ({general.render()})",
                        rule=specific.index,
                        pred=specific.head.pred,
                        details={"subsumed_by": general.index},
                    )
                )
                break
    return out


def _plan_smell_diags(view: RuleView) -> List[Diagnostic]:
    """W006 — body literals that share no variables join as a cartesian
    product (the planner's connectivity notion, applied statically);
    I001 — a cyclic body with negation cannot take the WCOJ path."""
    out: List[Diagnostic] = []
    with_vars = [
        (i, lit) for i, lit in enumerate(view.body) if lit.atom.variables()
    ]
    positives = [(i, lit) for i, lit in with_vars if lit.positive]
    if len(positives) >= 2:
        # Union-find over literals sharing variables. Negative literals
        # connect components too: an anti-join on shared variables is
        # not a cartesian product.
        parent = {i: i for i, _ in with_vars}

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        owner: Dict[Variable, int] = {}
        for i, lit in with_vars:
            for var in lit.atom.variables():
                if var in owner:
                    parent[find(i)] = find(owner[var])
                else:
                    owner[var] = i
        components = {find(i) for i, _ in with_vars}
        if len(components) > 1:
            out.append(
                Diagnostic(
                    "W006",
                    f"rule body splits into {len(components)} "
                    f"variable-disjoint groups; the join degenerates to "
                    f"a cartesian product",
                    rule=view.index,
                    pred=view.head.pred,
                    details={
                        "components": len(components),
                        "rule": view.render(),
                    },
                )
            )
    if len(positives) >= 3 and any(not lit.positive for lit in view.body):
        from repro.datalog.wcoj import is_acyclic

        varsets = [lit.atom.variables() for _, lit in positives]
        if not is_acyclic(varsets):
            out.append(
                Diagnostic(
                    "I001",
                    f"cyclic join over {len(positives)} literals with "
                    f"negation in the body: ineligible for the "
                    f"worst-case-optimal join path, hash join will be "
                    f"used",
                    rule=view.index,
                    pred=view.head.pred,
                    details={"positive_literals": len(positives)},
                )
            )
    return out


def _schema_diags(
    rules: Sequence[RuleView], facts: FactsLike
) -> List[Diagnostic]:
    """I002 — a predicate with both stored facts and defining rules;
    W008 — a constant in a positive body position that no fact and no
    rule head can ever produce."""
    out: List[Diagnostic] = []
    heads = {view.head.pred for view in rules}
    for pred in sorted(heads):
        if facts.count(pred) > 0:
            out.append(
                Diagnostic(
                    "I002",
                    f"predicate {pred!r} is both extensional (stored "
                    f"facts) and intensional (derived by rules)",
                    pred=pred,
                )
            )
    by_head: Dict[str, List[RuleView]] = {}
    for view in rules:
        by_head.setdefault(view.head.pred, []).append(view)
    for view in rules:
        for position, literal in enumerate(view.body):
            if not literal.positive:
                continue
            pred = literal.atom.pred
            populated = pred in heads or facts.count(pred) > 0
            if not populated:
                continue  # W003's territory
            for slot, term in enumerate(literal.atom.args):
                if not isinstance(term, Constant):
                    continue
                if _producible(pred, slot, term, by_head, facts, literal.atom):
                    continue
                out.append(
                    Diagnostic(
                        "W008",
                        f"constant {term} at position {slot} of "
                        f"{pred!r} is never produced by any fact or "
                        f"rule head; the literal can never match",
                        rule=view.index,
                        literal=position,
                        pred=pred,
                        details={"position": slot, "constant": str(term)},
                    )
                )
    return out


def _producible(
    pred: str,
    slot: int,
    term: Constant,
    by_head: Dict[str, List[RuleView]],
    facts: FactsLike,
    atom: Atom,
) -> bool:
    for view in by_head.get(pred, ()):
        if slot >= len(view.head.args):
            continue  # arity conflict; R005 reports it
        head_term = view.head.args[slot]
        if isinstance(head_term, Variable) or head_term == term:
            return True
    pattern = Atom(
        pred,
        tuple(
            term if i == slot else Variable(f"_W8_{i}")
            for i in range(len(atom.args))
        ),
    )
    return next(iter(facts.match(pattern)), None) is not None


def constraint_triviality(normalized: Formula) -> Optional[Tuple[str, str]]:
    """R006/W007 — the satisfiability front end's syntactic verdicts:
    a constraint that normalizes to FALSE (or contains complementary
    ground conjuncts) can never hold; one that normalizes to TRUE (or
    contains complementary ground disjuncts) can never be violated."""
    if isinstance(normalized, FalseFormula):
        return (
            "R006",
            "constraint normalizes to FALSE; no database state can "
            "satisfy it",
        )
    if isinstance(normalized, TrueFormula):
        return (
            "W007",
            "constraint normalizes to TRUE; it can never be violated",
        )

    def complementary_pair(
        parts: Sequence[Formula],
    ) -> Optional[Literal]:
        literals = []
        for part in parts:
            literal = _as_literal(part)
            if literal is not None and literal.atom.is_ground():
                literals.append(literal)
        index = {(lit.atom, lit.positive) for lit in literals}
        for lit in literals:
            if (lit.atom, not lit.positive) in index:
                return lit
        return None

    witness = complementary_pair(conjuncts(normalized))
    if witness is not None:
        return (
            "R006",
            f"constraint conjoins {witness.atom} with its negation; it "
            f"is unsatisfiable",
        )
    witness = complementary_pair(disjuncts(normalized))
    if witness is not None:
        return (
            "W007",
            f"constraint disjoins {witness.atom} with its negation; it "
            f"is a tautology",
        )
    return None


def _constraint_diags(
    constraints: Sequence[ConstraintView],
) -> List[Diagnostic]:
    """R003/R004 on un-vetted constraints, then R006/W007 triage."""
    out: List[Diagnostic] = []
    for cview in constraints:
        normalized = cview.normalized
        if not cview.vetted:
            free = cview.formula.free_variables()
            if free:
                names = ", ".join(sorted(v.name for v in free))
                out.append(
                    Diagnostic(
                        "R003",
                        f"constraint is not closed; free: {names}",
                        constraint=cview.id,
                        details={"free": sorted(v.name for v in free)},
                    )
                )
                continue
            try:
                normalized = normalize_constraint(cview.formula)
                check_constraint_safety(normalized)
            except (NormalizationError, SafetyError) as error:
                out.append(
                    Diagnostic(
                        code_for_error(error) or "R004",
                        str(error),
                        constraint=cview.id,
                    )
                )
                continue
        if normalized is None:
            normalized = cview.formula
        verdict = constraint_triviality(normalized)
        if verdict is not None:
            code, message = verdict
            out.append(Diagnostic(code, message, constraint=cview.id))
    return out


def _magic_fallback_diags(rules: Sequence[RuleView]) -> List[Diagnostic]:
    """W001 — predict, per intensional predicate, whether the magic
    rewrite would lose stratification and fall back to full
    saturation. Only attempted on programs already known to be safe
    and stratified (``Rule``/``Program`` construction is then exact).

    ``magic_rewrite`` is a pure program transformation; the
    ``magic.rewrites`` counter lives on the evaluator, so this pass is
    metrics-silent — pinned by the admission-gate counter test.
    """
    from repro.datalog.magic import (
        MagicRewriteError,
        MagicStratificationError,
        magic_rewrite,
    )
    from repro.datalog.program import Program, Rule

    program = Program(Rule(view.head, view.body) for view in rules)
    idb = program.idb_predicates
    negated_heads = {
        rule.head.pred
        for rule in program
        if any(
            not literal.positive and literal.atom.pred in idb
            for literal in rule.body
        )
    }
    if not negated_heads:
        return []
    out: List[Diagnostic] = []
    for pred in sorted(idb):
        if not (program.reachable_from(pred) & negated_heads):
            continue
        defining = program.rules_for(pred)
        if not defining:
            continue
        arity = defining[0].head.arity
        if arity == 0:
            continue
        pattern = Atom(
            pred, tuple(Constant(f"_lint{i}") for i in range(arity))
        )
        adornment = "b" * arity
        try:
            magic_rewrite(program, pattern, None, True)
        except MagicStratificationError as error:
            out.append(
                Diagnostic(
                    "W001",
                    f"demand transformation for {pred}@{adornment} "
                    f"falls back to full saturation: {error}",
                    pred=pred,
                    details={"pred": pred, "adornment": adornment},
                )
            )
        except MagicRewriteError:
            continue
    return out


# -- entry points ------------------------------------------------------------------------


def run_checks(
    facts: FactsLike,
    rules: Sequence[RuleView],
    constraints: Sequence[ConstraintView],
    fact_atoms: Optional[Iterator[Atom]] = None,
) -> List[Diagnostic]:
    """All passes over one program. *fact_atoms*, when given, feeds the
    arity pass (a full-store scan is only paid when the caller opts
    in — `analyze` does, the per-statement DDL gates do not)."""
    diags: List[Diagnostic] = []
    diags.extend(_safety_diags(rules))
    diags.extend(_stratification_diags(rules))
    diags.extend(_arity_diags(rules, constraints, fact_atoms))
    diags.extend(_liveness_diags(rules, constraints, facts))
    diags.extend(_redundancy_diags(rules))
    for view in rules:
        diags.extend(_plan_smell_diags(view))
    diags.extend(_schema_diags(rules, facts))
    diags.extend(_constraint_diags(constraints))
    if not any(d.code in ("R001", "R002") for d in diags):
        diags.extend(_magic_fallback_diags(rules))
    return diags


def analyze_source(text: str) -> List[Diagnostic]:
    """Analyze a program in surface syntax (never constructs engine
    objects for defective input, so R001/R002 are reportable)."""
    from repro.datalog.facts import FactStore

    try:
        parsed = parse_program(text)
    except ParseError as error:
        return [Diagnostic("R000", str(error))]
    rules = [
        RuleView(i, rule.head, tuple(rule.body))
        for i, rule in enumerate(parsed.rules)
    ]
    constraints = [
        ConstraintView(i, f"ic{i}", formula, None, False)
        for i, formula in enumerate(parsed.constraints)
    ]
    facts = FactStore(parsed.facts)
    return run_checks(facts, rules, constraints, iter(parsed.facts))


def analyze_database(database: Any) -> List[Diagnostic]:
    """Analyze a constructed ``DeductiveDatabase`` (rules and
    constraints there are already safe/stratified by construction, so
    this surfaces the warning/info tiers plus fact-level R005)."""
    rules = [
        RuleView(i, rule.head, tuple(rule.body))
        for i, rule in enumerate(database.program)
    ]
    constraints = [
        ConstraintView(i, c.id, c.formula, c.formula, True)
        for i, c in enumerate(database.constraints)
    ]
    return run_checks(
        database.facts, rules, constraints, iter(database.facts)
    )


def _known_signatures(database: Any) -> Dict[str, Tuple[int, str]]:
    """First-seen (arity, where) per predicate across the database's
    rules and constraints — the candidate gates compare against this
    instead of scanning the fact store."""
    known: Dict[str, Tuple[int, str]] = {}
    for index, rule in enumerate(database.program):
        known.setdefault(rule.head.pred, (rule.head.arity, f"rule {index}"))
        for literal in rule.body:
            known.setdefault(
                literal.atom.pred, (literal.atom.arity, f"rule {index}")
            )
    for constraint in database.constraints:
        for atom in _atoms_of(constraint.formula):
            known.setdefault(
                atom.pred, (atom.arity, f"constraint {constraint.id}")
            )
    return known


def _schema_arity_diags(
    database: Any, atoms: Sequence[Atom], where: str
) -> List[Diagnostic]:
    """R005 for a DDL candidate against the live schema. Fact arities
    are probed per-predicate (count + one point lookup), never by
    scanning the store — this runs on the admission path."""
    known = _known_signatures(database)
    facts: FactsLike = database.facts
    out: List[Diagnostic] = []
    flagged: Set[str] = set()
    for atom in atoms:
        if atom.pred in flagged:
            continue
        entry = known.get(atom.pred)
        if entry is not None:
            if entry[0] != atom.arity:
                flagged.add(atom.pred)
                out.append(
                    Diagnostic(
                        "R005",
                        f"{where} uses {atom.pred!r} with arity "
                        f"{atom.arity} but {entry[1]} uses arity "
                        f"{entry[0]}",
                        pred=atom.pred,
                        details={"arities": sorted({atom.arity, entry[0]})},
                    )
                )
            continue
        if facts.count(atom.pred) > 0:
            probe = Atom(
                atom.pred,
                tuple(Variable(f"_lint{i}") for i in range(atom.arity)),
            )
            if next(iter(facts.match(probe)), None) is None:
                flagged.add(atom.pred)
                out.append(
                    Diagnostic(
                        "R005",
                        f"{where} uses {atom.pred!r} with arity "
                        f"{atom.arity} but the stored facts of "
                        f"{atom.pred!r} have a different arity",
                        pred=atom.pred,
                        details={"arity": atom.arity},
                    )
                )
    return out


def analyze_rule_candidate(
    database: Any, source: Union[str, ParsedRule]
) -> Tuple[Optional[ParsedRule], List[Diagnostic]]:
    """The static admission gate for rule DDL: parse, safety, schema
    arity, stratification of program+candidate, and plan smells —
    without constructing a ``Rule`` or touching the evaluator.

    Returns the parsed rule (``None`` if unparseable) and the
    diagnostics; callers reject when any diagnostic is an error.
    """
    if isinstance(source, str):
        try:
            parsed = parse_rule(source)
        except ParseError as error:
            return None, [Diagnostic("R000", str(error))]
    else:
        parsed = source
    view = RuleView(0, parsed.head, tuple(parsed.body))
    diags: List[Diagnostic] = []
    try:
        check_rule_range_restricted(view.head, view.body)
    except SafetyError as error:
        diags.append(
            Diagnostic("R001", str(error), rule=0, pred=view.head.pred)
        )
    atoms = [view.head] + [literal.atom for literal in view.body]
    diags.extend(_schema_arity_diags(database, atoms, "rule"))
    if not any(d.code == "R001" for d in diags):
        from repro.analysis.graph import build_dependency_graph

        graph = build_dependency_graph(
            [(rule.head, rule.body) for rule in database.program]
            + [(view.head, view.body)]
        )
        cycle = graph.negative_cycle()
        if cycle is not None:
            path = " -> ".join(cycle)
            diags.append(
                Diagnostic(
                    "R002",
                    f"adding this rule makes the program unstratified: "
                    f"recursion through negation along {path}",
                    rule=0,
                    pred=cycle[0],
                    details={"cycle": list(cycle)},
                )
            )
    diags.extend(_plan_smell_diags(view))
    for position, literal in enumerate(view.body):
        pred = literal.atom.pred
        if (
            literal.positive
            and not database.program.is_idb(pred)
            and pred != view.head.pred
            and database.facts.count(pred) == 0
        ):
            diags.append(
                Diagnostic(
                    "W003",
                    f"rule can never fire: body predicate {pred!r} has "
                    f"no facts and no defining rule",
                    rule=0,
                    literal=position,
                    pred=pred,
                )
            )
    return parsed, diags


def analyze_constraint_candidate(
    database: Any, source: Union[str, Formula]
) -> Tuple[Optional[Formula], List[Diagnostic]]:
    """The static admission gate for constraint DDL: parse, closedness,
    normalization/domain independence, schema arity, and triviality
    triage — all before the satisfiability machinery gets a look.

    Returns the normalized formula (``None`` when an error prevents
    normalization) and the diagnostics.
    """
    if isinstance(source, str):
        try:
            formula: Formula = parse_formula(source)
        except ParseError as error:
            return None, [Diagnostic("R000", str(error))]
    else:
        formula = source
    diags: List[Diagnostic] = []
    free = formula.free_variables()
    if free:
        names = ", ".join(sorted(v.name for v in free))
        return None, [
            Diagnostic(
                "R003",
                f"constraint is not closed; free: {names}",
                details={"free": sorted(v.name for v in free)},
            )
        ]
    try:
        normalized = normalize_constraint(formula)
        check_constraint_safety(normalized)
    except (NormalizationError, SafetyError) as error:
        return None, [
            Diagnostic(code_for_error(error) or "R004", str(error))
        ]
    diags.extend(
        _schema_arity_diags(database, list(_atoms_of(formula)), "constraint")
    )
    verdict = constraint_triviality(normalized)
    if verdict is not None:
        code, message = verdict
        diags.append(Diagnostic(code, message))
    return normalized, diags

"""Diagnostic records for the static analyzer.

One stable, machine-readable vocabulary for everything the analyzer can
say about a program: ``R0xx`` codes are errors (the engine would reject
or crash on the construct at evaluation time), ``W0xx`` are warnings
(legal but almost certainly not what the author meant, or a predictable
performance cliff), ``I0xx`` are informational notes. The catalog below
is the contract — codes are never renumbered, only appended.

This module is deliberately a leaf: it imports nothing from the engine,
so every layer (``delta_eval``'s runtime guard, the CLI error handler,
the service DDL gate) can render the same coded text without import
cycles.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: Severity levels, most severe first.
ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK: Dict[str, int] = {ERROR: 0, WARNING: 1, INFO: 2}

#: code -> (severity, one-line title). The README's diagnostic catalog
#: table mirrors this mapping; ``tests/analysis`` pins one fixture per
#: code.
CATALOG: Dict[str, Tuple[str, str]] = {
    "R000": (ERROR, "source does not parse"),
    "R001": (ERROR, "rule is not range-restricted"),
    "R002": (ERROR, "program is not stratified (recursion through negation)"),
    "R003": (ERROR, "constraint is not closed"),
    "R004": (ERROR, "constraint is not domain independent"),
    "R005": (ERROR, "predicate used at conflicting arities"),
    "R006": (ERROR, "constraint is trivially unsatisfiable"),
    "W001": (WARNING, "magic rewrite loses stratification; fallback predicted"),
    "W002": (WARNING, "dead rule: head predicate is never consumed"),
    "W003": (WARNING, "unreachable rule: body predicate is always empty"),
    "W004": (WARNING, "duplicate rule"),
    "W005": (WARNING, "rule is subsumed by another rule"),
    "W006": (WARNING, "disconnected rule body (cartesian product)"),
    "W007": (WARNING, "constraint is a tautology"),
    "W008": (WARNING, "body constant is never produced at this position"),
    "I001": (INFO, "cyclic body with negation is ineligible for WCOJ"),
    "I002": (INFO, "predicate is both extensional and intensional"),
}

_CODE_PREFIX = re.compile(r"^[RWI]\d{3}: ")


def severity_of(code: str) -> str:
    """The catalog severity of *code* (raises ``KeyError`` on unknowns,
    so a typo in a check fails loudly at test time)."""
    return CATALOG[code][0]


def coded(code: str, message: str) -> str:
    """The canonical one-line rendering ``CODE: message`` — the exact
    text every surface (lint, runtime errors, the CLI handler) emits.
    Idempotent: an already-coded message is returned unchanged."""
    if _CODE_PREFIX.match(message):
        return message
    return f"{code}: {message}"


def code_for_error(error: BaseException) -> Optional[str]:
    """Classify an engine exception under a diagnostic code.

    Matches on exception type names and the pinned message phrases the
    safety/stratification layers emit, so this stays a leaf module
    (no imports from the engine) yet agrees with the analyzer's own
    classification of the same defects.
    """
    names = {cls.__name__ for cls in type(error).__mro__}
    text = str(error)
    if "ParseError" in names:
        return "R000"
    if "StratificationError" in names or "not stratified" in text:
        return "R002"
    if "is not range-restricted" in text:
        return "R001"
    # Closedness phrasing comes from both the safety layer ("constraint
    # is not closed") and the normalizer ("constraints must be closed"),
    # so test it before the blanket NormalizationError -> R004 mapping.
    if "constraint is not closed" in text or "must be closed" in text:
        return "R003"
    if "NormalizationError" in names:
        return "R004"
    if (
        "quantifier without restriction" in text
        or "does not cover variable" in text
    ):
        return "R004"
    return None


def coded_message(error: BaseException) -> str:
    """``str(error)`` with its diagnostic code prefixed when the error
    classifies under one — the CLI's one-line rendering."""
    code = code_for_error(error)
    text = str(error)
    if code is None:
        return text
    return coded(code, text)


class Diagnostic:
    """One finding: a stable code, a location, and a message.

    ``rule`` / ``literal`` are zero-based indices into the analyzed
    program's rule list and the rule's body (``None`` when the finding
    is not anchored to one); ``constraint`` identifies a constraint by
    id (or ``c<index>`` for unnamed source constraints); ``pred`` names
    the predicate at fault when there is one. ``details`` carries
    check-specific machine-readable fields.
    """

    __slots__ = (
        "code",
        "severity",
        "message",
        "rule",
        "literal",
        "constraint",
        "pred",
        "details",
    )

    def __init__(
        self,
        code: str,
        message: str,
        *,
        rule: Optional[int] = None,
        literal: Optional[int] = None,
        constraint: Optional[str] = None,
        pred: Optional[str] = None,
        details: Optional[Dict[str, Any]] = None,
    ):
        self.code = code
        self.severity = severity_of(code)
        self.message = message
        self.rule = rule
        self.literal = literal
        self.constraint = constraint
        self.pred = pred
        self.details: Dict[str, Any] = dict(details) if details else {}

    def where(self) -> str:
        """A short location label: ``rule 2``, ``rule 2 literal 1``,
        ``constraint ic_1``, or ``program``."""
        if self.rule is not None:
            if self.literal is not None:
                return f"rule {self.rule} literal {self.literal}"
            return f"rule {self.rule}"
        if self.constraint is not None:
            return f"constraint {self.constraint}"
        return "program"

    def to_dict(self) -> Dict[str, Any]:
        """The wire/JSON form (the service attaches lists of these to
        DDL responses; ``repro lint --format json`` prints them)."""
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "where": self.where(),
        }
        for key in ("rule", "literal", "constraint", "pred"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.details:
            out["details"] = dict(self.details)
        return out

    def __str__(self) -> str:
        return coded(self.code, self.message)

    def __repr__(self) -> str:
        return f"Diagnostic({self.code} @ {self.where()}: {self.message!r})"


def _sort_key(diagnostic: Diagnostic) -> Tuple[int, str, int, str]:
    return (
        _SEVERITY_RANK[diagnostic.severity],
        diagnostic.code,
        diagnostic.rule if diagnostic.rule is not None else -1,
        diagnostic.constraint or "",
    )


class AnalysisReport:
    """The analyzer's verdict: an ordered list of diagnostics plus
    aggregate helpers. Sorted most-severe first, then by code and
    location, so rendering and wire output are deterministic."""

    __slots__ = ("diagnostics",)

    def __init__(self, diagnostics: Sequence[Diagnostic] = ()):
        self.diagnostics: Tuple[Diagnostic, ...] = tuple(
            sorted(diagnostics, key=_sort_key)
        )

    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == INFO]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    @property
    def has_warnings(self) -> bool:
        return any(d.severity == WARNING for d in self.diagnostics)

    def codes(self) -> List[str]:
        """The distinct codes present, sorted — what the parametrized
        fixture tests assert on."""
        return sorted({d.code for d in self.diagnostics})

    def exit_code(self) -> int:
        """The ``repro lint`` convention: 0 clean, 1 warnings only,
        2 errors."""
        if self.has_errors:
            return 2
        if self.has_warnings:
            return 1
        return 0

    def summary(self) -> Dict[str, int]:
        return {
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "info": len(self.infos()),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": self.summary(),
        }

    def render(self) -> str:
        """Human-readable multi-line rendering (the lint verb's text
        format)."""
        if not self.diagnostics:
            return "clean: no diagnostics"
        lines = [
            f"{d.code} {d.severity} {d.where()}: {d.message}"
            for d in self.diagnostics
        ]
        counts = self.summary()
        lines.append(
            f"{counts['errors']} error(s), {counts['warnings']} "
            f"warning(s), {counts['info']} note(s)"
        )
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        counts = self.summary()
        return (
            f"AnalysisReport({counts['errors']}E/"
            f"{counts['warnings']}W/{counts['info']}I)"
        )

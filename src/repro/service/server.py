"""The service front end: named databases over a line-JSON socket.

Protocol: one JSON object per line in each direction (NDJSON). Every
request carries ``op`` plus its parameters (and optionally a client
``id``, echoed back); every response carries ``ok`` — ``true`` with the
op's payload, or ``false`` with ``error``. Verdicts and diagnostics use
the same serializers as the CLI's ``--format json``
(:mod:`repro.serialize`), so a socket client and a shell pipeline parse
identical schemas.

Ops::

    ping                                          liveness
    databases                                     hosted names
    open        db [source]                       open or create
    begin       db                             -> session token
    stage       session updates=[...]             stage literals
    query       db|session formula                truth over state(+staged)
    holds       db|session atom                   ground-atom truth
    check       session [method]                  dry-run the gate
    commit      session                           validate+gate+log+apply
    abort       session
    add_constraint  db constraint [constraint_id budget max_levels]
    model       db                                maintained canonical model
    checkpoint  db                                snapshot + WAL reset
    stats       db
    metrics                                       process-wide registry snapshot

Two optional fields ride any request: ``trace`` (a wire
:class:`~repro.obs.spans.TraceContext` — the server adopts its
trace_id, so server-side spans and slow-query log lines correlate with
the *client's* id) and ``explain`` (truthy → the response gains a
``trace_id`` and an ``explain`` payload, the completed
:class:`~repro.obs.trace.QueryTrace` as a dict).

Each connection is served by its own thread (the "thread pool" of
concurrent writers); sessions opened on a connection are aborted when
it closes. Commits from any number of connections funnel into the
database's group-commit pipeline. A :class:`DatabaseServer` can also
host a metrics/health sidecar (:meth:`DatabaseServer.serve_metrics`,
``repro serve --metrics-port``, or the ``REPRO_METRICS_PORT``
environment knob) exposing ``/metrics``, ``/metrics.json``,
``/healthz`` and ``/readyz``.
"""

from __future__ import annotations

import json
import logging
import os
import re
import socketserver
import threading
import time
from typing import Dict, Optional

from repro import serialize
from repro.config import EngineConfig, default_metrics_port, resolve_config
from repro.logic.normalize import normalize_constraint
from repro.logic.parser import parse_atom, parse_formula
from repro.obs.export import MetricsExporter
from repro.obs.metrics import default_registry
from repro.obs.spans import TraceContext
from repro.obs.trace import current_trace, trace_query
from repro.service.database import ManagedDatabase
from repro.service.transactions import Session
from repro.storage.engine import directory_initialized

_DB_NAME = re.compile(r"[A-Za-z0-9][A-Za-z0-9_.-]*\Z")

#: Structured server-side events (failed verbs, dropped connections)
#: land here; silent by default via the ``repro.obs`` null handler.
_LOG = logging.getLogger("repro.obs.server")

# The service edge's own series: request volume, failure count and
# wire-to-wire latency (parse → dispatch → response built).
_REQUESTS = default_registry().counter("service.requests")
_FAILURES = default_registry().counter("service.failures")
_REQUEST_SECONDS = default_registry().histogram("service.request_seconds")


def _trace_label(request: Dict) -> str:
    """A human-scannable trace label: the verb plus its main operand."""
    op = str(request.get("op"))
    detail = (
        request.get("formula")
        or request.get("atom")
        or request.get("constraint")
        or request.get("db")
        or request.get("session")
    )
    return f"{op} {detail}" if detail else op


class _Handler(socketserver.StreamRequestHandler):
    server: "_TcpServer"

    def handle(self) -> None:
        owned: list = []
        try:
            for raw in self.rfile:
                line = raw.strip()
                if not line:
                    continue
                response = self.server.front.handle_line(line, owned)
                self.wfile.write(
                    json.dumps(response).encode("utf-8") + b"\n"
                )
                self.wfile.flush()
        except (ConnectionError, BrokenPipeError, ValueError) as error:
            _LOG.info(
                "connection dropped: %s",
                error,
                extra={"event": "connection_dropped"},
            )
        finally:
            self.server.front.abort_sessions(owned)


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    front: "DatabaseServer"


class DatabaseServer:
    """Hosts named :class:`ManagedDatabase` directories under a root."""

    def __init__(
        self,
        root,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        sync: bool = True,
        method: str = "bdm",
        strategy: Optional[str] = None,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        supplementary: Optional[bool] = None,
        config: Optional[EngineConfig] = None,
        group_commit: bool = True,
        snapshot_interval: int = 64,
        metrics_port: Optional[int] = None,
    ):
        self.config = resolve_config(
            config,
            strategy=strategy,
            plan=plan,
            exec_mode=exec_mode,
            supplementary=supplementary,
        )
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._db_options = {
            "sync": sync,
            "method": method,
            "config": self.config,
            "group_commit": group_commit,
            "snapshot_interval": snapshot_interval,
        }
        self._databases: Dict[str, ManagedDatabase] = {}
        self._opening: Dict[str, threading.Event] = {}
        self._sessions: Dict[str, Session] = {}
        self._lock = threading.Lock()
        self._session_counter = 0
        self._tcp = _TcpServer((host, port), _Handler)
        self._tcp.front = self
        self._thread: Optional[threading.Thread] = None
        self._served = False
        self._exporter: Optional[MetricsExporter] = None
        if metrics_port is None:
            metrics_port = default_metrics_port()
        if metrics_port is not None:
            self.serve_metrics(metrics_port, host=host)

    # -- lifecycle ----------------------------------------------------------------

    @property
    def address(self) -> "tuple[str, int]":
        return self._tcp.server_address[:2]

    def serve_forever(self) -> None:
        self._served = True
        self._tcp.serve_forever()

    def start(self) -> "DatabaseServer":
        """Serve on a background thread (tests, embedded use)."""
        self._served = True
        self._thread = threading.Thread(
            target=self._tcp.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._exporter is not None:
            self._exporter.mark_ready(False)
            self._exporter.close()
            self._exporter = None
        if self._served:
            # shutdown() blocks on the serve loop's exit handshake and
            # would hang forever if serve_forever never started.
            self._tcp.shutdown()
        self._tcp.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        with self._lock:
            databases = list(self._databases.values())
            self._databases.clear()
            self._sessions.clear()
        for database in databases:
            database.close()

    # -- observability sidecar ----------------------------------------------------

    def serve_metrics(
        self, port: int = 0, host: str = "127.0.0.1"
    ) -> MetricsExporter:
        """Start (or return) the metrics/health HTTP sidecar on *port*
        (0 → ephemeral). Serves ``/metrics``, ``/metrics.json``,
        ``/healthz`` and ``/readyz`` for this process's registry, with
        this server's :meth:`describe` payload riding the JSON view."""
        if self._exporter is None:
            self._exporter = MetricsExporter(
                host=host, port=port, info=self.describe
            ).start()
            # Construction recovers nothing lazily — hosted databases
            # recover on first open — so the server is ready to take
            # traffic as soon as the sockets exist.
            self._exporter.mark_ready()
        return self._exporter

    @property
    def metrics_address(self) -> "Optional[tuple[str, int]]":
        if self._exporter is None:
            return None
        return self._exporter.address

    def describe(self) -> Dict:
        """Cheap live inventory for ``/metrics.json`` and ``repro
        top``: per-database LSN / state sizes / open-session counts."""
        with self._lock:
            databases = dict(self._databases)
            sessions = list(self._sessions.values())
        payload: Dict = {"address": list(self.address), "databases": {}}
        for name, database in databases.items():
            manager = database.manager
            payload["databases"][name] = {
                "lsn": manager.version,
                "facts": len(manager.database.facts),
                "open_sessions": sum(
                    1
                    for session in sessions
                    if session.state == "open"
                    and session.manager is manager
                ),
            }
        return payload

    # -- registry -----------------------------------------------------------------

    def database(
        self,
        name: str,
        source: Optional[str] = None,
        create: bool = False,
    ) -> ManagedDatabase:
        """The named database. Only ``open`` (*create* = True) may
        create one; every other op resolves existing databases — in
        memory, or initialized on disk from a previous run — so a
        typo'd name errors instead of materializing a junk directory.

        Recovery of a cold database (WAL replay, model resume) runs
        *outside* the registry lock, keyed per name, so one slow open
        never stalls requests for other databases or connections.
        """
        if not _DB_NAME.match(name or ""):
            raise ValueError(
                f"bad database name {name!r} (letters, digits, '_.-')"
            )
        directory = os.path.join(self.root, name)
        while True:
            with self._lock:
                database = self._databases.get(name)
                if database is not None:
                    return database
                opening = self._opening.get(name)
                if opening is None:
                    if not create and not directory_initialized(directory):
                        raise ValueError(
                            f"unknown database {name!r}; open it first"
                        )
                    opening = self._opening[name] = threading.Event()
                    leader = True
                else:
                    leader = False
            if not leader:
                opening.wait()
                continue  # the leader registered it (or failed): re-check
            try:
                database = ManagedDatabase(
                    directory, source, **self._db_options
                )
                with self._lock:
                    self._databases[name] = database
                return database
            finally:
                with self._lock:
                    del self._opening[name]
                opening.set()

    def _register_session(self, session: Session) -> str:
        with self._lock:
            self._session_counter += 1
            token = f"s{self._session_counter}"
            self._sessions[token] = session
            return token

    def _session(self, token) -> Session:
        session = self._sessions.get(token)
        if session is None:
            raise ValueError(f"unknown session {token!r}")
        return session

    def _forget_session(self, token, owned_sessions: list) -> None:
        """Drop a finished session so long-lived connections do not
        accumulate committed/aborted Session objects."""
        with self._lock:
            self._sessions.pop(token, None)
        if token in owned_sessions:
            owned_sessions.remove(token)

    def abort_sessions(self, tokens) -> None:
        for token in tokens:
            with self._lock:
                session = self._sessions.pop(token, None)
            if session is not None and session.state == "open":
                session.abort()

    # -- dispatch -----------------------------------------------------------------

    def handle_line(self, line: bytes, owned_sessions: list) -> Dict:
        request_id = None
        request: Dict = {}
        trace_id: Optional[str] = None
        start = time.perf_counter()
        try:
            _REQUESTS.inc()
            request = json.loads(line)
            if not isinstance(request, dict):
                request = {}
                raise ValueError("request must be a JSON object")
            request_id = request.get("id")
            explain = bool(request.get("explain"))
            if explain or self.config.slow_query_ms is not None:
                response, trace_id = self._dispatch_traced(
                    request, owned_sessions, explain
                )
            else:
                response = {
                    "ok": True,
                    **self._dispatch(request, owned_sessions),
                }
        except Exception as error:  # surface, don't kill the connection
            _FAILURES.inc()
            if trace_id is None:
                trace_id = self._request_trace_id(request)
            _LOG.warning(
                "verb failed: op=%s db=%s session=%s id=%s "
                "trace_id=%s error=%s",
                request.get("op"),
                request.get("db"),
                request.get("session"),
                request_id,
                trace_id,
                error,
                extra={
                    "event": "verb_failed",
                    "op": request.get("op"),
                    "db": request.get("db"),
                    "session": request.get("session"),
                    "request_id": request_id,
                    "trace_id": trace_id,
                },
            )
            response = {"ok": False, "error": str(error)}
            if trace_id is not None:
                response["trace_id"] = trace_id
        finally:
            _REQUEST_SECONDS.observe(time.perf_counter() - start)
        if request_id is not None:
            response["id"] = request_id
        return response

    def _dispatch_traced(
        self, request: Dict, owned_sessions: list, explain: bool
    ) -> "tuple[Dict, str]":
        """Run one verb under a :class:`~repro.obs.trace.QueryTrace`
        that adopts the client's wire trace context (when the request
        carried one), stamping the correlation attrs the slow-query log
        emits. ``explain`` additionally returns the completed trace in
        the response."""
        context = TraceContext.from_wire(request.get("trace"))
        with trace_query(
            _trace_label(request), self.config, context=context
        ) as trace:
            for key, value in (
                ("verb", request.get("op")),
                ("db", request.get("db")),
                ("session", request.get("session")),
                ("request_id", request.get("id")),
            ):
                if value is not None:
                    trace.attrs[key] = value
            with trace.span("verb", op=str(request.get("op"))):
                payload = self._dispatch(request, owned_sessions)
            response = {"ok": True, **payload}
            # Correlation is echoed only to callers who opted in (a
            # wire trace context or explain); a bare request keeps the
            # pinned ok/payload/id envelope even when the server
            # happens to trace for its slow-query log.
            if context is not None or explain:
                response["trace_id"] = trace.trace_id
            if explain:
                trace.finish()
                response["explain"] = trace.to_dict()
            return response, trace.trace_id

    @staticmethod
    def _request_trace_id(request: Dict) -> Optional[str]:
        """The client's trace_id for error correlation, even when the
        verb failed before (or without) a server-side trace."""
        context = TraceContext.from_wire(request.get("trace"))
        return context.trace_id if context is not None else None

    def _dispatch(self, request: Dict, owned_sessions: list) -> Dict:
        op = request.get("op")
        if op == "ping":
            return {"pong": True}
        if op == "databases":
            with self._lock:
                return {"databases": sorted(self._databases)}
        if op == "open":
            database = self.database(
                request["db"], request.get("source"), create=True
            )
            stats = database.stats()
            return {"db": request["db"], **stats}
        if op == "begin":
            database = self.database(request["db"])
            token = self._register_session(database.begin())
            owned_sessions.append(token)
            return {"session": token}
        if op == "stage":
            session = self._session(request.get("session"))
            updates = list(request["updates"])
            trace = current_trace()
            if trace is not None:
                with trace.span("session.stage", updates=len(updates)):
                    staged = session.stage(updates)
            else:
                staged = session.stage(updates)
            return {"staged": staged}
        if op == "query":
            formula = normalize_constraint(parse_formula(request["formula"]))
            if "session" in request:
                value = self._session(request["session"]).query(formula)
            else:
                value = self.database(request["db"]).query(formula)
            return serialize.query_result_json(request["formula"], value)
        if op == "holds":
            atom = parse_atom(request["atom"])
            if "session" in request:
                value = self._session(request["session"]).holds(atom)
            else:
                value = self.database(request["db"]).holds(atom)
            return {"atom": request["atom"], "value": bool(value)}
        if op == "check":
            session = self._session(request.get("session"))
            verdict = session.check(request.get("method"))
            return {"check": serialize.check_result_json(verdict)}
        if op == "commit":
            token = request.get("session")
            result = self._session(token).commit()
            self._forget_session(token, owned_sessions)
            return serialize.commit_result_json(result)
        if op == "abort":
            token = request.get("session")
            self._session(token).abort()
            self._forget_session(token, owned_sessions)
            return {}
        if op == "add_constraint":
            database = self.database(request["db"])
            # NB: ``id`` is the protocol's request-correlation field;
            # the constraint's identifier travels as ``constraint_id``.
            result = database.add_constraint(
                request["constraint"],
                constraint_id=request.get("constraint_id"),
                budget=int(request.get("budget", 8)),
                max_levels=int(request.get("max_levels", 120)),
            )
            return serialize.commit_result_json(result)
        if op == "add_rule":
            database = self.database(request["db"])
            result = database.add_rule(request["rule"])
            return serialize.commit_result_json(result)
        if op == "lint":
            database = self.database(request["db"])
            report = database.analyze()
            return {
                "summary": report.summary(),
                "errors": len(report.errors()),
                "warnings": len(report.warnings()),
                "diagnostics": serialize.diagnostics_json(report),
            }
        if op == "model":
            database = self.database(request["db"])
            return {"facts": serialize.model_json(database.model_facts())}
        if op == "checkpoint":
            return {"lsn": self.database(request["db"]).checkpoint()}
        if op == "stats":
            return self.database(request["db"]).stats()
        if op == "metrics":
            # Process-wide: every hosted database shares the default
            # registry, so no ``db`` parameter.
            return {"metrics": default_registry().snapshot()}
        raise ValueError(f"unknown op {op!r}")

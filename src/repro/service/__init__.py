"""The transactional service layer.

The paper's integrity and satisfiability checks are *admission gates on
updates* — this package is the machinery that actually puts them in
front of a shared, durable database:

* :mod:`repro.service.transactions` — optimistic sessions over
  :class:`OverlayFactStore` views, and the transaction manager whose
  group-commit pipeline runs the paper's check as the commit gate;
* :mod:`repro.service.database` — a durable database handle binding
  the storage engine, the DRed-maintained model and the manager;
* :mod:`repro.service.server` / :mod:`repro.service.client` — a
  newline-delimited-JSON socket front end hosting named databases,
  and its thin client.
"""

from repro.service.client import DatabaseClient, RemoteSession, ServiceError
from repro.service.database import ManagedDatabase
from repro.service.server import DatabaseServer
from repro.service.transactions import (
    CommitResult,
    Session,
    TransactionManager,
)

"""Sessions and the transaction manager: the commit gate, made durable.

Concurrency model — optimistic, first-committer-wins:

* A :class:`Session` stages updates privately; its reads go through a
  :class:`~repro.datalog.overlay.OverlayFactStore` view of the latest
  committed state plus its own staged writes (the paper's ``new``
  simulation, reused unchanged as read-your-writes isolation).
* Commit validates at *predicate-key* granularity: a transaction
  conflicts with a concurrently committed one iff their written ground
  atoms overlap, or a predicate this session *read* (expanded through
  the rule dependency closure, so reads of derived predicates count
  their extensional support) was written under it. Non-overlapping
  writers never conflict and commit concurrently.
* The winning transactions then face the paper's integrity gate
  (:meth:`IntegrityChecker.admit` — update-constraint screening,
  relevance-restricted simplified instances, goal-directed delta
  evaluation, honoring the session ``strategy``/``plan`` knobs).
  Violators are rejected with witness diagnostics and are never
  logged.

Group commit: concurrent commit calls elect a leader that drains the
queue and, for mutually non-conflicting transactions, runs **one**
merged gate check, appends **one** atomic WAL batch record with one
fsync, and maintains the DRed model **once** — the amortization the
E12 benchmark measures. The batch record is all-or-nothing under
crash, so a torn group commit can never resurrect half a batch whose
gate verdict only covered the whole. If the merged gate fails, the
batch falls back to individual checks so exactly the violating
transactions are rejected.

**The gate is batch-scoped.** The admitted unit is the merged
transaction of a batch: batch members commute (disjoint write keys,
no cross reads), they are applied and logged atomically, and the gate
guarantees the *resulting* state satisfies the constraints. A
consequence — pinned by a test — is that two concurrent transactions
may be admitted together where either alone would have been rejected
(each curing the other's violation), exactly as if a client had
submitted them as one transaction; under serialized commits
(``group_commit=False``) the first of the pair is rejected instead.
Per-serial-order gating would require checking every member
individually, forfeiting the amortization group commit exists for.

Constraint DDL (schema evolution, Section 4) is its own commit kind:
:meth:`TransactionManager.submit_constraint` runs the paper's triage
(:func:`assess_constraint_addition`) and only an ``accepted``
constraint — satisfied now, hence gate-consistent — is logged and
installed; ``repairable``/``incompatible``/``undecided`` verdicts are
returned with witnesses and sample models as diagnostics.

Rule DDL (:meth:`TransactionManager.submit_rule`) is gated twice.
First the static analyzer (:mod:`repro.analysis`) lints the candidate
against the committed program — any ``R0xx`` diagnostic rejects the
rule *before a single evaluation step* (no gate check, no magic
rewrite, no engine lookup). Only a statically clean rule reaches the
paper's Section 3.2 rule-update check
(:meth:`IntegrityChecker.check_rule_addition`); an admitted rule is
WAL-logged as its own record kind and folded into the program, the
maintained model and the checker. Both DDL kinds attach the analyzer's
diagnostics to the :class:`CommitResult` so clients see warnings even
on successful commits.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import Deque, List, Optional, Sequence, Set, Union

from repro.config import EngineConfig, resolve_config
from repro.datalog.database import DeductiveDatabase
from repro.datalog.incremental import MaintainedModel
from repro.integrity.checker import METHODS, CheckResult, IntegrityChecker
from repro.integrity.evolution import (
    ACCEPTED,
    ConstraintAdditionResult,
    assess_constraint_addition,
)
from repro.integrity.transactions import Transaction
from repro.logic.formulas import Atom, Formula, Literal
from repro.logic.normalize import normalize_constraint
from repro.logic.parser import parse_atom, parse_formula
from repro.logic.safety import constraint_predicates
from repro.obs.metrics import default_registry
from repro.obs.trace import current_trace, maybe_trace
from repro.storage.engine import StorageEngine, apply_transaction
from repro.storage.result_cache import ResultCache
from repro.storage.wal import WalRecord

# Service-level latency distributions (seconds):
#   txn.session_seconds — begin → successful commit, per session;
#   gate.check_seconds  — one integrity-gate admission (merged,
#                         individual or dry-run);
#   txn.linger_seconds  — how long a group-commit leader waited for
#                         stragglers before processing its batch.
_SESSION_SECONDS = default_registry().histogram("txn.session_seconds")
_GATE_SECONDS = default_registry().histogram("gate.check_seconds")
_LINGER_SECONDS = default_registry().histogram("txn.linger_seconds")
# Live commit-queue depth across every manager in the process: the
# backpressure signal the /readyz probe compares against its
# queue_max threshold.
_QUEUE_DEPTH = default_registry().gauge("txn.queue_depth")

#: How many committed write-sets are retained for conflict validation.
#: A session older than the window can no longer be validated and is
#: rejected as ``conflict`` (stale session) — commit promptly.
CONFLICT_WINDOW = 1024

COMMITTED = "committed"
REJECTED = "rejected"
CONFLICT = "conflict"


class SessionError(ValueError):
    """Misuse of a session (stage/commit after it closed, …)."""


class CommitResult:
    """Outcome of a commit attempt.

    ``status`` is ``committed`` (with the assigned ``lsn``),
    ``rejected`` (gate or triage said no — diagnostics in ``check`` /
    ``triage``) or ``conflict`` (a concurrent commit overlapped; the
    session's view was stale, retry on a fresh session).

    ``diagnostics`` carries the static analyzer's
    :class:`repro.analysis.Diagnostic` records for DDL commits — the
    errors that caused a pre-evaluation rejection, or the warnings
    that rode along with an accepted change.
    """

    __slots__ = ("status", "lsn", "check", "triage", "reason", "diagnostics")

    def __init__(
        self,
        status: str,
        lsn: Optional[int] = None,
        check: Optional[CheckResult] = None,
        triage: Optional[ConstraintAdditionResult] = None,
        reason: str = "",
        diagnostics: Sequence = (),
    ):
        self.status = status
        self.lsn = lsn
        self.check = check
        self.triage = triage
        self.reason = reason
        self.diagnostics = list(diagnostics)

    @property
    def ok(self) -> bool:
        return self.status == COMMITTED

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:
        detail = f", lsn={self.lsn}" if self.lsn is not None else ""
        reason = f", reason={self.reason!r}" if self.reason else ""
        diags = (
            f", {len(self.diagnostics)} diagnostic(s)"
            if self.diagnostics
            else ""
        )
        return f"CommitResult({self.status}{detail}{reason}{diags})"


class Session:
    """One client's optimistic transaction against a managed database."""

    __slots__ = (
        "manager",
        "session_id",
        "start_version",
        "state",
        "created",
        "_staged",
        "_read_preds",
    )

    def __init__(self, manager: "TransactionManager", session_id: str):
        self.manager = manager
        self.session_id = session_id
        self.start_version = manager.version
        self.state = "open"
        self.created = time.perf_counter()
        self._staged: List[Literal] = []
        self._read_preds: Set[str] = set()

    # -- staging ------------------------------------------------------------------

    def _require_open(self) -> None:
        if self.state != "open":
            raise SessionError(
                f"session {self.session_id} is {self.state}; begin a new one"
            )

    def stage(
        self, updates: Union[str, Literal, Transaction, Sequence]
    ) -> int:
        """Add updates to the pending transaction; returns how many are
        now staged. Nothing is visible to other sessions until commit."""
        self._require_open()
        self._staged.extend(Transaction.coerce(updates))
        return len(self._staged)

    def insert(self, fact: Union[str, Atom]) -> int:
        atom = parse_atom(fact) if isinstance(fact, str) else fact
        return self.stage(Literal(atom, True))

    def delete(self, fact: Union[str, Atom]) -> int:
        atom = parse_atom(fact) if isinstance(fact, str) else fact
        return self.stage(Literal(atom, False))

    def transaction(self) -> Transaction:
        return Transaction(self._staged)

    # -- reads (the ``new`` overlay view) -----------------------------------------

    def query(self, formula: Union[str, Formula]) -> bool:
        """Truth of a closed formula over committed-state ∪ staged."""
        self._require_open()
        if isinstance(formula, str):
            formula = normalize_constraint(parse_formula(formula))
        self._read_preds.update(constraint_predicates(formula))
        return self.manager.evaluate(formula, self._staged)

    def holds(self, atom: Union[str, Atom]) -> bool:
        self._require_open()
        if isinstance(atom, str):
            atom = parse_atom(atom)
        self._read_preds.add(atom.pred)
        return self.manager.holds(atom, self._staged)

    def read_closure(self) -> frozenset:
        """The read predicates, expanded through the rule dependency
        closure: reading a derived predicate reads its extensional
        support, which is what concurrent writers actually touch."""
        program = self.manager.database.program
        closure: Set[str] = set()
        for pred in self._read_preds:
            closure |= program.reachable_from(pred)
        return frozenset(closure)

    # -- outcomes -----------------------------------------------------------------

    def check(self, method: Optional[str] = None) -> CheckResult:
        """Dry-run the integrity gate on the staged transaction."""
        self._require_open()
        return self.manager.dry_run(self.transaction(), method)

    def commit(self) -> CommitResult:
        """Run conflict validation + the integrity gate; on success the
        transaction is durably logged and applied."""
        self._require_open()
        return self.manager.commit(self)

    def abort(self) -> None:
        if self.state == "open":
            self._close("aborted")
            self._staged.clear()

    def _close(self, new_state: str) -> None:
        """One-way transition out of ``open`` (keeps the manager's
        open-session accounting exact; staged updates are dropped —
        the commit pipeline snapshotted its own Transaction)."""
        if self.state == "open":
            self.state = new_state
            if new_state == "committed":
                _SESSION_SECONDS.observe(
                    time.perf_counter() - self.created
                )
            self.manager._session_closed()
            self._staged.clear()

    def __repr__(self) -> str:
        return (
            f"Session({self.session_id}, {self.state}, "
            f"{len(self._staged)} staged, from v{self.start_version})"
        )


class _CommitRequest:
    """One queued commit (fact transaction, constraint or rule DDL)."""

    __slots__ = (
        "kind",
        "session",
        "transaction",
        "source",
        "constraint_id",
        "budget",
        "max_levels",
        "effective",
        "event",
        "result",
    )

    def __init__(self, kind: str, **fields):
        self.effective = None
        self.kind = kind
        self.session = fields.get("session")
        self.transaction = fields.get("transaction")
        self.source = fields.get("source")
        self.constraint_id = fields.get("constraint_id")
        self.budget = fields.get("budget")
        self.max_levels = fields.get("max_levels")
        self.event = threading.Event()
        self.result: Optional[CommitResult] = None

    def finish(self, result: CommitResult) -> None:
        self.result = result
        if self.session is not None:
            self.session._close("committed" if result.ok else "aborted")
        self.event.set()


class _CommitEntry:
    """A committed transaction's footprint, kept for OCC validation."""

    __slots__ = ("version", "write_keys", "write_preds")

    def __init__(self, version: int, write_keys: frozenset, write_preds: frozenset):
        self.version = version
        self.write_keys = write_keys
        self.write_preds = write_preds


class TransactionManager:
    """Admission control, durability and maintenance for one database."""

    def __init__(
        self,
        database: DeductiveDatabase,
        model: Optional[MaintainedModel] = None,
        storage: Optional[StorageEngine] = None,
        *,
        version: int = 0,
        method: str = "bdm",
        strategy: Optional[str] = None,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        supplementary: Optional[bool] = None,
        config: Optional[EngineConfig] = None,
        group_commit: bool = True,
        snapshot_interval: int = 0,
        commit_delay: float = 0.002,
    ):
        if method not in METHODS:
            raise ValueError(
                f"unknown check method {method!r}; pick one of {METHODS}"
            )
        config = resolve_config(
            config,
            strategy=strategy,
            plan=plan,
            exec_mode=exec_mode,
            supplementary=supplementary,
        )
        self.database = database
        self.model = (
            model
            if model is not None
            else MaintainedModel(
                database.facts, database.program, config=config
            )
        )
        self.storage = storage
        self.version = version
        self.method = method
        self.config = config
        self.strategy = config.strategy
        self.plan = config.plan
        self.exec_mode = config.exec_mode
        self.supplementary = config.supplementary
        # The manager-owned derived-result cache: shared by every
        # engine over the *committed* state (staged overlay views never
        # see it) and invalidated per predicate key from DRed's exact
        # change sets in :meth:`_apply` — not flushed wholesale per
        # commit.
        self.result_cache = (
            ResultCache(config.cache_size) if config.cache else None
        )
        self.group_commit = group_commit
        self.snapshot_interval = snapshot_interval
        # How long a leader lingers for stragglers *when other commits
        # are already in flight* (never on an idle pipeline): the
        # Postgres commit_delay idea. Larger batches amortize the gate
        # check, the WAL fsync and the DRed maintenance pass.
        self.commit_delay = commit_delay
        # Open-session count: the linger heuristic's "siblings" signal.
        self._active_sessions = 0
        self.checker = IntegrityChecker(database, config=config)
        # _state_lock guards the committed state (database, model,
        # commit log, version) against concurrent readers; the commit
        # mutex elects the group-commit leader.
        self._state_lock = threading.RLock()
        self._commit_mutex = threading.Lock()
        self._queue_lock = threading.Lock()
        self._queue: List[_CommitRequest] = []
        self._commit_log: Deque[_CommitEntry] = deque(maxlen=CONFLICT_WINDOW)
        self._pruned_below = version
        self._session_counter = itertools.count(1)
        self._commits_since_checkpoint = 0
        # Per-manager commit accounting, mirrored into the process
        # registry under the same names (see repro.obs.metrics).
        self.stats = {
            "txn.commits": 0,
            "txn.noop_commits": 0,
            "txn.rejected": 0,
            "txn.conflicts": 0,
            "txn.batches": 0,
            "txn.batched_transactions": 0,
            "txn.merged_gate_checks": 0,
            "txn.fallback_gate_checks": 0,
            "txn.ddl_committed": 0,
            "txn.ddl_rejected": 0,
            "txn.checkpoints": 0,
        }
        registry = default_registry()
        self._stat_counters = {
            name: registry.counter(name) for name in self.stats
        }

    def _bump(self, key: str, amount: int = 1) -> None:
        """Advance a commit statistic in both the per-manager dict and
        its process-wide registry mirror (called under _state_lock)."""
        self.stats[key] += amount
        self._stat_counters[key].inc(amount)

    # -- sessions -----------------------------------------------------------------

    def begin(self) -> Session:
        with self._state_lock:
            session = Session(self, f"s{next(self._session_counter)}")
        with self._queue_lock:
            self._active_sessions += 1
        return session

    def _session_closed(self) -> None:
        with self._queue_lock:
            self._active_sessions -= 1

    # -- reads --------------------------------------------------------------------

    def _view(self, staged: Sequence[Literal]) -> DeductiveDatabase:
        if not staged:
            return self.database
        return self.database.updated(list(staged))

    def _engine(self, staged: Sequence[Literal]):
        """The engine for a read: staged overlay views get a private
        engine (never the shared cache — their answers depend on
        uncommitted writes); unstaged reads share the manager's
        precisely-invalidated result cache."""
        if staged:
            return self._view(staged).engine(config=self.config)
        return self.database.engine(
            config=self.config, result_cache=self.result_cache
        )

    def evaluate(self, formula: Formula, staged: Sequence[Literal] = ()) -> bool:
        # maybe_trace is a no-op unless config.slow_query_ms is set or
        # an outer trace (Database.explain, --explain) is active.
        with maybe_trace(str(formula), self.config) as trace:
            with self._state_lock:
                value = self._engine(staged).evaluate(formula)
            if trace is not None:
                trace.result = str(value)
            return value

    def holds(self, atom: Atom, staged: Sequence[Literal] = ()) -> bool:
        with maybe_trace(str(atom), self.config) as trace:
            with self._state_lock:
                value = self._engine(staged).holds(atom)
            if trace is not None:
                trace.result = str(value)
            return value

    def dry_run(
        self, transaction: Transaction, method: Optional[str] = None
    ) -> CheckResult:
        with self._state_lock:
            return self._admit(transaction, method)

    def _admit(
        self, transaction: Transaction, method: Optional[str] = None
    ) -> CheckResult:
        """One integrity-gate admission, timed into gate.check_seconds
        (and the active trace's ``gate`` phase, when there is one)."""
        trace = current_trace()
        start = time.perf_counter()
        try:
            if trace is None:
                return self.checker.admit(
                    transaction, method or self.method
                )
            with trace.phase("gate"), trace.span(
                "gate.check", method=method or self.method
            ):
                return self.checker.admit(
                    transaction, method or self.method
                )
        finally:
            _GATE_SECONDS.observe(time.perf_counter() - start)

    # -- commits ------------------------------------------------------------------

    def commit(self, session: Session) -> CommitResult:
        transaction = session.transaction()
        if not transaction.net():
            # Nothing to admit, log or apply; trivially committed.
            with self._state_lock:
                result = CommitResult(
                    COMMITTED, lsn=self.version, reason="empty transaction"
                )
            session._close("committed")
            return result
        request = _CommitRequest(
            "txn", session=session, transaction=transaction
        )
        return self._run(request)

    def submit_constraint(
        self,
        source: str,
        constraint_id: Optional[str] = None,
        budget: int = 8,
        max_levels: int = 120,
    ) -> CommitResult:
        """Constraint DDL: triage via the satisfiability checker; only
        ``accepted`` candidates commit (durably, as their own WAL
        record kind)."""
        request = _CommitRequest(
            "constraint",
            source=source,
            constraint_id=constraint_id,
            budget=budget,
            max_levels=max_levels,
        )
        return self._run(request)

    def submit_rule(self, source: str) -> CommitResult:
        """Rule DDL: the static analyzer gates admission first (any
        ``R0xx`` diagnostic rejects before a single evaluation step),
        then the Section 3.2 rule-update check admits the rule against
        the constraints; only then is it logged and installed."""
        request = _CommitRequest("rule", source=source)
        return self._run(request)

    def _run(self, request: _CommitRequest) -> CommitResult:
        if not self.group_commit:
            with self._commit_mutex:
                self._process_batch([request])
            return request.result
        with self._queue_lock:
            self._queue.append(request)
            _QUEUE_DEPTH.add(1)
        while not request.event.is_set():
            if self._commit_mutex.acquire(timeout=0.02):
                try:
                    batch = self._drain()
                    if batch:
                        self._process_batch(batch)
                finally:
                    self._commit_mutex.release()
            else:
                request.event.wait(0.02)
        return request.result

    def _drain(self) -> List[_CommitRequest]:
        """Take the queued requests; when sessions *other than the
        batch's own* are open (concurrent writers mid-transaction),
        linger up to ``commit_delay`` so their commits join this batch
        instead of paying their own gate check, fsync and maintenance
        pass — the Postgres ``commit_delay``/``commit_siblings`` idea.
        An idle pipeline never waits."""
        with self._queue_lock:
            batch, self._queue = self._queue, []
            _QUEUE_DEPTH.add(-len(batch))
        if not batch or self.commit_delay <= 0:
            return batch

        def others() -> int:
            members = sum(1 for r in batch if r.session is not None)
            return self._active_sessions - members

        if others() > 0:
            linger_start = time.monotonic()
            deadline = linger_start + self.commit_delay
            while time.monotonic() < deadline:
                time.sleep(self.commit_delay / 10)
                with self._queue_lock:
                    if len(self._queue) >= others():
                        break
            with self._queue_lock:
                stragglers, self._queue = self._queue, []
                _QUEUE_DEPTH.add(-len(stragglers))
            batch.extend(stragglers)
            _LINGER_SECONDS.observe(time.monotonic() - linger_start)
        return batch

    # -- the commit pipeline (leader-only) ----------------------------------------

    def _process_batch(self, batch: List[_CommitRequest]) -> None:
        try:
            with self._state_lock:
                self._process_batch_locked(batch)
        finally:
            # Never leave a follower hanging, even if the pipeline
            # failed mid-way (e.g. a storage error): unprocessed
            # requests observe a rejection, the leader re-raises.
            for request in batch:
                if not request.event.is_set():
                    request.finish(
                        CommitResult(
                            REJECTED, reason="commit pipeline error"
                        )
                    )

    def _process_batch_locked(self, batch: List[_CommitRequest]) -> None:
        transactions = [r for r in batch if r.kind == "txn"]
        ddl = [r for r in batch if r.kind in ("constraint", "rule")]
        if transactions:
            self._bump("txn.batches")
            self._bump("txn.batched_transactions", len(transactions))
        admitted: List[_CommitRequest] = []
        for request in transactions:
            reason = self._validate(request)
            if reason is not None:
                self._bump("txn.conflicts")
                request.finish(CommitResult(CONFLICT, reason=reason))
            else:
                admitted.append(request)
        admitted = [r for r in admitted if self._reduce(r)]
        group, leftovers = self._mergeable(admitted)
        if len(group) > 1:
            self._commit_group(group)
        elif group:
            self._commit_individual(group[0])
        for request in leftovers:
            # The group just committed; the leftover overlapped with it
            # (that is *why* it was left over) or with a prior commit —
            # re-validate against the grown commit log and re-reduce
            # against the grown state.
            reason = self._validate(request)
            if reason is not None:
                self._bump("txn.conflicts")
                request.finish(CommitResult(CONFLICT, reason=reason))
            elif self._reduce(request):
                self._commit_individual(request)
        for request in ddl:
            if request.kind == "rule":
                self._commit_rule(request)
            else:
                self._commit_constraint(request)

    def _validate(self, request: _CommitRequest) -> Optional[str]:
        """First-committer-wins validation; ``None`` means admissible."""
        session = request.session
        if session.start_version < self._pruned_below:
            return (
                f"session began at v{session.start_version}, older than "
                f"the {CONFLICT_WINDOW}-entry validation window"
            )
        write_keys = request.transaction.write_keys()
        read_preds = session.read_closure()
        for entry in self._commit_log:
            if entry.version <= session.start_version:
                continue
            overlap = entry.write_keys & write_keys
            if overlap:
                return (
                    f"write-write conflict on "
                    f"{sorted(map(str, overlap))[0]} (committed v{entry.version})"
                )
            stale = entry.write_preds & read_preds
            if stale:
                return (
                    f"read predicate {sorted(stale)[0]!r} was written "
                    f"under this session (committed v{entry.version})"
                )
        return None

    def _reduce(self, request: _CommitRequest) -> bool:
        """Drop Definition-1 no-ops (insert of a present fact, delete
        of an absent one) against the current extensional state. A
        transaction whose every update is a no-op commits trivially —
        no gate, no log record, no LSN — and ``False`` is returned."""
        facts = self.database.facts
        effective = [
            update
            for update in request.transaction.net()
            if facts.contains(update.atom) != update.positive
        ]
        if not effective:
            self._bump("txn.noop_commits")
            request.finish(
                CommitResult(
                    COMMITTED, lsn=self.version, reason="no-op transaction"
                )
            )
            return False
        request.effective = Transaction(effective)
        return True

    def _mergeable(
        self, requests: List[_CommitRequest]
    ) -> "tuple[List[_CommitRequest], List[_CommitRequest]]":
        """Greedily grow a mutually non-conflicting group (disjoint
        write keys, nobody reads what another member writes): the
        merged gate check and the atomic batch record are only sound
        for commuting transactions."""
        group: List[_CommitRequest] = []
        leftovers: List[_CommitRequest] = []
        keys: Set = set()
        preds: Set[str] = set()
        reads: Set[str] = set()
        for request in requests:
            w_keys = request.transaction.write_keys()
            w_preds = request.transaction.predicates()
            r_preds = request.session.read_closure()
            if (
                keys & w_keys
                or preds & r_preds
                or reads & w_preds
            ):
                leftovers.append(request)
                continue
            group.append(request)
            keys |= w_keys
            preds |= w_preds
            reads |= r_preds
        return group, leftovers

    def _commit_group(self, group: List[_CommitRequest]) -> None:
        merged = Transaction.merge([r.effective for r in group])
        self._bump("txn.merged_gate_checks")
        verdict = self._admit(merged)
        if not verdict.ok:
            # Someone in the batch violates; find exactly who. Checked
            # sequentially — each passing member applies before the
            # next check, as a serial execution would.
            for request in group:
                self._bump("txn.fallback_gate_checks")
                self._commit_individual(request)
            return
        first_lsn = self.version + 1
        entries = []
        for offset, request in enumerate(group):
            entries.append(
                {
                    "lsn": first_lsn + offset,
                    "updates": request.effective.to_strings(),
                }
            )
        last_lsn = first_lsn + len(group) - 1
        record = WalRecord(last_lsn, "batch", {"txns": entries})
        if self.storage is not None:
            self.storage.log(record)
        self._apply(merged)
        for offset, request in enumerate(group):
            lsn = first_lsn + offset
            self._log_commit(lsn, request.effective)
            self._bump("txn.commits")
            request.finish(CommitResult(COMMITTED, lsn=lsn, check=verdict))
        self.version = last_lsn
        self._maybe_checkpoint(len(group))

    def _commit_individual(self, request: _CommitRequest) -> None:
        transaction = request.effective
        verdict = self._admit(transaction)
        if not verdict.ok:
            self._bump("txn.rejected")
            request.finish(
                CommitResult(
                    REJECTED,
                    check=verdict,
                    reason=(
                        f"integrity gate: {len(verdict.violations)} "
                        f"violated constraint instance(s)"
                    ),
                )
            )
            return
        lsn = self.version + 1
        record = WalRecord(lsn, "txn", {"updates": transaction.to_strings()})
        if self.storage is not None:
            self.storage.log(record)
        self._apply(transaction)
        self._log_commit(lsn, transaction)
        self.version = lsn
        self._bump("txn.commits")
        request.finish(CommitResult(COMMITTED, lsn=lsn, check=verdict))
        self._maybe_checkpoint(1)

    def _commit_rule(self, request: _CommitRequest) -> None:
        from repro.analysis import analyze_rule_candidate
        from repro.datalog.program import Rule

        parsed, report = analyze_rule_candidate(self.database, request.source)
        if parsed is None or report.has_errors:
            # Rejected before a single evaluation step: no gate check,
            # no magic rewrite, no engine lookup happened.
            self._bump("txn.ddl_rejected")
            request.finish(
                CommitResult(
                    REJECTED,
                    diagnostics=list(report),
                    reason=(
                        f"static analysis: {len(report.errors())} error(s)"
                    ),
                )
            )
            return
        rule = Rule(parsed.head, parsed.body)
        verdict = self._admit_rule(rule)
        if not verdict.ok:
            self._bump("txn.ddl_rejected")
            request.finish(
                CommitResult(
                    REJECTED,
                    check=verdict,
                    diagnostics=list(report),
                    reason=(
                        f"integrity gate: {len(verdict.violations)} "
                        f"violated constraint instance(s)"
                    ),
                )
            )
            return
        lsn = self.version + 1
        record = WalRecord(lsn, "rule", {"source": request.source})
        if self.storage is not None:
            self.storage.log(record)
        self.database.add_rule(rule)
        # The maintained model, the checker's dependency indexes and
        # any cached derived results are all program-dependent: rebuild
        # the first two, flush the third wholesale (unlike fact
        # commits, a rule change has no exact DRed change set here).
        self.model = MaintainedModel(
            self.database.facts, self.database.program, config=self.config
        )
        if self.result_cache is not None:
            self.result_cache.clear()
        self.checker = IntegrityChecker(self.database, config=self.config)
        self.version = lsn
        self._bump("txn.ddl_committed")
        request.finish(
            CommitResult(
                COMMITTED, lsn=lsn, check=verdict, diagnostics=list(report)
            )
        )
        self._maybe_checkpoint(1)

    def _admit_rule(self, rule) -> CheckResult:
        """The Section 3.2 rule-addition admission, timed into
        gate.check_seconds like every other gate check."""
        start = time.perf_counter()
        try:
            return self.checker.check_rule_addition(rule)
        finally:
            _GATE_SECONDS.observe(time.perf_counter() - start)

    def _commit_constraint(self, request: _CommitRequest) -> None:
        from repro.analysis import analyze_constraint_candidate

        _, report = analyze_constraint_candidate(
            self.database, request.source
        )
        if report.has_errors:
            # Malformed / unsatisfiable-by-syntax DDL never reaches the
            # satisfiability machinery.
            self._bump("txn.ddl_rejected")
            request.finish(
                CommitResult(
                    REJECTED,
                    diagnostics=list(report),
                    reason=(
                        f"static analysis: {len(report.errors())} error(s)"
                    ),
                )
            )
            return
        lsn = self.version + 1
        constraint_id = request.constraint_id or self._fresh_constraint_id(lsn)
        triage = assess_constraint_addition(
            self.database,
            request.source,
            id=constraint_id,
            max_fresh_constants=request.budget,
            max_levels=request.max_levels,
        )
        if triage.status != ACCEPTED:
            self._bump("txn.ddl_rejected")
            request.finish(
                CommitResult(
                    REJECTED,
                    triage=triage,
                    diagnostics=list(report),
                    reason=f"constraint triage: {triage.status}",
                )
            )
            return
        record = WalRecord(
            lsn,
            "constraint",
            {"source": request.source, "id": constraint_id},
        )
        if self.storage is not None:
            self.storage.log(record)
        self.database.add_constraint(request.source, id=constraint_id)
        # The relevance/dependency indexes are constraint-dependent.
        # The result cache stays warm: DDL changes which formulas are
        # *checked*, not the truth of any cached query.
        self.checker = IntegrityChecker(self.database, config=self.config)
        self.version = lsn
        self._bump("txn.ddl_committed")
        request.finish(
            CommitResult(
                COMMITTED, lsn=lsn, triage=triage, diagnostics=list(report)
            )
        )
        self._maybe_checkpoint(1)

    def _fresh_constraint_id(self, lsn: int) -> str:
        taken = {c.id for c in self.database.constraints}
        candidate = f"c{lsn}"
        while candidate in taken:
            candidate = f"{candidate}'"
        return candidate

    def _apply(self, transaction: Transaction) -> None:
        # The same helper WAL replay uses: live-commit state and
        # recovered state agree by construction, not by hand-sync.
        inserted, deleted = apply_transaction(
            transaction, self.database, self.model
        )
        if self.result_cache is not None:
            # DRed hands back exactly the model atoms whose truth
            # changed; only cache entries depending on one of those
            # predicate keys are dropped.
            self.result_cache.invalidate(itertools.chain(inserted, deleted))

    def _log_commit(self, version: int, transaction: Transaction) -> None:
        if (
            len(self._commit_log) == self._commit_log.maxlen
            and self._commit_log
        ):
            self._pruned_below = self._commit_log[0].version
        self._commit_log.append(
            _CommitEntry(
                version,
                transaction.write_keys(),
                transaction.predicates(),
            )
        )

    def _maybe_checkpoint(self, committed: int) -> None:
        self._commits_since_checkpoint += committed
        if (
            self.storage is not None
            and self.snapshot_interval
            and self._commits_since_checkpoint >= self.snapshot_interval
        ):
            self.checkpoint()

    def cache_stats(self) -> Optional[dict]:
        """Hit/miss/invalidation counters of the shared result cache,
        or ``None`` when caching is off."""
        if self.result_cache is None:
            return None
        return self.result_cache.stats()

    def checkpoint(self) -> int:
        """Fold the WAL into a snapshot now; returns the snapshot LSN."""
        with self._state_lock:
            if self.storage is not None:
                self.storage.checkpoint(self.version, self.database, self.model)
                self._bump("txn.checkpoints")
            self._commits_since_checkpoint = 0
            return self.version

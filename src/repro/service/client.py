"""Thin client for the NDJSON socket protocol.

One socket per client; requests and responses are matched by an
auto-incremented ``id``. :class:`RemoteSession` mirrors the in-process
:class:`~repro.service.transactions.Session` API, so code written
against a local :class:`ManagedDatabase` ports to the wire by swapping
the handle.

Every request is stamped with a fresh wire
:class:`~repro.obs.spans.TraceContext` (``trace_id`` + the client-side
span the server's work parents under), and the client remembers the
last one in :attr:`DatabaseClient.last_trace_id` — grep the server's
slow-query log for that id to find *your* request. ``explain=True``
requests come back with the server's full trace payload (render it
with :func:`repro.obs.render_trace`).
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, List, Optional, Union

from repro.obs.spans import TraceContext


class ServiceError(RuntimeError):
    """The server answered ``ok: false``."""


class DatabaseClient:
    """A connection to a :class:`~repro.service.server.DatabaseServer`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7407, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._next_id = 0
        #: trace_id of the most recent request — the correlation handle
        #: into the server's explain payloads and slow-query log.
        self.last_trace_id: Optional[str] = None

    # -- transport ----------------------------------------------------------------

    def call(self, op: str, **params) -> Dict:
        """One request/response round trip; raises :class:`ServiceError`
        when the server reports failure."""
        with self._lock:
            self._next_id += 1
            context = TraceContext.generate()
            self.last_trace_id = context.trace_id
            request = {
                "op": op,
                "id": self._next_id,
                "trace": context.to_wire(),
                **params,
            }
            self._file.write(json.dumps(request).encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
            if not line:
                raise ServiceError("server closed the connection")
            response = json.loads(line)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown server error"))
        response.pop("ok", None)
        response.pop("id", None)
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "DatabaseClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- convenience --------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def databases(self) -> List[str]:
        return self.call("databases")["databases"]

    def open(self, name: str, source: Optional[str] = None) -> Dict:
        params = {"db": name}
        if source is not None:
            params["source"] = source
        return self.call("open", **params)

    def begin(self, name: str) -> "RemoteSession":
        token = self.call("begin", db=name)["session"]
        return RemoteSession(self, token)

    def query(self, name: str, formula: str) -> bool:
        return bool(self.call("query", db=name, formula=formula)["value"])

    def holds(self, name: str, atom: str) -> bool:
        return bool(self.call("holds", db=name, atom=atom)["value"])

    def add_constraint(self, name: str, constraint: str, **options) -> Dict:
        return self.call(
            "add_constraint", db=name, constraint=constraint, **options
        )

    def add_rule(self, name: str, rule: str) -> Dict:
        """Rule DDL: lint-gated, then integrity-gated; the response
        carries the analyzer's ``diagnostics`` either way."""
        return self.call("add_rule", db=name, rule=rule)

    def lint(self, name: str) -> Dict:
        """Statically analyze the database's committed program."""
        return self.call("lint", db=name)

    def model(self, name: str) -> List[str]:
        return self.call("model", db=name)["facts"]

    def checkpoint(self, name: str) -> int:
        return self.call("checkpoint", db=name)["lsn"]

    def stats(self, name: str) -> Dict:
        return self.call("stats", db=name)

    def metrics(self) -> Dict:
        """The server process's full metrics registry snapshot."""
        return self.call("metrics")["metrics"]

    def explain(self, name: str, formula: str) -> Dict:
        """Evaluate *formula* with server-side tracing and return the
        response including the ``explain`` trace payload (a
        :meth:`~repro.obs.trace.QueryTrace.to_dict` dict; feed it to
        :func:`repro.obs.render_trace` for the EXPLAIN tree). The
        trace's ``trace_id`` is this client's — generated here,
        adopted by the server."""
        return self.call("query", db=name, formula=formula, explain=True)


class RemoteSession:
    """A server-side session addressed by its token."""

    __slots__ = ("client", "token")

    def __init__(self, client: DatabaseClient, token: str):
        self.client = client
        self.token = token

    def stage(self, updates: Union[str, List[str]]) -> int:
        if isinstance(updates, str):
            updates = [updates]
        return self.client.call("stage", session=self.token, updates=updates)[
            "staged"
        ]

    def insert(self, fact: str) -> int:
        return self.stage(fact)

    def delete(self, fact: str) -> int:
        return self.stage(f"not {fact}")

    def query(self, formula: str) -> bool:
        return bool(
            self.client.call("query", session=self.token, formula=formula)[
                "value"
            ]
        )

    def holds(self, atom: str) -> bool:
        return bool(
            self.client.call("holds", session=self.token, atom=atom)["value"]
        )

    def check(self, method: Optional[str] = None) -> Dict:
        params = {"session": self.token}
        if method is not None:
            params["method"] = method
        return self.client.call("check", **params)["check"]

    def commit(self) -> Dict:
        return self.client.call("commit", session=self.token)

    def abort(self) -> None:
        self.client.call("abort", session=self.token)

"""A durable, transactional database handle.

Binds the three layers: the storage engine (WAL + snapshots), the
DRed-maintained model, and the transaction manager whose commit gate
is the paper's integrity check. Opening a directory recovers the last
committed state (creating it from *source* on first open); opening
with no directory gives an in-memory transactional database — same
semantics, no durability — which the tests and benchmarks use freely.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.config import EngineConfig, resolve_config
from repro.datalog.database import DeductiveDatabase
from repro.datalog.facts import FactStore
from repro.datalog.incremental import MaintainedModel
from repro.integrity.checker import CheckResult
from repro.integrity.transactions import Transaction
from repro.logic.formulas import Formula
from repro.logic.normalize import normalize_constraint
from repro.logic.parser import parse_atom, parse_formula
from repro.obs.metrics import default_registry
from repro.obs.trace import QueryTrace, trace_query
from repro.service.transactions import CommitResult, Session, TransactionManager
from repro.storage.engine import StorageEngine, directory_initialized


class ManagedDatabase:
    """The service's unit of hosting: one durable deductive database."""

    def __init__(
        self,
        directory: Optional[Union[str, os.PathLike]] = None,
        source: Optional[str] = None,
        *,
        sync: bool = True,
        method: str = "bdm",
        strategy: Optional[str] = None,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        supplementary: Optional[bool] = None,
        config: Optional[EngineConfig] = None,
        group_commit: bool = True,
        snapshot_interval: int = 0,
        commit_delay: float = 0.002,
    ):
        config = resolve_config(
            config,
            strategy=strategy,
            plan=plan,
            exec_mode=exec_mode,
            supplementary=supplementary,
        )
        self.directory = None if directory is None else os.fspath(directory)
        self.recovered = None
        if self.directory is None or not directory_initialized(self.directory):
            # Creation path: parse and validate the seed *before* any
            # directory or file exists, so a bad source / inconsistent
            # seed leaves no junk database behind.
            database = DeductiveDatabase.from_source(
                source or "", config=config
            )
            self._require_consistent(database)
            model = MaintainedModel(
                database.facts, database.program, config=config
            )
            version = 0
            storage = None
            if self.directory is not None:
                storage = StorageEngine(self.directory, sync=sync)
                storage.initialize(database, model)
        else:
            # An existing database is authoritative; *source* is only
            # a creation seed.
            storage = StorageEngine(self.directory, sync=sync)
            self.recovered = storage.recover(config=config)
            database = self.recovered.database
            model = self.recovered.model
            version = self.recovered.last_lsn
        self.manager = TransactionManager(
            database,
            model,
            storage,
            version=version,
            method=method,
            config=config,
            group_commit=group_commit,
            snapshot_interval=snapshot_interval,
            commit_delay=commit_delay,
        )

    @staticmethod
    def _require_consistent(database: DeductiveDatabase) -> None:
        """The gate's precondition (every proposition assumes D ⊨ IC):
        refuse to create a database that starts out violating."""
        violated = database.violated_constraints()
        if violated:
            names = ", ".join(c.id for c in violated)
            raise ValueError(
                f"initial database violates constraint(s) {names}; "
                f"the commit gate requires a consistent starting state"
            )

    # -- delegation ----------------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        return self.manager.config

    @property
    def database(self) -> DeductiveDatabase:
        return self.manager.database

    @property
    def model(self) -> MaintainedModel:
        return self.manager.model

    @property
    def lsn(self) -> int:
        return self.manager.version

    def begin(self) -> Session:
        return self.manager.begin()

    def submit(self, updates) -> CommitResult:
        """One-shot transaction: begin, stage, commit."""
        session = self.begin()
        session.stage(Transaction.coerce(updates))
        return session.commit()

    def query(self, formula: Union[str, Formula]) -> bool:
        if isinstance(formula, str):
            formula = normalize_constraint(parse_formula(formula))
        return self.manager.evaluate(formula)

    def holds(self, atom) -> bool:
        if isinstance(atom, str):
            atom = parse_atom(atom)
        return self.manager.holds(atom)

    def check(self, updates, method: Optional[str] = None) -> CheckResult:
        """Dry-run the gate without committing."""
        return self.manager.dry_run(Transaction.coerce(updates), method)

    def explain(self, formula: Union[str, Formula]) -> QueryTrace:
        """Evaluate *formula* with a :class:`repro.obs.QueryTrace`
        active and return the completed trace — ``trace.result`` holds
        the verdict, :meth:`QueryTrace.render` the EXPLAIN tree."""
        if isinstance(formula, str):
            formula = normalize_constraint(parse_formula(formula))
        with trace_query(str(formula), self.manager.config) as trace:
            value = self.manager.evaluate(formula)
            trace.result = str(value)
        return trace

    def add_constraint(
        self,
        source: str,
        constraint_id: Optional[str] = None,
        budget: int = 8,
        max_levels: int = 120,
    ) -> CommitResult:
        return self.manager.submit_constraint(
            source, constraint_id, budget=budget, max_levels=max_levels
        )

    def add_rule(self, source: str) -> CommitResult:
        """Rule DDL: statically analyzed (rejected on any ``R0xx``
        diagnostic before evaluation), then admitted through the
        integrity gate, WAL-logged, and folded into the maintained
        model."""
        return self.manager.submit_rule(source)

    def analyze(self):
        """Run the static analyzer over the committed state and return
        an :class:`repro.analysis.AnalysisReport`."""
        from repro.analysis import analyze

        with self.manager._state_lock:
            return analyze(self.manager.database)

    def model_facts(self) -> FactStore:
        """A snapshot of the maintained canonical model."""
        with self.manager._state_lock:
            return self.manager.model.snapshot()

    def checkpoint(self) -> int:
        return self.manager.checkpoint()

    #: The latency series :meth:`stats` summarizes (process-wide
    #: histograms from the default registry — the full distributions
    #: are behind :func:`repro.metrics` / the server ``metrics`` verb).
    LATENCY_SERIES = (
        "txn.session_seconds",
        "gate.check_seconds",
        "wal.append_seconds",
        "txn.linger_seconds",
    )

    def stats(self) -> dict:
        """One flat dict: state sizes (``lsn``/``facts``/…), the
        commit counters under their ``txn.*`` registry names, the
        result cache's ``cache.*`` counters (when caching is on) and
        the service latency histograms in full — count/sum/mean,
        bucket counts, and p50/p95/p99 quantiles, exactly as
        :meth:`~repro.obs.metrics.Histogram.to_dict` renders them for
        the ``metrics`` verb and :func:`repro.metrics` — every metric
        key matches the default registry's naming scheme."""
        with self.manager._state_lock:
            database = self.manager.database
            out = {
                "lsn": self.manager.version,
                "facts": len(database.facts),
                "rules": len(database.program),
                "constraints": len(database.constraints),
                "model_facts": len(self.manager.model.model),
                "backend": self.manager.config.backend,
                **self.manager.stats,
            }
            cache = self.manager.cache_stats()
            if cache is not None:
                out.update(cache)
        snapshot = default_registry().snapshot()
        for name in self.LATENCY_SERIES:
            series = snapshot.get(name)
            if isinstance(series, dict) and series.get("count"):
                out[name] = series
        return out

    def close(self) -> None:
        if self.manager.storage is not None:
            self.manager.storage.close()

    def __repr__(self) -> str:
        where = self.directory or "<memory>"
        return f"ManagedDatabase({where!r}, lsn={self.lsn})"

"""Constructive enforcement of violated formulas (Section 4).

``enforce`` makes a formula true by fact insertions, constructively
exploiting the inductive definition of first-order semantics:

* conjunction  — enforce every conjunct;
* disjunction  — enforce one disjunct (choice point);
* ∀X̄[¬R ∨ Q]  — enforce Qσ for every σ with Rσ currently true;
* ∃X̄[R ∧ Q]   — either enforce Qσ for some σ with Rσ true (*reuse*,
  one choice point per witness), or instantiate X̄ with fresh constants
  and enforce R ∧ Q (*fresh*). The reuse alternatives are the paper's
  extension over classical tableaux and are exactly what makes the
  procedure complete for finite satisfiability;
* positive literal — assert the fact;
* negative literal — unenforceable (fails unless already true).

Each enforcement path is a generator value; exhausting the generator
undoes the assertions it made (chronological backtracking over the
sample database's trail).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.logic.formulas import (
    And,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Literal,
    Or,
    TrueFormula,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.satisfiability.sample_db import SampleDatabase


class EnforcementContext:
    """Shared state of one satisfiability search: the sample database,
    the fresh-constant supply and budget, and instrumentation."""

    def __init__(
        self,
        sample: SampleDatabase,
        max_fresh_constants: Optional[int] = None,
        existential_reuse: bool = True,
        reserved_names: Optional[Set[str]] = None,
    ):
        self.sample = sample
        self.max_fresh_constants = max_fresh_constants
        self.existential_reuse = existential_reuse
        self._reserved = reserved_names or set()
        self._counter = itertools.count(1)
        self.fresh_constants_used = 0
        self.budget_exhausted = False
        self.assertions = 0
        self.backtracks = 0
        self.trace: Optional[List[str]] = None

    def log(self, message: str) -> None:
        if self.trace is not None:
            self.trace.append(message)

    def new_constant(self) -> Optional[Constant]:
        """A fresh constant, or None when the budget is spent (the
        branch is pruned and the exhaustion is recorded so iterative
        deepening knows the bounded search was incomplete)."""
        if (
            self.max_fresh_constants is not None
            and self.fresh_constants_used >= self.max_fresh_constants
        ):
            self.budget_exhausted = True
            return None
        while True:
            name = f"c{next(self._counter)}"
            if name not in self._reserved:
                break
        self.fresh_constants_used += 1
        return Constant(name)

    def release_constants(self, count: int) -> None:
        """Give back budget on backtracking out of a fresh branch."""
        self.fresh_constants_used -= count


def enforce(
    context: EnforcementContext, formula: Formula, level: int
) -> Iterator[None]:
    """Yield once per way of making *formula* true in the sample
    database; assertions are undone when the generator resumes or
    closes."""
    sample = context.sample
    if sample.evaluate(formula):
        yield
        return
    if isinstance(formula, (TrueFormula,)):  # pragma: no cover - evaluate hit
        yield
        return
    if isinstance(formula, FalseFormula):
        return
    if isinstance(formula, Literal):
        if not formula.positive:
            # Complementary fact present; unenforceable without undoing
            # earlier choices — fail and let backtracking do that.
            return
        atom = formula.atom
        if not atom.is_ground():
            raise ValueError(f"cannot enforce non-ground literal {formula}")
        mark = sample.mark()
        if sample.assume(atom, level):
            context.assertions += 1
            context.log(f"assert {atom} @L{level}")
            yield
            sample.undo_to(mark)
            context.backtracks += 1
            context.log(f"retract {atom}")
        return
    if isinstance(formula, And):
        yield from _enforce_sequence(context, formula.children, level)
        return
    if isinstance(formula, Or):
        for child in formula.children:
            yield from enforce(context, child, level)
        return
    if isinstance(formula, Forall):
        yield from _enforce_universal(context, formula, level)
        return
    if isinstance(formula, Exists):
        yield from _enforce_existential(context, formula, level)
        return
    raise ValueError(f"cannot enforce node {formula!r}")


def _enforce_sequence(
    context: EnforcementContext,
    formulas: Sequence[Formula],
    level: int,
) -> Iterator[None]:
    """Enforce all formulas, chaining choice points."""
    if not formulas:
        yield
        return
    head, tail = formulas[0], formulas[1:]
    for _ in enforce(context, head, level):
        yield from _enforce_sequence(context, tail, level)


def enforce_all(
    context: EnforcementContext,
    formulas: Sequence[Formula],
    level: int,
) -> Iterator[None]:
    """The paper's ``enforce_set``: satisfy every formula in the set
    (re-checking each, since earlier enforcements may have satisfied
    later formulas along the way)."""
    yield from _enforce_sequence(context, list(formulas), level)


def _enforce_universal(
    context: EnforcementContext, formula: Forall, level: int
) -> Iterator[None]:
    sample = context.sample
    witnesses = [
        answer
        for answer in sample.answers_conjunction(formula.restriction)
        if not sample.evaluate(formula.matrix, answer)
    ]
    pending = [
        _ground_matrix(formula, answer) for answer in witnesses
    ]
    yield from _enforce_sequence(context, pending, level)


def _ground_matrix(formula: Forall, answer: Substitution) -> Formula:
    restricted = answer.restrict(
        set(formula.variables_tuple) | formula.matrix.free_variables()
    )
    return formula.matrix.substitute(restricted)


_FRESH = object()  # marker: this variable gets a newly invented constant


def _enforce_existential(
    context: EnforcementContext, formula: Exists, level: int
) -> Iterator[None]:
    """Alternatives for ∃X̄[R ∧ Q], in order:

    1. the paper's reuse: Qσ for each σ with Rσ already true;
    2. witness tuples over the active domain, mixing in fresh constants
       as needed (fewest-fresh first) — a superset of the paper's
       restriction-driven instances that keeps the search complete for
       finite satisfiability regardless of enforcement order;
    3. the classical tableaux step — all variables fresh — comes out as
       the last tuple of (2).

    With ``existential_reuse=False`` only the all-fresh tuple is tried.
    """
    sample = context.sample
    variables = formula.variables_tuple
    tried: Set[tuple] = set()
    if context.existential_reuse:
        for answer in list(sample.answers_conjunction(formula.restriction)):
            witness = tuple(answer.apply_term(v) for v in variables)
            if witness in tried:
                continue
            tried.add(witness)
            yield from enforce(
                context, formula.matrix.substitute(answer), level
            )
        candidate_domain: List = sorted(
            sample.constants(), key=lambda c: str(c.value)
        )
        per_variable = [candidate_domain + [_FRESH] for _ in variables]
    else:
        per_variable = [[_FRESH] for _ in variables]
    combos = sorted(
        itertools.product(*per_variable),
        key=lambda combo: sum(1 for c in combo if c is _FRESH),
    )
    for combo in combos:
        if combo in tried:
            continue
        tried.add(combo)
        assignment: Dict[Variable, Constant] = {}
        allocated = 0
        exhausted = False
        for variable, candidate in zip(variables, combo):
            if candidate is _FRESH:
                constant = context.new_constant()
                if constant is None:
                    exhausted = True
                    break
                allocated += 1
                assignment[variable] = constant
            else:
                assignment[variable] = candidate
        if exhausted:
            context.release_constants(allocated)
            continue
        theta = Substitution(assignment)
        if allocated:
            context.log(
                "fresh "
                + ", ".join(
                    f"{v}={c}"
                    for v, c in sorted(
                        assignment.items(), key=lambda item: item[0].name
                    )
                )
            )
        parts: List[Formula] = [
            Literal(atom.substitute(theta)) for atom in formula.restriction
        ]
        parts.append(formula.matrix.substitute(theta))
        yield from _enforce_sequence(context, parts, level)
        context.release_constants(allocated)

"""Classical-tableaux baseline ([SMUL 68], [KUNG 84]).

Identical machinery, but existential quantifiers are enforced with a
fresh constant *only* — no reuse of constants already in the sample
database. Section 4, point 2: "the tableaux method considers a single
instance only, namely the one obtained through replacing every variable
by a newly introduced constant. Consequently, the tableaux method is
not complete for finite satisfiability."

The E7 benchmark demonstrates exactly that: axiom sets whose finite
models require constant reuse (a one-element loop for
``∀X p(X) → ∃Y p(Y) ∧ r(X,Y)``) drive this baseline through its entire
fresh-constant budget while the full checker stops immediately.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datalog.program import Program
from repro.satisfiability.checker import SatisfiabilityChecker


class TableauxChecker(SatisfiabilityChecker):
    """The fresh-constants-only variant of the checker."""

    def __init__(
        self,
        constraints: Sequence,
        program: Optional[Program] = None,
        trace: bool = False,
    ):
        super().__init__(
            constraints,
            program,
            existential_reuse=False,
            trace=trace,
        )

"""The sample database: a small, trail-backed fact set.

This is the temporary database the satisfiability procedure constructs
(Section 4): entirely in main memory, independent of any stored data,
and undoable — ``assume`` plays the paper's assert-with-automatic-
retract-on-backtracking Prolog predicate, realized with an explicit
trail and marks instead of Prolog's choice points.

Evaluation is over the explicit facts only (see
:mod:`repro.satisfiability.clauses` for why rules do not derive here).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.config import EngineConfig
from repro.datalog.facts import FactStore
from repro.datalog.program import Program
from repro.datalog.query import QueryEngine
from repro.logic.formulas import Atom, Formula
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant

_EMPTY_PROGRAM = Program()


class SampleDatabase:
    """Trail-backed fact store with generation-level bookkeeping."""

    def __init__(self):
        self.facts = FactStore()
        self._trail: List[Atom] = []
        self.generation: Dict[Atom, int] = {}
        # One engine suffices: with no rules there is nothing to
        # materialize, so the engine always reads the live store.
        self._engine = QueryEngine(
            self.facts, _EMPTY_PROGRAM, config=EngineConfig(strategy="lazy")
        )

    # -- trail ------------------------------------------------------------------

    def mark(self) -> int:
        """A restore point for :meth:`undo_to`."""
        return len(self._trail)

    def assume(self, fact: Atom, level: int) -> bool:
        """Assert *fact* (ground), recording it on the trail. Returns
        False (and records nothing) when the fact is already present."""
        if not self.facts.add(fact):
            return False
        self._trail.append(fact)
        self.generation[fact] = level
        return True

    def undo_to(self, mark: int) -> None:
        """Retract everything assumed since *mark* (backtracking)."""
        while len(self._trail) > mark:
            fact = self._trail.pop()
            self.facts.remove(fact)
            del self.generation[fact]

    def generated_at(self, level: int) -> List[Atom]:
        """Facts assumed at exactly the given generation level, in
        assertion order."""
        return [f for f in self._trail if self.generation[f] == level]

    # -- evaluation ----------------------------------------------------------------

    def evaluate(
        self, formula: Formula, binding: Substitution = Substitution.empty()
    ) -> bool:
        return self._engine.evaluate(formula, binding)

    def answers_conjunction(
        self,
        atoms: Sequence[Atom],
        binding: Substitution = Substitution.empty(),
    ) -> Iterator[Substitution]:
        return self._engine.answers_conjunction(atoms, binding)

    def holds(self, atom: Atom) -> bool:
        return self.facts.contains(atom)

    @property
    def lookup_count(self) -> int:
        return self._engine.lookup_count

    # -- inspection ------------------------------------------------------------------

    def constants(self) -> Set[Constant]:
        return self.facts.constants()

    def snapshot(self) -> FactStore:
        """An independent copy of the current facts (the found model)."""
        return self.facts.copy()

    def model_snapshot(self) -> FactStore:
        """The canonical model of the current state. For the base class
        (no derivation) this is just the facts."""
        return self.facts.copy()

    def __len__(self) -> int:
        return len(self.facts)

    def __repr__(self) -> str:
        return f"SampleDatabase({len(self.facts)} facts)"


class DerivingSampleDatabase(SampleDatabase):
    """The paper-literal variant: rules *derive* during evaluation.

    Evaluation answers against the canonical model of (facts ∪ program),
    recomputed lazily per trail version — the Prolog-with-NAF behaviour
    of the paper's Section 4 code. Kept as an ablation; see
    :mod:`repro.satisfiability.clauses` for why the default checker
    evaluates over explicit facts instead.
    """

    def __init__(self, program: Program):
        super().__init__()
        self.program = program
        self._version = 0
        self._cached_engine: Optional[QueryEngine] = None
        self._cached_version = -1

    def assume(self, fact: Atom, level: int) -> bool:
        added = super().assume(fact, level)
        if added:
            self._version += 1
        return added

    def undo_to(self, mark: int) -> None:
        before = len(self._trail)
        super().undo_to(mark)
        if len(self._trail) != before:
            self._version += 1

    def _deriving_engine(self) -> QueryEngine:
        if self._cached_version != self._version:
            self._cached_engine = QueryEngine(
                self.facts, self.program, config=EngineConfig(strategy="lazy")
            )
            self._cached_version = self._version
        return self._cached_engine

    def evaluate(
        self, formula: Formula, binding: Substitution = Substitution.empty()
    ) -> bool:
        return self._deriving_engine().evaluate(formula, binding)

    def answers_conjunction(
        self,
        atoms: Sequence[Atom],
        binding: Substitution = Substitution.empty(),
    ) -> Iterator[Substitution]:
        return self._deriving_engine().answers_conjunction(atoms, binding)

    def holds(self, atom: Atom) -> bool:
        return self._deriving_engine().holds(atom)

    def model_snapshot(self) -> FactStore:
        from repro.datalog.bottomup import compute_model

        return compute_model(self.facts.copy(), self.program)

    def __repr__(self) -> str:
        return (
            f"DerivingSampleDatabase({len(self.facts)} facts, "
            f"{len(self.program)} rules)"
        )

"""The satisfiability checking procedure (Section 4).

Level-saturation model generation:

* level 0 enforces the constraints violated in the empty sample
  database (only existentially-opened constraints can be — every
  universal holds on no facts);
* level i determines, via simplified instances relevant to the facts
  generated at level i−1, which constraint instances the last round of
  insertions violated, and enforces those;
* the search succeeds when a level finds nothing violated — the sample
  facts then form a finite model — and fails when every enforcement
  alternative has been exhausted, which proves unsatisfiability.

Termination: the raw procedure diverges when all models are infinite
(finite satisfiability is only semi-decidable). A fresh-constant budget
bounds any single search; :meth:`SatisfiabilityChecker.check` with
``deepening=True`` (default) iterates the budget upward, preserving
completeness for finite satisfiability *and* for unsatisfiability
within the configured limits, and reports ``unknown`` only when a
bounded search was actually cut short at the largest budget.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.datalog.database import Constraint
from repro.datalog.facts import FactStore
from repro.datalog.program import Program
from repro.integrity.instances import simplified_instances
from repro.integrity.relevance import RelevanceIndex
from repro.logic.formulas import Atom, Exists, Formula, Literal
from repro.logic.normalize import normalize_constraint
from repro.logic.parser import parse_formula, parse_program
from repro.satisfiability.clauses import rules_as_constraints
from repro.satisfiability.enforce import (
    EnforcementContext,
    enforce_all,
)
from repro.satisfiability.sample_db import SampleDatabase

SATISFIABLE = "satisfiable"
UNSATISFIABLE = "unsatisfiable"
UNKNOWN = "unknown"


class SatResult:
    """Outcome of a satisfiability check."""

    __slots__ = ("status", "model", "stats", "trace")

    def __init__(
        self,
        status: str,
        model: Optional[FactStore],
        stats: Dict[str, int],
        trace: Optional[List[str]] = None,
    ):
        self.status = status
        self.model = model
        self.stats = stats
        self.trace = trace

    @property
    def satisfiable(self) -> bool:
        return self.status == SATISFIABLE

    @property
    def unsatisfiable(self) -> bool:
        return self.status == UNSATISFIABLE

    def __repr__(self) -> str:
        size = f", model of {len(self.model)} facts" if self.model else ""
        return f"SatResult({self.status}{size}, stats={self.stats})"


class SatisfiabilityChecker:
    """Finite-satisfiability checker for a rule + constraint set."""

    def __init__(
        self,
        constraints: Sequence[Union[str, Formula, Constraint]],
        program: Optional[Program] = None,
        existential_reuse: bool = True,
        trace: bool = False,
        rule_treatment: str = "clausal",
    ):
        """``constraints`` accepts surface syntax, formulas, or
        ready-made :class:`Constraint` objects; ``program`` contributes
        rules according to *rule_treatment*:

        ``"clausal"`` (default)
            every rule becomes its clausal completion constraint and
            the sample database holds explicit facts only — the
            SATCHMO discipline, complete for finite satisfiability;

        ``"paper"``
            the literal Section 4 setup: rules *derive* during
            evaluation (Prolog-NAF style), completion constraints are
            added only for rules with negative bodies, and violation
            detection follows induced updates (Proposition 2). Kept as
            an ablation — it loses finite-satisfiability completeness
            on rules with negation (see the clausal-vs-paper tests).

        ``existential_reuse=False`` disables the constant-reuse
        alternative, reproducing classical tableaux behaviour
        ([SMUL 68] / [KUNG 84]) — incomplete for finite satisfiability;
        kept as the baseline the benchmarks compare against.
        """
        if rule_treatment not in ("clausal", "paper"):
            raise ValueError(
                f"rule_treatment must be 'clausal' or 'paper', "
                f"got {rule_treatment!r}"
            )
        self.rule_treatment = rule_treatment
        self.constraints: List[Constraint] = []
        counter = 1
        for item in constraints:
            if isinstance(item, Constraint):
                self.constraints.append(item)
                continue
            formula = parse_formula(item) if isinstance(item, str) else item
            normalized = normalize_constraint(formula)
            self.constraints.append(
                Constraint(
                    f"s{counter}",
                    normalized,
                    item if isinstance(item, str) else None,
                )
            )
            counter += 1
        self.program = program if program is not None else Program()
        if rule_treatment == "clausal":
            self.constraints.extend(rules_as_constraints(self.program))
        else:
            negation_rules = [
                rule for rule in self.program.rules if rule.negative_body()
            ]
            self.constraints.extend(
                rules_as_constraints(Program(negation_rules))
            )
        self.existential_reuse = existential_reuse
        self._trace_enabled = trace
        self.relevance = RelevanceIndex(self.constraints)
        self._reserved_names = {
            str(c.value)
            for constraint in self.constraints
            for c in _formula_constants(constraint.formula)
        }
        self._insertion_instances = self._precompile_instances()

    def _precompile_instances(self):
        """Pattern-level simplified instances per trigger signature —
        the paper's compile-time precomputation (§3.3.1). The explicit
        sample only grows, so insertion triggers (negative constraint
        occurrences) always matter; under the paper-literal rule
        treatment, derived facts can also *disappear* (stratified
        negation is nonmonotonic), so deletion triggers are compiled
        too."""
        from repro.logic.formulas import walk_literals
        from repro.logic.terms import fresh_variable

        signatures = set()
        for constraint in self.constraints:
            for occurrence in walk_literals(constraint.formula):
                if not occurrence.positive or self.rule_treatment == "paper":
                    signatures.add(
                        (
                            occurrence.atom.pred,
                            occurrence.atom.arity,
                            not occurrence.positive,
                        )
                    )
        table = {}
        for pred, arity, positive_trigger in signatures:
            pattern = Literal(
                Atom(
                    pred,
                    tuple(
                        fresh_variable(f"U{i}") for i in range(arity)
                    ),
                ),
                positive_trigger,
            )
            instances = []
            for constraint in self.constraints:
                instances.extend(simplified_instances(constraint, pattern))
            table[(pred, arity, positive_trigger)] = instances
        return table

    @classmethod
    def from_source(cls, text: str, **kwargs) -> "SatisfiabilityChecker":
        """Build from surface syntax: rules become completion clauses,
        constraints are taken as-is; facts are not allowed (the sample
        database starts empty by definition)."""
        parsed = parse_program(text)
        if parsed.facts:
            raise ValueError(
                "satisfiability checking starts from an empty database; "
                f"remove facts: {parsed.facts[0]}"
            )
        program = Program.from_parsed(parsed.rules)
        return cls(list(parsed.constraints), program, **kwargs)

    # -- public API ----------------------------------------------------------------

    def check(
        self,
        max_fresh_constants: int = 12,
        max_levels: int = 200,
        deepening: bool = True,
    ) -> SatResult:
        """Decide satisfiability within the given budgets.

        With ``deepening`` the fresh-constant budget is iterated
        1, 2, …, ``max_fresh_constants`` — each bounded search is a
        complete exploration of the models reachable with that many
        invented constants, so the first success is a genuinely finite
        model and an exhausted search that never hit its budget proves
        unsatisfiability. Returns ``unknown`` only when the largest
        budget was itself exhausted somewhere in the search.
        """
        budgets: Iterable[Optional[int]]
        if deepening:
            budgets = range(0, max_fresh_constants + 1)
        else:
            budgets = [max_fresh_constants]
        totals: Dict[str, int] = {
            "assertions": 0,
            "backtracks": 0,
            "lookups": 0,
            "rounds": 0,
        }
        last_trace: Optional[List[str]] = None
        for budget in budgets:
            result = self._bounded_check(budget, max_levels)
            totals["assertions"] += result.stats["assertions"]
            totals["backtracks"] += result.stats["backtracks"]
            totals["lookups"] += result.stats["lookups"]
            totals["rounds"] += 1
            last_trace = result.trace
            if result.status == SATISFIABLE:
                stats = dict(result.stats)
                stats.update(totals)
                return SatResult(
                    SATISFIABLE, result.model, stats, result.trace
                )
            if result.status == UNSATISFIABLE:
                stats = dict(result.stats)
                stats.update(totals)
                return SatResult(UNSATISFIABLE, None, stats, result.trace)
            # unknown: budget exhausted somewhere — deepen.
        return SatResult(UNKNOWN, None, totals, last_trace)

    def _bounded_check(
        self, max_fresh_constants: Optional[int], max_levels: int
    ) -> SatResult:
        if self.rule_treatment == "paper":
            from repro.satisfiability.sample_db import DerivingSampleDatabase

            sample = DerivingSampleDatabase(self.program)
        else:
            sample = SampleDatabase()
        context = EnforcementContext(
            sample,
            max_fresh_constants=max_fresh_constants,
            existential_reuse=self.existential_reuse,
            reserved_names=self._reserved_names,
        )
        if self._trace_enabled:
            context.trace = []
        self._level_overflow = False
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 20000))
        try:
            found = self._search(context, 0, max_levels, None)
        finally:
            sys.setrecursionlimit(old_limit)
        stats = {
            "assertions": context.assertions,
            "backtracks": context.backtracks,
            "fresh_constants": context.fresh_constants_used,
            "lookups": sample.lookup_count,
        }
        if found:
            self._assert_model_sound(sample)
            model = sample.model_snapshot()
            return SatResult(SATISFIABLE, model, stats, context.trace)
        if context.budget_exhausted or self._level_overflow:
            return SatResult(UNKNOWN, None, stats, context.trace)
        return SatResult(UNSATISFIABLE, None, stats, context.trace)

    # -- the level-saturation search ---------------------------------------------------

    def _search(
        self,
        context: EnforcementContext,
        level: int,
        max_levels: int,
        previous_model: Optional[FactStore],
    ) -> bool:
        if level > max_levels:
            self._level_overflow = True
            return False
        violated = self._violated_instances(
            context.sample, level, previous_model
        )
        if not violated:
            return True
        context.log(
            f"level {level}: {len(violated)} violated instance(s)"
        )
        # Paper mode tracks induced updates via model snapshots taken
        # before each level's enforcement (Proposition 2); clausal mode
        # reads the trail directly (Proposition 1 suffices).
        snapshot = (
            context.sample.model_snapshot()
            if self.rule_treatment == "paper"
            else None
        )
        for _ in enforce_all(context, violated, level):
            if self._search(context, level + 1, max_levels, snapshot):
                return True
        return False

    def _violated_instances(
        self,
        sample: SampleDatabase,
        level: int,
        previous_model: Optional[FactStore],
    ) -> List[Formula]:
        """The paper's ``is_violated``: at level 0, the constraints
        violated outright; afterwards, the violated simplified instances
        of constraints relevant to the last level's changes — explicit
        insertions in clausal mode, the canonical-model diff (explicit
        plus induced updates, Proposition 2) in paper mode."""
        out: List[Formula] = []
        seen: Set[Formula] = set()
        if level == 0:
            for constraint in self.constraints:
                if not sample.evaluate(constraint.formula):
                    out.append(constraint.formula)
            return out
        if self.rule_treatment == "paper" and previous_model is not None:
            current = sample.model_snapshot()
            changes = [
                Literal(atom, True)
                for atom in current
                if not previous_model.contains(atom)
            ]
            changes.extend(
                Literal(atom, False)
                for atom in previous_model
                if not current.contains(atom)
            )
        else:
            changes = [
                Literal(fact, True) for fact in sample.generated_at(level - 1)
            ]
        from repro.logic.unify import match

        for change in changes:
            key = (change.atom.pred, change.atom.arity, change.positive)
            for instance in self._insertion_instances.get(key, ()):
                binding = match(instance.trigger.atom, change.atom)
                if binding is None:
                    continue
                ground = instance.instantiate(binding)
                if ground in seen:
                    continue
                seen.add(ground)
                if not sample.evaluate(ground):
                    out.append(ground)
        return out

    # -- internal verification ------------------------------------------------------------

    def _assert_model_sound(self, sample: SampleDatabase) -> None:
        """Belt-and-braces: the final state must satisfy every
        constraint outright (full sweep, cheap on sample scale)."""
        for constraint in self.constraints:
            if not sample.evaluate(constraint.formula):  # pragma: no cover
                raise AssertionError(
                    f"internal error: produced model violates "
                    f"{constraint.id}: {constraint.formula}"
                )


def check_satisfiability(
    source: str, **kwargs
) -> SatResult:
    """One-shot convenience: parse rules + constraints, run the checker.

    Keyword arguments are split between the constructor
    (``existential_reuse``, ``trace``) and :meth:`check`
    (``max_fresh_constants``, ``max_levels``, ``deepening``).
    """
    constructor_keys = {"existential_reuse", "trace"}
    constructor_kwargs = {
        k: v for k, v in kwargs.items() if k in constructor_keys
    }
    check_kwargs = {
        k: v for k, v in kwargs.items() if k not in constructor_keys
    }
    checker = SatisfiabilityChecker.from_source(text=source, **constructor_kwargs)
    return checker.check(**check_kwargs)


def _formula_constants(formula: Formula):
    from repro.logic.formulas import (
        And,
        FalseFormula,
        Forall,
        Or,
        TrueFormula,
    )
    from repro.logic.terms import Constant

    if isinstance(formula, Literal):
        return [a for a in formula.atom.args if isinstance(a, Constant)]
    if isinstance(formula, (TrueFormula, FalseFormula)):
        return []
    if isinstance(formula, (And, Or)):
        out = []
        for child in formula.children:
            out.extend(_formula_constants(child))
        return out
    if isinstance(formula, (Exists, Forall)):
        out = []
        if formula.restriction:
            for atom in formula.restriction:
                out.extend(
                    a for a in atom.args if isinstance(a, Constant)
                )
        out.extend(_formula_constants(formula.matrix))
        return out
    raise ValueError(f"unexpected node {formula!r}")

"""Constraint satisfiability checking (Sections 4–5 of the paper).

A model-generation procedure that decides whether rules + constraints
admit a finite model: it grows an in-memory *sample database* by
enforcing violated constraint instances (detected with the integrity
machinery of Section 3), explores alternatives by backtracking, and
organizes work in level-saturation order. Complete for unsatisfiability
and — thanks to the constant-reuse alternative for existentials — for
finite satisfiability; it can diverge only when every model is infinite.
"""

from repro.satisfiability.clauses import rule_clause, rules_as_constraints
from repro.satisfiability.sample_db import SampleDatabase
from repro.satisfiability.enforce import EnforcementContext, enforce, enforce_all
from repro.satisfiability.checker import (
    SatisfiabilityChecker,
    SatResult,
    check_satisfiability,
)
from repro.satisfiability.tableaux import TableauxChecker
from repro.satisfiability.bruteforce import (
    enumerate_models,
    find_finite_model,
    is_model,
)

__all__ = [
    "EnforcementContext",
    "SampleDatabase",
    "SatResult",
    "SatisfiabilityChecker",
    "TableauxChecker",
    "check_satisfiability",
    "enforce",
    "enforce_all",
    "enumerate_models",
    "find_finite_model",
    "is_model",
    "rule_clause",
    "rules_as_constraints",
]

"""Rules as clauses: the paper's completion constraints, generalized.

Section 4 requires, "for completeness reasons", that every rule
``H <- A₁ ∧ … ∧ Aₙ ∧ ¬B₁ ∧ … ∧ ¬Bₘ`` contributes the constraint

    ∀ X₁…X_k [ ¬A₁ ∨ … ∨ ¬Aₙ ∨ B₁ ∨ … ∨ Bₘ ∨ H ]

— its classical clausal reading. The paper adds these only for rules
*with* negative body literals and lets Prolog derive heads of positive
rules during evaluation. We convert **all** rules and evaluate the
sample database over explicit facts only (the SATCHMO discipline of
[MANT 87a/b], which this procedure is based on). For positive rules the
two treatments coincide — enforcing ¬A ∨ H asserts exactly what
derivation would derive. For rules with negation, derivation-based
evaluation silently satisfies the completion constraint through the
derived head and thereby *never* explores the "make Bⱼ true instead"
alternative, losing finite-satisfiability completeness; see
``tests/satisfiability/test_checker.py::TestNegationRuleAlternatives``
for the counterexample that motivates this deviation.
"""

from __future__ import annotations

from typing import List

from repro.datalog.database import Constraint
from repro.datalog.program import Program, Rule
from repro.logic.formulas import Forall, Formula, Literal, Or
from repro.logic.safety import check_constraint_safety


def rule_clause(rule: Rule) -> Formula:
    """The clausal (completion) constraint of a rule.

    Range restriction guarantees the positive body atoms cover every
    variable, so the result is a well-formed restricted universal.
    """
    restriction = [l.atom for l in rule.positive_body()]
    disjuncts: List[Formula] = [
        Literal(l.atom, True) for l in rule.negative_body()
    ]
    disjuncts.append(Literal(rule.head, True))
    variables = sorted(
        rule.variables(), key=lambda v: v.name
    )
    if not variables:
        # Ground rule: the clause is simply body -> head, no quantifier.
        negated = [Literal(a, False) for a in restriction]
        return Or.make(negated + disjuncts)
    formula = Forall(variables, restriction, Or.make(disjuncts))
    check_constraint_safety(formula)
    return formula


def rules_as_constraints(
    program: Program, id_prefix: str = "rule"
) -> List[Constraint]:
    """Every rule of *program* as a named clausal constraint."""
    out: List[Constraint] = []
    for number, rule in enumerate(program.rules, start=1):
        out.append(
            Constraint(
                f"{id_prefix}{number}", rule_clause(rule), source=str(rule)
            )
        )
    return out

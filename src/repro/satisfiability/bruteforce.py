"""Brute-force finite-model enumeration — the ground-truth oracle.

For tiny signatures the finite-satisfiability question can be settled
exhaustively: enumerate every fact set over a bounded constant domain
and test all constraints (rules participating as their clausal
completions, matching the checker's semantics). The property tests use
this to validate the model-generation procedure's verdicts.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.config import EngineConfig
from repro.datalog.facts import FactStore
from repro.datalog.program import Program
from repro.datalog.query import QueryEngine
from repro.datalog.database import Constraint
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Literal,
    Or,
    TrueFormula,
)
from repro.logic.terms import Constant
from repro.satisfiability.clauses import rules_as_constraints

_EMPTY = Program()


def _signature(formulas: Sequence[Formula]) -> Dict[str, int]:
    """Predicate name -> arity, over all formulas."""
    out: Dict[str, int] = {}

    def walk(formula: Formula) -> None:
        if isinstance(formula, Literal):
            out[formula.atom.pred] = formula.atom.arity
        elif isinstance(formula, (And, Or)):
            for child in formula.children:
                walk(child)
        elif isinstance(formula, (Exists, Forall)):
            for atom in formula.restriction or ():
                out[atom.pred] = atom.arity
            walk(formula.matrix)
        elif isinstance(formula, (TrueFormula, FalseFormula)):
            pass
        else:
            raise ValueError(f"unexpected node {formula!r}")

    for formula in formulas:
        walk(formula)
    return out


def _formula_constants(formulas: Sequence[Formula]) -> Set[Constant]:
    out: Set[Constant] = set()

    def walk(formula: Formula) -> None:
        if isinstance(formula, Literal):
            out.update(
                a for a in formula.atom.args if isinstance(a, Constant)
            )
        elif isinstance(formula, (And, Or)):
            for child in formula.children:
                walk(child)
        elif isinstance(formula, (Exists, Forall)):
            for atom in formula.restriction or ():
                out.update(a for a in atom.args if isinstance(a, Constant))
            walk(formula.matrix)

    for formula in formulas:
        walk(formula)
    return out


def is_model(facts: FactStore, constraints: Sequence[Constraint]) -> bool:
    """Do the explicit *facts* satisfy every constraint?"""
    engine = QueryEngine(facts, _EMPTY, config=EngineConfig(strategy="lazy"))
    return all(engine.evaluate(c.formula) for c in constraints)


def enumerate_models(
    constraints: Sequence[Constraint],
    program: Optional[Program] = None,
    max_domain_size: int = 2,
    max_models: Optional[int] = None,
) -> Iterator[FactStore]:
    """Yield every fact set over domains of size 1..max_domain_size that
    satisfies all constraints (and all rule clauses).

    Exponential — use only on test-sized signatures.
    """
    all_constraints = list(constraints)
    if program is not None:
        all_constraints.extend(rules_as_constraints(program))
    formulas = [c.formula for c in all_constraints]
    signature = _signature(formulas)
    mentioned = sorted(
        _formula_constants(formulas), key=lambda c: str(c.value)
    )
    yielded = 0
    smallest = max(1, len(mentioned))
    for size in range(smallest, max(smallest, max_domain_size) + 1):
        domain: List[Constant] = list(mentioned)
        extra_index = 1
        while len(domain) < size:
            candidate = Constant(f"d{extra_index}")
            extra_index += 1
            if candidate not in domain:
                domain.append(candidate)
        possible_facts: List[Atom] = []
        for pred, arity in sorted(signature.items()):
            for args in itertools.product(domain, repeat=arity):
                possible_facts.append(Atom(pred, args))
        for bits in itertools.product((False, True), repeat=len(possible_facts)):
            facts = FactStore(
                atom
                for atom, present in zip(possible_facts, bits)
                if present
            )
            if is_model(facts, all_constraints):
                yield facts
                yielded += 1
                if max_models is not None and yielded >= max_models:
                    return


def find_finite_model(
    constraints: Sequence[Constraint],
    program: Optional[Program] = None,
    max_domain_size: int = 2,
) -> Optional[FactStore]:
    """The first model found, or None if none exists within the bound."""
    for model in enumerate_models(
        constraints, program, max_domain_size, max_models=1
    ):
        return model
    return None

"""Formula representation: atoms, literals, and first-order formulas.

The AST has two layers of generality:

* *Input layer* — what the parser produces: arbitrary combinations of
  ``Not``, ``And``, ``Or``, ``Implies``, ``Iff`` and quantifiers whose
  bodies are any formula. This is how users naturally write constraints.

* *Normalized layer* — what the paper's algorithms consume (Section 2):
  rectified, negation normal form, miniscoped, ∨ distributed over ∧,
  and every quantifier in *restricted* form, i.e. ``Exists(vars, R, Q)``
  / ``Forall(vars, R, Q)`` where ``R`` is a conjunction of positive
  atoms covering all the quantified variables (the *range* or
  *restriction*) and ``Q`` is the remaining matrix.

The same node classes serve both layers: the quantifier classes carry
an explicit ``restriction`` slot which is ``None`` on the input layer
and a non-empty tuple of atoms after normalization.

All nodes are immutable and hashable, so simplified constraint
instances can be deduplicated with ``set`` — the moral equivalent of
the paper's Prolog ``setof``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Set, Tuple

from repro.logic.substitution import Substitution
from repro.logic.terms import Term, Variable


class Formula:
    """Abstract base of all formula nodes."""

    __slots__ = ()

    def variables(self) -> Set[Variable]:
        """All variables occurring in the formula (bound or free)."""
        out: Set[Variable] = set()
        self._collect_variables(out)
        return out

    def free_variables(self) -> Set[Variable]:
        out: Set[Variable] = set()
        self._collect_free(out, frozenset())
        return out

    def is_closed(self) -> bool:
        return not self.free_variables()

    def is_ground(self) -> bool:
        return not self.variables()

    # Subclasses implement these three.
    def _collect_variables(self, out: Set[Variable]) -> None:
        raise NotImplementedError

    def _collect_free(self, out: Set[Variable], bound: frozenset) -> None:
        raise NotImplementedError

    def substitute(self, subst: Substitution) -> "Formula":
        """Apply *subst* to free occurrences.

        Normalized constraints are rectified, so capture cannot occur;
        quantifier nodes still guard against binding their own variables
        as a safety net.
        """
        raise NotImplementedError


class Atom(Formula):
    """A predicate applied to terms, e.g. ``member(X, b)``."""

    __slots__ = ("pred", "args", "_hash")

    def __init__(self, pred: str, args: Iterable[Term] = ()):
        self.pred = pred
        self.args = tuple(args)
        self._hash = hash(("atom", pred, self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def signature(self) -> Tuple[str, int]:
        return (self.pred, len(self.args))

    def _collect_variables(self, out: Set[Variable]) -> None:
        for arg in self.args:
            if isinstance(arg, Variable):
                out.add(arg)

    def _collect_free(self, out: Set[Variable], bound: frozenset) -> None:
        for arg in self.args:
            if isinstance(arg, Variable) and arg not in bound:
                out.add(arg)

    def substitute(self, subst: Substitution) -> "Atom":
        if not subst:
            return self
        return Atom(self.pred, subst.apply_terms(self.args))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and self._hash == other._hash
            and self.pred == other.pred
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Atom({self!s})"

    def __str__(self) -> str:
        if not self.args:
            return self.pred
        return f"{self.pred}({', '.join(str(a) for a in self.args)})"


class Literal(Formula):
    """A positive or negative atom.

    Literals double as *single-fact updates* (Section 3): a positive
    literal denotes an insertion, a negative one a deletion.
    """

    __slots__ = ("atom", "positive", "_hash")

    def __init__(self, atom: Atom, positive: bool = True):
        self.atom = atom
        self.positive = positive
        self._hash = hash(("lit", atom, positive))

    @property
    def pred(self) -> str:
        return self.atom.pred

    @property
    def args(self) -> Tuple[Term, ...]:
        return self.atom.args

    @property
    def signature(self) -> Tuple[str, int]:
        return self.atom.signature

    def complement(self) -> "Literal":
        """The complementary literal (Definition 2 uses this to decide
        relevance of a constraint to an update)."""
        return Literal(self.atom, not self.positive)

    def _collect_variables(self, out: Set[Variable]) -> None:
        self.atom._collect_variables(out)

    def _collect_free(self, out: Set[Variable], bound: frozenset) -> None:
        self.atom._collect_free(out, bound)

    def substitute(self, subst: Substitution) -> "Literal":
        if not subst:
            return self
        return Literal(self.atom.substitute(subst), self.positive)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and self._hash == other._hash
            and self.positive == other.positive
            and self.atom == other.atom
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Literal({self!s})"

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"not {self.atom}"


class TrueFormula(Formula):
    """The constant ⊤."""

    __slots__ = ()

    def _collect_variables(self, out: Set[Variable]) -> None:
        pass

    def _collect_free(self, out: Set[Variable], bound: frozenset) -> None:
        pass

    def substitute(self, subst: Substitution) -> "TrueFormula":
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TrueFormula)

    def __hash__(self) -> int:
        return hash("true")

    def __repr__(self) -> str:
        return "TrueFormula()"

    def __str__(self) -> str:
        return "true"


class FalseFormula(Formula):
    """The constant ⊥."""

    __slots__ = ()

    def _collect_variables(self, out: Set[Variable]) -> None:
        pass

    def _collect_free(self, out: Set[Variable], bound: frozenset) -> None:
        pass

    def substitute(self, subst: Substitution) -> "FalseFormula":
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FalseFormula)

    def __hash__(self) -> int:
        return hash("false")

    def __repr__(self) -> str:
        return "FalseFormula()"

    def __str__(self) -> str:
        return "false"


TRUE = TrueFormula()
FALSE = FalseFormula()


class _NaryConnective(Formula):
    """Shared implementation of ``And`` / ``Or``."""

    __slots__ = ("children", "_hash")

    _symbol = "?"
    _tag = "?"

    def __init__(self, children: Iterable[Formula]):
        self.children = tuple(children)
        if len(self.children) < 2:
            raise ValueError(
                f"{type(self).__name__} needs at least two children; "
                f"use Formula directly or the make() helper"
            )
        self._hash = hash((self._tag, self.children))

    @classmethod
    def make(cls, children: Sequence[Formula]) -> Formula:
        """Smart constructor: flattens nesting and handles 0/1 children."""
        flat: list = []
        for child in children:
            if isinstance(child, cls):
                flat.extend(child.children)
            else:
                flat.append(child)
        if not flat:
            return TRUE if cls is And else FALSE
        if len(flat) == 1:
            return flat[0]
        return cls(flat)

    def _collect_variables(self, out: Set[Variable]) -> None:
        for child in self.children:
            child._collect_variables(out)

    def _collect_free(self, out: Set[Variable], bound: frozenset) -> None:
        for child in self.children:
            child._collect_free(out, bound)

    def substitute(self, subst: Substitution) -> Formula:
        if not subst:
            return self
        return type(self)(child.substitute(subst) for child in self.children)

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and self._hash == other._hash
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"{type(self).__name__}({', '.join(map(repr, self.children))})"

    def __str__(self) -> str:
        sym = f" {self._symbol} "
        return "(" + sym.join(str(c) for c in self.children) + ")"


class And(_NaryConnective):
    """N-ary conjunction."""

    __slots__ = ()
    _symbol = "and"
    _tag = "and"


class Or(_NaryConnective):
    """N-ary disjunction."""

    __slots__ = ()
    _symbol = "or"
    _tag = "or"


class Not(Formula):
    """Negation of an arbitrary formula (input layer only; after NNF the
    only negations left are inside :class:`Literal`)."""

    __slots__ = ("child", "_hash")

    def __init__(self, child: Formula):
        self.child = child
        self._hash = hash(("not", child))

    def _collect_variables(self, out: Set[Variable]) -> None:
        self.child._collect_variables(out)

    def _collect_free(self, out: Set[Variable], bound: frozenset) -> None:
        self.child._collect_free(out, bound)

    def substitute(self, subst: Substitution) -> "Not":
        if not subst:
            return self
        return Not(self.child.substitute(subst))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.child == other.child

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Not({self.child!r})"

    def __str__(self) -> str:
        return f"not {self.child}"


class Implies(Formula):
    """Implication (input layer; eliminated by normalization)."""

    __slots__ = ("antecedent", "consequent", "_hash")

    def __init__(self, antecedent: Formula, consequent: Formula):
        self.antecedent = antecedent
        self.consequent = consequent
        self._hash = hash(("implies", antecedent, consequent))

    def _collect_variables(self, out: Set[Variable]) -> None:
        self.antecedent._collect_variables(out)
        self.consequent._collect_variables(out)

    def _collect_free(self, out: Set[Variable], bound: frozenset) -> None:
        self.antecedent._collect_free(out, bound)
        self.consequent._collect_free(out, bound)

    def substitute(self, subst: Substitution) -> "Implies":
        if not subst:
            return self
        return Implies(
            self.antecedent.substitute(subst), self.consequent.substitute(subst)
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Implies)
            and self.antecedent == other.antecedent
            and self.consequent == other.consequent
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Implies({self.antecedent!r}, {self.consequent!r})"

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


class Iff(Formula):
    """Equivalence (input layer; eliminated by normalization)."""

    __slots__ = ("left", "right", "_hash")

    def __init__(self, left: Formula, right: Formula):
        self.left = left
        self.right = right
        self._hash = hash(("iff", left, right))

    def _collect_variables(self, out: Set[Variable]) -> None:
        self.left._collect_variables(out)
        self.right._collect_variables(out)

    def _collect_free(self, out: Set[Variable], bound: frozenset) -> None:
        self.left._collect_free(out, bound)
        self.right._collect_free(out, bound)

    def substitute(self, subst: Substitution) -> "Iff":
        if not subst:
            return self
        return Iff(self.left.substitute(subst), self.right.substitute(subst))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Iff)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Iff({self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} <-> {self.right})"


class _Quantifier(Formula):
    """Shared implementation of ``Exists`` / ``Forall``.

    ``restriction`` is ``None`` before normalization. Afterwards it is a
    non-empty tuple of positive :class:`Atom` such that every quantified
    variable occurs in at least one restriction atom — the Section 2
    well-formedness condition that buys domain independence.
    """

    __slots__ = ("variables_tuple", "restriction", "matrix", "_hash")

    _tag = "?"
    _name = "?"

    def __init__(
        self,
        variables: Iterable[Variable],
        restriction: Optional[Iterable[Atom]],
        matrix: Formula,
    ):
        self.variables_tuple = tuple(variables)
        if not self.variables_tuple:
            raise ValueError("quantifier must bind at least one variable")
        if len(set(self.variables_tuple)) != len(self.variables_tuple):
            raise ValueError("quantifier binds a variable twice")
        self.restriction = None if restriction is None else tuple(restriction)
        if self.restriction is not None and not self.restriction:
            raise ValueError("restriction, when present, must be non-empty")
        self.matrix = matrix
        self._hash = hash(
            (self._tag, self.variables_tuple, self.restriction, self.matrix)
        )

    @property
    def is_restricted(self) -> bool:
        return self.restriction is not None

    def restriction_conjunction(self) -> Formula:
        """The restriction as a formula (``And`` of positive atoms)."""
        if self.restriction is None:
            raise ValueError("quantifier has no restriction")
        return And.make([Literal(a) for a in self.restriction])

    def _collect_variables(self, out: Set[Variable]) -> None:
        out.update(self.variables_tuple)
        if self.restriction:
            for atom in self.restriction:
                atom._collect_variables(out)
        self.matrix._collect_variables(out)

    def _collect_free(self, out: Set[Variable], bound: frozenset) -> None:
        inner_bound = bound | frozenset(self.variables_tuple)
        if self.restriction:
            for atom in self.restriction:
                atom._collect_free(out, inner_bound)
        self.matrix._collect_free(out, inner_bound)

    def substitute(self, subst: Substitution) -> Formula:
        if not subst:
            return self
        shielded = subst.without(self.variables_tuple)
        if not shielded:
            return self
        new_restriction = (
            None
            if self.restriction is None
            else tuple(a.substitute(shielded) for a in self.restriction)
        )
        return type(self)(
            self.variables_tuple, new_restriction, self.matrix.substitute(shielded)
        )

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and self._hash == other._hash
            and self.variables_tuple == other.variables_tuple
            and self.restriction == other.restriction
            and self.matrix == other.matrix
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({list(self.variables_tuple)!r}, "
            f"{self.restriction!r}, {self.matrix!r})"
        )

    def __str__(self) -> str:
        var_list = ", ".join(v.name for v in self.variables_tuple)
        if self.restriction is None:
            return f"{self._name} [{var_list}]: {self.matrix}"
        restr = " and ".join(str(a) for a in self.restriction)
        return f"{self._name}([{var_list}], {restr}, {self.matrix})"


class Exists(_Quantifier):
    """Existential quantifier; restricted form is
    ``∃ X̄ [A₁ ∧ … ∧ Aₘ ∧ Q]``."""

    __slots__ = ()
    _tag = "exists"
    _name = "exists"


class Forall(_Quantifier):
    """Universal quantifier; restricted form is
    ``∀ X̄ [¬A₁ ∨ … ∨ ¬Aₘ ∨ Q]``."""

    __slots__ = ()
    _tag = "forall"
    _name = "forall"


def conjuncts(formula: Formula) -> Tuple[Formula, ...]:
    """The top-level conjuncts of a formula (itself, if not an And)."""
    if isinstance(formula, And):
        return formula.children
    return (formula,)


def disjuncts(formula: Formula) -> Tuple[Formula, ...]:
    """The top-level disjuncts of a formula (itself, if not an Or)."""
    if isinstance(formula, Or):
        return formula.children
    return (formula,)


def walk_literals(formula: Formula) -> Iterator[Literal]:
    """Yield every literal occurrence in a normalized (NNF) formula.

    Restriction atoms of quantifiers are yielded as literals with the
    polarity they carry in the unfolded reading: positive under
    ``Exists``, negative under ``Forall`` (since the restricted-universal
    reading is ``¬A₁ ∨ … ∨ Q``).
    """
    if isinstance(formula, Literal):
        yield formula
    elif isinstance(formula, Atom):
        yield Literal(formula)
    elif isinstance(formula, (And, Or)):
        for child in formula.children:
            yield from walk_literals(child)
    elif isinstance(formula, Exists):
        if formula.restriction:
            for atom in formula.restriction:
                yield Literal(atom, True)
        yield from walk_literals(formula.matrix)
    elif isinstance(formula, Forall):
        if formula.restriction:
            for atom in formula.restriction:
                yield Literal(atom, False)
        yield from walk_literals(formula.matrix)
    elif isinstance(formula, (TrueFormula, FalseFormula)):
        return
    elif isinstance(formula, Not):
        # NNF guarantees Not only wraps atoms.
        if isinstance(formula.child, Atom):
            yield Literal(formula.child, False)
        else:
            raise ValueError(f"walk_literals requires NNF, got {formula!r}")
    else:
        raise ValueError(f"walk_literals: unexpected node {formula!r}")

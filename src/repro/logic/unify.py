"""Unification, matching and subsumption for the function-free language.

Because terms are only constants and variables, unification here is the
simple flat case — no occurs-check subtleties, no recursion into
subterms. That makes ``mgu`` cheap enough to sit in the inner loop of
relevance testing (Definition 2) and potential-update generation
(Definition 5).
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.logic.formulas import Atom, Literal
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable, fresh_variable

Unifiable = Union[Atom, Literal]


def _atom_of(x: Unifiable) -> Atom:
    return x.atom if isinstance(x, Literal) else x


def mgu(left: Unifiable, right: Unifiable) -> Optional[Substitution]:
    """Most general unifier of two atoms (or two literals of equal sign),
    or ``None`` if they do not unify.

    Literals unify only when their polarities agree; to test relevance of
    a constraint literal to an update, unify with the update's
    ``complement()`` as Definition 2 prescribes.
    """
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.positive != right.positive:
            return None
    la, ra = _atom_of(left), _atom_of(right)
    if la.pred != ra.pred or la.arity != ra.arity:
        return None
    subst = Substitution.empty()
    for lt, rt in zip(la.args, ra.args):
        lt = subst.apply_term(lt)
        rt = subst.apply_term(rt)
        if lt == rt:
            continue
        if isinstance(lt, Variable):
            subst = subst.compose(Substitution({lt: rt}))
        elif isinstance(rt, Variable):
            subst = subst.compose(Substitution({rt: lt}))
        else:
            return None  # distinct constants
    return subst


def unifiable(left: Unifiable, right: Unifiable) -> bool:
    """True iff the two atoms/literals unify."""
    return mgu(left, right) is not None


def match(pattern: Unifiable, target: Unifiable) -> Optional[Substitution]:
    """One-way matching: a substitution σ with ``pattern σ == target``,
    binding only variables of *pattern*, or ``None``.

    Used when filtering stored facts against a query literal: the fact is
    ground, so full unification would be wasted work.
    """
    if isinstance(pattern, Literal) and isinstance(target, Literal):
        if pattern.positive != target.positive:
            return None
    pa, ta = _atom_of(pattern), _atom_of(target)
    if pa.pred != ta.pred or pa.arity != ta.arity:
        return None
    bindings = {}
    for pt, tt in zip(pa.args, ta.args):
        if isinstance(pt, Variable):
            bound = bindings.get(pt)
            if bound is None:
                bindings[pt] = tt
            elif bound != tt:
                return None
        elif pt != tt:
            return None
    return Substitution(bindings)


def variant(left: Unifiable, right: Unifiable) -> bool:
    """True iff the two atoms/literals are equal up to variable renaming."""
    forward = match(left, right)
    if forward is None:
        return False
    backward = match(right, left)
    if backward is None:
        return False
    # Both match maps must be injective variable renamings.
    def _is_renaming(subst: Substitution) -> bool:
        images = [t for _, t in subst.items()]
        return all(isinstance(t, Variable) for t in images) and len(
            set(images)
        ) == len(images)

    return _is_renaming(forward) and _is_renaming(backward)


def subsumes(general: Unifiable, specific: Unifiable) -> bool:
    """True iff *general* subsumes *specific*: some substitution maps
    *general* onto *specific*.

    Potential-update generation (Section 3.3.1) discards subsumed
    literals while closing the ``dependent`` relation — this is the test
    that guarantees termination in the presence of recursive rules.
    """
    return match(general, specific) is not None


def rename_apart(
    x: Unifiable, taken: Iterable[Variable], prefix: str = "_R"
) -> Unifiable:
    """Return a variant of *x* whose variables avoid *taken*.

    Rule heads/bodies are renamed apart from the update literal before
    unification, exactly as a Prolog engine would rename clauses.
    """
    taken_set = set(taken)
    mapping = {}
    atom = _atom_of(x)
    for arg in atom.args:
        if isinstance(arg, Variable) and arg in taken_set and arg not in mapping:
            mapping[arg] = fresh_variable(prefix)
    if not mapping:
        return x
    subst = Substitution(mapping)
    return x.substitute(subst)

"""Terms of the function-free first-order language.

The paper (Section 2) restricts the term language of rules and
constraints to *constants and variables* — no function symbols. That
restriction is what keeps the Herbrand universe finite and makes the
satisfiability procedure of Section 4 meaningful, so this module
enforces it structurally: there simply is no compound-term class.

Both term classes are immutable and hashable, so they can be used
freely as dictionary keys (substitutions, fact indexes) and inside
frozen fact tuples.
"""

from __future__ import annotations

import itertools
from typing import Union


class Variable:
    """A logical variable, identified by its name.

    Two variables are equal iff their names are equal. By convention —
    mirrored in the parser — variable names start with an uppercase
    letter or an underscore.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name
        self._hash = hash(("var", name))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Constant:
    """A constant, wrapping an arbitrary hashable Python value.

    Constants compare and hash by their wrapped value, so
    ``Constant("a") == Constant("a")`` and distinct occurrences can be
    deduplicated in sets and indexes.
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value):
        self.value = value
        self._hash = hash(("const", value))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Constant) and self.value == other.value

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return str(self.value)


Term = Union[Variable, Constant]

_fresh_counter = itertools.count(1)


def fresh_variable(prefix: str = "_G") -> Variable:
    """Return a variable guaranteed not to clash with parsed variables.

    Parsed variable names never contain ``#``, so embedding the global
    counter after a ``#`` makes collisions impossible.
    """
    return Variable(f"{prefix}#{next(_fresh_counter)}")


def fresh_constant(prefix: str = "$c") -> Constant:
    """Return a new Skolem-style constant, as used by the satisfiability
    checker when enforcing an existential with a fresh witness.

    Parsed constants never contain ``#``, so these cannot collide with
    user constants.
    """
    return Constant(f"{prefix}#{next(_fresh_counter)}")


def is_ground_term(term: Term) -> bool:
    """True iff *term* contains no variable (i.e. is a constant)."""
    return isinstance(term, Constant)

"""Normalization of constraints into the paper's Section 2 normal form.

The pipeline, in order:

1. eliminate ``Implies`` / ``Iff``;
2. negation normal form (negations pushed onto atoms, quantifiers
   flipped);
3. rectification (no two quantifiers introduce the same variable);
4. miniscoping (quantifier scopes reduced as much as possible,
   one variable at a time) interleaved with distribution of ∨ over ∧
   until a fixpoint — distribution can enable further miniscoping;
5. conversion of every quantifier into *restricted* form:
   ``∃X̄ [A₁∧…∧Aₘ ∧ Q]`` / ``∀X̄ [¬A₁∨…∨¬Aₘ ∨ Q]`` with every bound
   variable occurring in some restriction atom ``Aᵢ``.

A formula that cannot be brought into restricted form (e.g.
``forall X: p(X)`` or ``exists X: not p(X)``) is *domain dependent*;
``normalize_constraint`` raises :class:`NormalizationError` for it,
which is exactly the class of constraints the paper excludes for
efficiency reasons (Section 3, discussion of [KUHN 67]).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.logic.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
    TrueFormula,
    conjuncts,
    disjuncts,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable


class NormalizationError(ValueError):
    """Raised when a constraint cannot be normalized — in practice, when
    it is not expressible with restricted quantification (domain
    dependent)."""


# -- stage 1+2: connective elimination and NNF -------------------------------------


def _eliminate(formula: Formula) -> Formula:
    """Rewrite ``Implies`` and ``Iff`` in terms of ∧, ∨, ¬."""
    if isinstance(formula, (Literal, Atom, TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Not):
        return Not(_eliminate(formula.child))
    if isinstance(formula, And):
        return And.make([_eliminate(c) for c in formula.children])
    if isinstance(formula, Or):
        return Or.make([_eliminate(c) for c in formula.children])
    if isinstance(formula, Implies):
        return Or.make(
            [Not(_eliminate(formula.antecedent)), _eliminate(formula.consequent)]
        )
    if isinstance(formula, Iff):
        left = _eliminate(formula.left)
        right = _eliminate(formula.right)
        return And.make(
            [Or.make([Not(left), right]), Or.make([Not(right), left])]
        )
    if isinstance(formula, (Exists, Forall)):
        if formula.restriction is not None:
            # Already-restricted input (e.g. a previously normalized
            # constraint): unfold to the plain reading and re-normalize —
            # ∃X̄[R ∧ Q]  /  ∀X̄[¬R ∨ Q] — making normalization total.
            restriction_literals = [Literal(a) for a in formula.restriction]
            if isinstance(formula, Exists):
                matrix = And.make(
                    restriction_literals + [_eliminate(formula.matrix)]
                )
            else:
                matrix = Or.make(
                    [l.complement() for l in restriction_literals]
                    + [_eliminate(formula.matrix)]
                )
            return type(formula)(formula.variables_tuple, None, matrix)
        return type(formula)(
            formula.variables_tuple, None, _eliminate(formula.matrix)
        )
    raise NormalizationError(f"unexpected node {formula!r}")


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form. Accepts output of :func:`_eliminate` (and
    tolerates remaining Implies/Iff by eliminating them on the fly)."""
    formula = _eliminate(formula)
    return _nnf(formula, positive=True)


def _nnf(formula: Formula, positive: bool) -> Formula:
    if isinstance(formula, Atom):
        formula = Literal(formula)
    if isinstance(formula, Literal):
        return formula if positive else formula.complement()
    if isinstance(formula, TrueFormula):
        return TRUE if positive else FALSE
    if isinstance(formula, FalseFormula):
        return FALSE if positive else TRUE
    if isinstance(formula, Not):
        return _nnf(formula.child, not positive)
    if isinstance(formula, And):
        children = [_nnf(c, positive) for c in formula.children]
        return And.make(children) if positive else Or.make(children)
    if isinstance(formula, Or):
        children = [_nnf(c, positive) for c in formula.children]
        return Or.make(children) if positive else And.make(children)
    if isinstance(formula, Exists):
        cls = Exists if positive else Forall
        return cls(formula.variables_tuple, None, _nnf(formula.matrix, positive))
    if isinstance(formula, Forall):
        cls = Forall if positive else Exists
        return cls(formula.variables_tuple, None, _nnf(formula.matrix, positive))
    raise NormalizationError(f"unexpected node in NNF: {formula!r}")


# -- stage 3: rectification ----------------------------------------------------------


def rectify(formula: Formula) -> Formula:
    """Rename bound variables so that no two quantifiers introduce the
    same variable and no bound variable shadows a free one.

    Renaming is deterministic: the first occurrence of a name keeps it;
    later conflicting occurrences get ``name_2``, ``name_3``, …
    """
    used: Set[str] = {v.name for v in formula.free_variables()}
    counters: Dict[str, int] = {}

    def pick(name: str) -> str:
        if name not in used:
            used.add(name)
            return name
        k = counters.get(name, 1)
        while True:
            k += 1
            candidate = f"{name}_{k}"
            if candidate not in used:
                counters[name] = k
                used.add(candidate)
                return candidate

    def walk(node: Formula, env: Dict[Variable, Variable]) -> Formula:
        if isinstance(node, (Literal, Atom)):
            subst = Substitution(
                {v: env[v] for v in node.variables() if v in env}
            )
            return node.substitute(subst)
        if isinstance(node, (TrueFormula, FalseFormula)):
            return node
        if isinstance(node, Not):
            return Not(walk(node.child, env))
        if isinstance(node, (And, Or)):
            return type(node)(walk(c, env) for c in node.children)
        if isinstance(node, (Exists, Forall)):
            new_env = dict(env)
            new_vars: List[Variable] = []
            for var in node.variables_tuple:
                renamed = Variable(pick(var.name))
                new_env[var] = renamed
                new_vars.append(renamed)
            if node.restriction is not None:
                new_restriction = tuple(
                    walk(a, new_env) for a in node.restriction
                )
            else:
                new_restriction = None
            return type(node)(
                new_vars, new_restriction, walk(node.matrix, new_env)
            )
        raise NormalizationError(f"unexpected node in rectify: {node!r}")

    return walk(formula, {})


# -- stage 4a: miniscoping ------------------------------------------------------------


def miniscope(formula: Formula) -> Formula:
    """Push quantifiers inward as far as possible (NNF input).

    Quantifier blocks are split one variable at a time, then each
    single-variable quantifier is pushed through its own connective
    (∀ through ∧, ∃ through ∨) and into the unique child mentioning the
    variable when the connective is the other one. Vacuous quantifiers
    are dropped.
    """
    if isinstance(formula, (Literal, TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Atom):
        return Literal(formula)
    if isinstance(formula, (And, Or)):
        return type(formula).make([miniscope(c) for c in formula.children])
    if isinstance(formula, (Exists, Forall)):
        body = miniscope(formula.matrix)
        # One variable at a time, innermost variable first so that the
        # source order of the block is preserved in the output nesting.
        for var in reversed(formula.variables_tuple):
            body = _push_one(type(formula), var, body)
        return body
    raise NormalizationError(f"unexpected node in miniscope: {formula!r}")


def _push_one(cls, var: Variable, body: Formula) -> Formula:
    """Push a single-variable quantifier ``cls var`` into *body*."""
    if var not in body.free_variables():
        return body  # vacuous
    matching = And if cls is Forall else Or
    other = Or if cls is Forall else And
    if isinstance(body, matching):
        # ∀ distributes over ∧, ∃ over ∨: push into every child.
        return matching.make([_push_one(cls, var, c) for c in body.children])
    if isinstance(body, other):
        with_var = [c for c in body.children if var in c.free_variables()]
        without = [c for c in body.children if var not in c.free_variables()]
        if len(with_var) == 1 and without:
            pushed = _push_one(cls, var, with_var[0])
            return other.make(without + [pushed])
        return cls([var], None, body)
    return cls([var], None, body)


# -- stage 4b: distribution of ∨ over ∧ ----------------------------------------------


def distribute_or_over_and(formula: Formula) -> Formula:
    """Distribute every disjunction over conjunctions below it, leaving
    quantifier boundaries intact (the paper distributes within the
    quantifier-free matrix of each scope)."""
    if isinstance(formula, (Literal, TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, Atom):
        return Literal(formula)
    if isinstance(formula, (Exists, Forall)):
        return type(formula)(
            formula.variables_tuple,
            formula.restriction,
            distribute_or_over_and(formula.matrix),
        )
    if isinstance(formula, And):
        return And.make([distribute_or_over_and(c) for c in formula.children])
    if isinstance(formula, Or):
        children = [distribute_or_over_and(c) for c in formula.children]
        # Find a conjunctive child to distribute over.
        for index, child in enumerate(children):
            if isinstance(child, And):
                rest = children[:index] + children[index + 1:]
                distributed = And.make(
                    [
                        distribute_or_over_and(Or.make(rest + [part]))
                        for part in child.children
                    ]
                )
                return distributed
        return Or.make(children)
    raise NormalizationError(f"unexpected node in distribute: {formula!r}")


# -- simplification -------------------------------------------------------------------


def simplify(formula: Formula) -> Formula:
    """Boolean simplification: absorb ``true``/``false``, drop duplicate
    juncts, collapse degenerate connectives."""
    if isinstance(formula, Atom):
        return Literal(formula)
    if isinstance(formula, (Literal, TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, (And, Or)):
        is_and = isinstance(formula, And)
        absorbing = FALSE if is_and else TRUE
        neutral = TRUE if is_and else FALSE
        seen = []
        for child in formula.children:
            child = simplify(child)
            if child == absorbing:
                return absorbing
            if child == neutral:
                continue
            if isinstance(child, type(formula)):
                for grandchild in child.children:
                    if grandchild not in seen:
                        seen.append(grandchild)
            elif child not in seen:
                seen.append(child)
        return type(formula).make(seen)
    if isinstance(formula, (Exists, Forall)):
        matrix = simplify(formula.matrix)
        if formula.restriction is None:
            if matrix == TRUE:
                return TRUE
            if matrix == FALSE:
                return FALSE
        return type(formula)(formula.variables_tuple, formula.restriction, matrix)
    raise NormalizationError(f"unexpected node in simplify: {formula!r}")


# -- stage 5: restricted quantification ------------------------------------------------


def _merge_nested(formula: Formula) -> Formula:
    """Merge directly nested unrestricted quantifiers of the same kind:
    ``∀X ∀Y φ`` becomes ``∀[X,Y] φ`` so coverage can be established by a
    single restriction."""
    if isinstance(formula, (Literal, TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, (And, Or)):
        return type(formula).make([_merge_nested(c) for c in formula.children])
    if isinstance(formula, (Exists, Forall)):
        variables = list(formula.variables_tuple)
        matrix = formula.matrix
        while (
            type(matrix) is type(formula)
            and matrix.restriction is None
            and formula.restriction is None
        ):
            variables.extend(matrix.variables_tuple)
            matrix = matrix.matrix
        return type(formula)(
            variables, formula.restriction, _merge_nested(matrix)
        )
    raise NormalizationError(f"unexpected node in merge: {formula!r}")


def _to_restricted(formula: Formula) -> Formula:
    """Convert every (unrestricted) quantifier to restricted form,
    bottom-up. Raises :class:`NormalizationError` when some bound
    variable cannot be covered by restriction atoms."""
    if isinstance(formula, (Literal, TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, (And, Or)):
        return type(formula).make([_to_restricted(c) for c in formula.children])
    if isinstance(formula, Exists):
        if formula.restriction is not None:
            return Exists(
                formula.variables_tuple,
                formula.restriction,
                _to_restricted(formula.matrix),
            )
        parts = conjuncts(formula.matrix)
        restriction = [
            p.atom for p in parts if isinstance(p, Literal) and p.positive
        ]
        remainder = [
            p for p in parts if not (isinstance(p, Literal) and p.positive)
        ]
        if not _covers(formula.variables_tuple, restriction):
            hoisted = _hoist(Exists, formula.variables_tuple, parts, And)
            if hoisted is not None:
                return _to_restricted(hoisted)
        _check_coverage(formula, formula.variables_tuple, restriction)
        matrix = _to_restricted(And.make(remainder)) if remainder else TRUE
        return Exists(formula.variables_tuple, restriction, matrix)
    if isinstance(formula, Forall):
        if formula.restriction is not None:
            return Forall(
                formula.variables_tuple,
                formula.restriction,
                _to_restricted(formula.matrix),
            )
        parts = disjuncts(formula.matrix)
        restriction = [
            p.atom for p in parts if isinstance(p, Literal) and not p.positive
        ]
        remainder = [
            p for p in parts if not (isinstance(p, Literal) and not p.positive)
        ]
        if not _covers(formula.variables_tuple, restriction):
            hoisted = _hoist(Forall, formula.variables_tuple, parts, Or)
            if hoisted is not None:
                return _to_restricted(hoisted)
        _check_coverage(formula, formula.variables_tuple, restriction)
        matrix = _to_restricted(Or.make(remainder)) if remainder else FALSE
        return Forall(formula.variables_tuple, restriction, matrix)
    raise NormalizationError(f"unexpected node in restrict: {formula!r}")


def _covers(variables: Sequence[Variable], restriction: Sequence[Atom]) -> bool:
    covered: Set[Variable] = set()
    for atom in restriction:
        covered.update(atom.variables())
    return all(v in covered for v in variables)


def _hoist(cls, variables, parts, connective):
    """Undo one layer of miniscoping: pull unrestricted same-kind
    quantifiers out of the juncts so their literals can serve as
    restriction atoms for the merged block.

    Sound because rectification guarantees the hoisted variables do not
    occur in the sibling juncts: ``∀X (D ∨ ∀Y φ)  ≡  ∀[X,Y] (D ∨ φ)``
    when Y is not free in D (dually for ∃ over ∧). Returns ``None`` when
    nothing can be hoisted.
    """
    new_vars = list(variables)
    new_parts: List[Formula] = []
    changed = False
    for part in parts:
        if type(part) is cls and part.restriction is None:
            new_vars.extend(part.variables_tuple)
            if connective is Or:
                new_parts.extend(disjuncts(part.matrix))
            else:
                new_parts.extend(conjuncts(part.matrix))
            changed = True
        else:
            new_parts.append(part)
    if not changed:
        return None
    return cls(new_vars, None, connective.make(new_parts))


def _check_coverage(
    formula: Formula,
    variables: Sequence[Variable],
    restriction: Sequence[Atom],
) -> None:
    covered: Set[Variable] = set()
    for atom in restriction:
        covered.update(v for v in atom.variables())
    missing = [v for v in variables if v not in covered]
    if missing:
        names = ", ".join(v.name for v in missing)
        raise NormalizationError(
            f"constraint is not domain independent: variable(s) {names} "
            f"of {formula} are not covered by restriction atoms"
        )


# -- the full pipeline -------------------------------------------------------------------


def normalize_constraint(formula: Formula) -> Formula:
    """Run the full Section 2 pipeline and return the normalized
    constraint with every quantifier in restricted form.

    Raises :class:`NormalizationError` for open formulas and for
    formulas that are not domain independent.
    """
    if formula.free_variables():
        names = ", ".join(sorted(v.name for v in formula.free_variables()))
        raise NormalizationError(
            f"integrity constraints must be closed; free: {names}"
        )
    result = to_nnf(formula)
    result = rectify(result)
    result = simplify(result)
    # Miniscope and distribute to a fixpoint: distribution can split a
    # matrix into conjuncts that a universal quantifier then pushes into.
    for _ in range(20):
        next_result = simplify(distribute_or_over_and(miniscope(result)))
        if next_result == result:
            break
        result = next_result
    else:  # pragma: no cover - the pipeline converges in two rounds
        raise NormalizationError(f"normalization did not converge: {formula}")
    if isinstance(result, (TrueFormula, FalseFormula)):
        return result
    result = _merge_nested(result)
    result = _to_restricted(result)
    return simplify(result)

"""Parser for the surface syntax of facts, rules, constraints and queries.

The syntax mirrors the paper's Prolog notation while staying pleasant to
type::

    % facts — ground atoms
    employee(ann).
    leads(ann, sales).

    % rules — Datalog with negation in the body
    member(X, Y) :- leads(X, Y).
    idle(X) :- employee(X), not member(X, _D).

    % integrity constraints — closed first-order formulas
    forall X: employee(X) -> exists Y: department(Y) and member(X, Y).
    forall X: not subordinate(X, X).
    exists X: employee(X).

Operators, loosest binding first: quantifiers (``forall``/``exists``,
scope extends maximally to the right), ``<->``, ``->`` (right
associative), ``or`` / ``|``, ``and`` / ``&`` / ``,``, ``not`` / ``~``.
Variables start with an uppercase letter or ``_``; everything else
lowercase is a constant or predicate symbol. Quoted strings and integers
are constants. ``%`` and ``#`` start comments.

``parse_program`` classifies each ``.``-terminated statement: a
statement with ``:-`` is a rule, a ground atom is a fact, anything else
must be a closed formula and is read as an integrity constraint.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Tuple

from repro.logic.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
)
from repro.logic.terms import Constant, Term, Variable, fresh_variable


class ParseError(ValueError):
    """Raised on any syntax error, with position information."""

    def __init__(self, message: str, position: int, text: str):
        line = text.count("\n", 0, position) + 1
        col = position - (text.rfind("\n", 0, position) + 1) + 1
        super().__init__(f"{message} (line {line}, column {col})")
        self.position = position
        self.line = line
        self.column = col


class ParsedRule(NamedTuple):
    """A parsed rule ``head :- body`` (body is a tuple of literals)."""

    head: Atom
    body: Tuple[Literal, ...]


class ParsedProgram(NamedTuple):
    """The three components of a deductive database source text."""

    facts: Tuple[Atom, ...]
    rules: Tuple[ParsedRule, ...]
    constraints: Tuple[Formula, ...]


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>[%\#][^\n]*)
  | (?P<arrow2><->)
  | (?P<arrow>->)
  | (?P<neck>:-)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbrack>\[)
  | (?P<rbrack>\])
  | (?P<comma>,)
  | (?P<colon>:)
  | (?P<dot>\.)
  | (?P<amp>&)
  | (?P<pipe>\|)
  | (?P<tilde>~)
  | (?P<int>-?\d+)
  | (?P<squote>'(?:[^'\\]|\\.)*')
  | (?P<dquote>"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS_NOT = {"not"}
_KEYWORDS_AND = {"and"}
_KEYWORDS_OR = {"or"}
_KEYWORDS_QUANT = {"forall", "exists"}
_KEYWORDS_BOOL = {"true", "false"}


class _Token(NamedTuple):
    kind: str
    value: str
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos, text)
        kind = m.lastgroup
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, m.group(), pos))
        pos = m.end()
    tokens.append(_Token("eof", "", length))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing --------------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind: str, what: str) -> _Token:
        token = self.current
        if token.kind != kind:
            raise ParseError(
                f"expected {what}, found {token.value or 'end of input'!r}",
                token.pos,
                self.text,
            )
        return self.advance()

    def at_name(self, *names: str) -> bool:
        token = self.current
        return token.kind == "name" and token.value in names

    def error(self, message: str) -> ParseError:
        return ParseError(message, self.current.pos, self.text)

    # -- terms ------------------------------------------------------------------

    def parse_term(self) -> Term:
        token = self.current
        if token.kind == "int":
            self.advance()
            return Constant(int(token.value))
        if token.kind in ("squote", "dquote"):
            self.advance()
            raw = token.value[1:-1]
            unescaped = raw.replace("\\'", "'").replace('\\"', '"').replace(
                "\\\\", "\\"
            )
            return Constant(unescaped)
        if token.kind == "name":
            self.advance()
            name = token.value
            if name == "_":
                return fresh_variable("_A")
            if name[0].isupper() or name[0] == "_":
                return Variable(name)
            return Constant(name)
        raise self.error(f"expected a term, found {token.value!r}")

    # -- atoms and literals -------------------------------------------------------

    def parse_atom(self) -> Atom:
        token = self.expect("name", "a predicate name")
        name = token.value
        if name[0].isupper() or name[0] == "_":
            raise ParseError(
                f"predicate names must start lowercase, got {name!r}",
                token.pos,
                self.text,
            )
        args: List[Term] = []
        if self.current.kind == "lparen":
            self.advance()
            args.append(self.parse_term())
            while self.current.kind == "comma":
                self.advance()
                args.append(self.parse_term())
            self.expect("rparen", "')'")
        return Atom(name, args)

    def parse_literal(self) -> Literal:
        if self.current.kind == "tilde" or self.at_name("not"):
            self.advance()
            return Literal(self.parse_atom(), False)
        return Literal(self.parse_atom(), True)

    # -- formulas -------------------------------------------------------------------

    def parse_formula(self) -> Formula:
        return self._quantified()

    def _quantified(self) -> Formula:
        if self.current.kind == "name" and self.current.value in _KEYWORDS_QUANT:
            keyword = self.advance().value
            variables = self._varlist()
            self.expect("colon", "':' after quantified variables")
            body = self._quantified()
            cls = Forall if keyword == "forall" else Exists
            return cls(variables, None, body)
        return self._iff()

    def _varlist(self) -> List[Variable]:
        bracketed = self.current.kind == "lbrack"
        if bracketed:
            self.advance()
        variables = [self._one_variable()]
        while self.current.kind == "comma":
            self.advance()
            variables.append(self._one_variable())
        if bracketed:
            self.expect("rbrack", "']'")
        return variables

    def _one_variable(self) -> Variable:
        token = self.expect("name", "a variable")
        name = token.value
        if not (name[0].isupper() or name[0] == "_") or name == "_":
            raise ParseError(
                f"quantified variables must be named variables, got {name!r}",
                token.pos,
                self.text,
            )
        return Variable(name)

    def _iff(self) -> Formula:
        left = self._implies()
        while self.current.kind == "arrow2":
            self.advance()
            right = self._implies()
            left = Iff(left, right)
        return left

    def _implies(self) -> Formula:
        left = self._or()
        if self.current.kind == "arrow":
            self.advance()
            right = self._implies()  # right associative
            return Implies(left, right)
        return left

    def _or(self) -> Formula:
        parts = [self._and()]
        while self.current.kind == "pipe" or self.at_name("or"):
            self.advance()
            parts.append(self._and())
        return Or.make(parts) if len(parts) > 1 else parts[0]

    def _and(self, comma_conjunction: bool = True) -> Formula:
        parts = [self._unary()]
        while True:
            if self.current.kind == "amp" or self.at_name("and"):
                self.advance()
            elif comma_conjunction and self.current.kind == "comma":
                self.advance()
            else:
                break
            parts.append(self._unary())
        return And.make(parts) if len(parts) > 1 else parts[0]

    def _unary(self) -> Formula:
        token = self.current
        if token.kind == "tilde" or self.at_name("not"):
            self.advance()
            child = self._unary()
            if isinstance(child, Literal):
                return child.complement()
            return Not(child)
        if self.at_name("true"):
            self.advance()
            return TRUE
        if self.at_name("false"):
            self.advance()
            return FALSE
        if token.kind == "name" and token.value in _KEYWORDS_QUANT:
            return self._quantified()
        if token.kind == "lparen":
            self.advance()
            inner = self.parse_formula()
            self.expect("rparen", "')'")
            return inner
        atom = self.parse_atom()
        return Literal(atom, True)

    # -- statements --------------------------------------------------------------

    def parse_rule_tail(self, head: Atom) -> ParsedRule:
        """Parse the body after the ``:-`` of a rule with *head*."""
        body: List[Literal] = [self._body_literal()]
        while self.current.kind == "comma" or self.at_name("and") or (
            self.current.kind == "amp"
        ):
            self.advance()
            body.append(self._body_literal())
        return ParsedRule(head, tuple(body))

    def _body_literal(self) -> Literal:
        formula = self._unary()
        if not isinstance(formula, Literal):
            raise self.error("rule bodies may contain only literals")
        return formula

    def parse_statement(self) -> Tuple[str, object]:
        """Parse one statement; returns (kind, payload) with kind one of
        ``fact``, ``rule``, ``constraint``."""
        start = self.index
        # Try: atom followed by :- (rule) or . (fact). A bare atom that
        # is *not* ground is a constraint with free variables and will be
        # rejected downstream by the closedness check.
        if self.current.kind == "name" and not (
            self.current.value in _KEYWORDS_QUANT
            or self.current.value in _KEYWORDS_NOT
            or self.current.value in _KEYWORDS_BOOL
        ):
            try:
                atom = self.parse_atom()
            except ParseError:
                self.index = start
                atom = None
            if atom is not None:
                if self.current.kind == "neck":
                    self.advance()
                    rule = self.parse_rule_tail(atom)
                    return ("rule", rule)
                if self.current.kind in ("dot", "eof") and atom.is_ground():
                    return ("fact", atom)
                # Not a simple fact/rule: reparse as a formula.
                self.index = start
        formula = self.parse_formula()
        return ("constraint", formula)

    def parse_program(self) -> ParsedProgram:
        facts: List[Atom] = []
        rules: List[ParsedRule] = []
        constraints: List[Formula] = []
        while self.current.kind != "eof":
            kind, payload = self.parse_statement()
            if self.current.kind == "dot":
                self.advance()
            elif self.current.kind != "eof":
                raise self.error("expected '.' after statement")
            if kind == "fact":
                facts.append(payload)  # type: ignore[arg-type]
            elif kind == "rule":
                rules.append(payload)  # type: ignore[arg-type]
            else:
                constraints.append(payload)  # type: ignore[arg-type]
        return ParsedProgram(tuple(facts), tuple(rules), tuple(constraints))

    def finish(self, allow_dot: bool = True) -> None:
        if allow_dot and self.current.kind == "dot":
            self.advance()
        if self.current.kind != "eof":
            raise self.error(
                f"unexpected trailing input {self.current.value!r}"
            )


# -- public helpers ------------------------------------------------------------


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"member(X, b)"``."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    parser.finish()
    return atom


def parse_fact(text: str) -> Atom:
    """Parse a single ground atom; raise if it contains variables."""
    atom = parse_atom(text)
    if not atom.is_ground():
        raise ParseError("facts must be ground", 0, text)
    return atom


def parse_literal(text: str) -> Literal:
    """Parse a literal — the representation of a single-fact update."""
    parser = _Parser(text)
    literal = parser.parse_literal()
    parser.finish()
    return literal


def parse_formula(text: str) -> Formula:
    """Parse an arbitrary formula (may contain free variables)."""
    parser = _Parser(text)
    formula = parser.parse_formula()
    parser.finish()
    return formula


def parse_constraint(text: str) -> Formula:
    """Parse a closed formula to be used as an integrity constraint."""
    formula = parse_formula(text)
    free = formula.free_variables()
    if free:
        names = ", ".join(sorted(v.name for v in free))
        raise ParseError(
            f"integrity constraints must be closed; free: {names}", 0, text
        )
    return formula


def parse_query(text: str) -> Formula:
    """Parse a query formula (free variables allowed — they are the
    answer variables)."""
    return parse_formula(text)


def parse_rule(text: str) -> ParsedRule:
    """Parse a single rule ``head :- body``."""
    parser = _Parser(text)
    head = parser.parse_atom()
    parser.expect("neck", "':-'")
    rule = parser.parse_rule_tail(head)
    parser.finish()
    return rule


def parse_program(text: str) -> ParsedProgram:
    """Parse a whole source text into (facts, rules, constraints)."""
    return _Parser(text).parse_program()

"""First-order logic substrate: terms, unification, formulas, parsing.

This subpackage provides the function-free first-order language of the
paper's Section 2: terms are constants and variables only, atoms are
predicates applied to terms, and integrity constraints are closed
formulas in *restricted quantification* form.

The public surface re-exported here is what the rest of the library (and
downstream users) should import.
"""

from repro.logic.terms import (
    Constant,
    Term,
    Variable,
    fresh_variable,
    is_ground_term,
)
from repro.logic.substitution import Substitution
from repro.logic.unify import (
    match,
    mgu,
    rename_apart,
    subsumes,
    unifiable,
    variant,
)
from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
    TrueFormula,
    conjuncts,
    disjuncts,
)
from repro.logic.parser import (
    ParseError,
    parse_atom,
    parse_constraint,
    parse_fact,
    parse_formula,
    parse_literal,
    parse_program,
    parse_query,
    parse_rule,
)
from repro.logic.normalize import (
    NormalizationError,
    distribute_or_over_and,
    miniscope,
    normalize_constraint,
    rectify,
    to_nnf,
)
from repro.logic.safety import (
    SafetyError,
    check_constraint_safety,
    check_rule_range_restricted,
    is_domain_independent,
)

__all__ = [
    "And",
    "Atom",
    "Constant",
    "Exists",
    "FalseFormula",
    "Forall",
    "Formula",
    "Iff",
    "Implies",
    "Literal",
    "NormalizationError",
    "Not",
    "Or",
    "ParseError",
    "SafetyError",
    "Substitution",
    "Term",
    "TrueFormula",
    "Variable",
    "check_constraint_safety",
    "check_rule_range_restricted",
    "conjuncts",
    "disjuncts",
    "distribute_or_over_and",
    "fresh_variable",
    "is_domain_independent",
    "is_ground_term",
    "match",
    "mgu",
    "miniscope",
    "normalize_constraint",
    "parse_atom",
    "parse_constraint",
    "parse_fact",
    "parse_formula",
    "parse_literal",
    "parse_program",
    "parse_query",
    "parse_rule",
    "rectify",
    "rename_apart",
    "subsumes",
    "to_nnf",
    "unifiable",
    "variant",
]

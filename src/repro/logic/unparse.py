"""Unparsing: formulas, rules and whole databases back to surface syntax.

The emitted text round-trips: ``parse_formula(unparse(f))`` normalizes
back to the same restricted form (a property test pins this), and
``DeductiveDatabase.to_source()`` output can be fed straight back to
``DeductiveDatabase.from_source`` — the library's persistence format.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Iff,
    Implies,
    Literal,
    Not,
    Or,
    TrueFormula,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Term, Variable

_BARE_CONSTANT = re.compile(r"[a-z][A-Za-z0-9_]*\Z")
_SAFE_VARIABLE = re.compile(r"[A-Z][A-Za-z0-9_]*\Z")


def unparse_term(term: Term) -> str:
    if isinstance(term, Variable):
        return term.name
    value = term.value
    if isinstance(value, int):
        return str(value)
    text = str(value)
    if _BARE_CONSTANT.match(text):
        return text
    escaped = text.replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


def unparse_atom(atom: Atom) -> str:
    if not atom.args:
        return atom.pred
    return f"{atom.pred}({', '.join(unparse_term(a) for a in atom.args)})"


def _sanitize_variables(formula: Formula) -> Formula:
    """Rename variables whose names the parser would reject (e.g. the
    ``#``-suffixed fresh variables) to safe ones. Sound for bound
    variables; free unsafe variables cannot originate from the parser,
    so renaming them is the only way to print the formula at all."""
    unsafe = [
        v for v in formula.variables() if not _SAFE_VARIABLE.match(v.name)
    ]
    if not unsafe:
        return formula
    taken = {v.name for v in formula.variables()}
    renaming: Dict[Variable, Variable] = {}
    counter = 1
    for variable in sorted(unsafe, key=lambda v: v.name):
        while f"V{counter}" in taken:
            counter += 1
        replacement = Variable(f"V{counter}")
        taken.add(replacement.name)
        renaming[variable] = replacement
    from repro.integrity.instances import _rename_all

    return _rename_all(formula, Substitution(renaming))


def unparse(formula: Formula) -> str:
    """Surface-syntax text for *formula* (parseable by
    :func:`repro.logic.parser.parse_formula`)."""
    return _unparse(_sanitize_variables(formula))


def _unparse(formula: Formula) -> str:
    if isinstance(formula, TrueFormula):
        return "true"
    if isinstance(formula, FalseFormula):
        return "false"
    if isinstance(formula, Literal):
        text = unparse_atom(formula.atom)
        return text if formula.positive else f"not {text}"
    if isinstance(formula, Atom):
        return unparse_atom(formula)
    if isinstance(formula, Not):
        return f"not ({_unparse(formula.child)})"
    if isinstance(formula, And):
        return "(" + " and ".join(_unparse(c) for c in formula.children) + ")"
    if isinstance(formula, Or):
        return "(" + " or ".join(_unparse(c) for c in formula.children) + ")"
    if isinstance(formula, Implies):
        return f"({_unparse(formula.antecedent)} -> {_unparse(formula.consequent)})"
    if isinstance(formula, Iff):
        return f"({_unparse(formula.left)} <-> {_unparse(formula.right)})"
    if isinstance(formula, (Exists, Forall)):
        variables = ", ".join(v.name for v in formula.variables_tuple)
        keyword = "exists" if isinstance(formula, Exists) else "forall"
        if formula.restriction is None:
            return f"{keyword} [{variables}]: ({_unparse(formula.matrix)})"
        restriction = " and ".join(
            unparse_atom(a) for a in formula.restriction
        )
        if isinstance(formula, Exists):
            if isinstance(formula.matrix, TrueFormula):
                return f"{keyword} [{variables}]: ({restriction})"
            return (
                f"{keyword} [{variables}]: ({restriction} "
                f"and {_unparse(formula.matrix)})"
            )
        # ∀X̄ [¬R ∨ Q]  ≡  ∀X̄ (R → Q)
        return (
            f"{keyword} [{variables}]: ({restriction} -> "
            f"{_unparse(formula.matrix)})"
        )
    raise ValueError(f"cannot unparse {formula!r}")


def unparse_rule(head: Atom, body) -> str:
    body_text = ", ".join(
        (unparse_atom(l.atom) if l.positive else f"not {unparse_atom(l.atom)}")
        for l in body
    )
    return f"{unparse_atom(head)} :- {body_text}"


def unparse_database(db) -> str:
    """The full database as re-parseable source: facts, rules,
    constraints (original source text when recorded, otherwise the
    normalized form unparsed)."""
    lines: List[str] = []
    for fact in sorted(db.facts, key=str):
        lines.append(f"{unparse_atom(fact)}.")
    if len(lines):
        lines.append("")
    for rule in db.program.rules:
        lines.append(f"{unparse_rule(rule.head, rule.body)}.")
    if db.program.rules:
        lines.append("")
    for constraint in db.constraints:
        if constraint.source:
            text = constraint.source.strip().rstrip(".")
        else:
            text = unparse(constraint.formula)
        lines.append(f"{text}.")
    return "\n".join(lines) + ("\n" if lines else "")

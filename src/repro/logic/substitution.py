"""Substitutions: finite mappings from variables to terms.

A substitution is the workhorse of the whole library: unifiers
(Definition 3's *defining substitution*), query answers, and the
instantiation step of the satisfiability checker's ``enforce`` are all
substitutions. The class is immutable; ``compose`` and ``bind`` return
new substitutions, which keeps backtracking search code honest.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.logic.terms import Constant, Term, Variable


class Substitution:
    """An immutable mapping from :class:`Variable` to :class:`Term`.

    Identity bindings (``X -> X``) are never stored. The mapping is
    applied *non-recursively* to terms: because the language is
    function-free, a bound value is either a constant or another
    variable, and composition (not repeated application) is the way to
    chain substitutions.
    """

    __slots__ = ("_map",)

    def __init__(self, mapping: Optional[Mapping[Variable, Term]] = None):
        clean: Dict[Variable, Term] = {}
        if mapping:
            for var, term in mapping.items():
                if not isinstance(var, Variable):
                    raise TypeError(f"substitution key must be Variable, got {var!r}")
                if term != var:
                    clean[var] = term
        self._map = clean

    # -- construction helpers -------------------------------------------------

    @classmethod
    def empty(cls) -> "Substitution":
        return _EMPTY

    @classmethod
    def trusted(cls, mapping: Dict[Variable, Term]) -> "Substitution":
        """Wrap *mapping* without validation or copying. For hot paths
        (the batch join kernel) whose mappings are clean by
        construction: Variable keys, no identity bindings. The caller
        must not mutate *mapping* afterwards."""
        subst = cls.__new__(cls)
        subst._map = mapping
        return subst

    def bind(self, var: Variable, term: Term) -> "Substitution":
        """Return a copy with ``var -> term`` added (overriding any
        previous binding of *var*)."""
        new_map = dict(self._map)
        if term == var:
            new_map.pop(var, None)
        else:
            new_map[var] = term
        return Substitution(new_map)

    # -- application ----------------------------------------------------------

    def apply_term(self, term: Term) -> Term:
        """Apply to a single term, following variable-to-variable
        bindings transitively (with cycle protection)."""
        seen = None
        while isinstance(term, Variable) and term in self._map:
            if seen is None:
                seen = {term}
            replacement = self._map[term]
            if isinstance(replacement, Variable):
                if replacement in seen:
                    break
                seen.add(replacement)
            term = replacement
        return term

    def apply_terms(self, terms: Iterable[Term]) -> Tuple[Term, ...]:
        return tuple(self.apply_term(t) for t in terms)

    # -- algebra ---------------------------------------------------------------

    def compose(self, other: "Substitution") -> "Substitution":
        """Return ``self ; other``: applying the result is equivalent to
        applying *self* first, then *other*."""
        if not other._map:
            return self
        if not self._map:
            return other
        new_map: Dict[Variable, Term] = {}
        for var, term in self._map.items():
            new_map[var] = other.apply_term(term)
        for var, term in other._map.items():
            if var not in self._map:
                new_map[var] = term
        return Substitution(new_map)

    def restrict(self, variables: Iterable[Variable]) -> "Substitution":
        """Return the restriction of the substitution to *variables*.

        This implements the τ of Definition 3: the defining substitution
        is the mgu restricted to the universally quantified variables not
        governed by an existential quantifier.
        """
        keep = set(variables)
        return Substitution({v: t for v, t in self._map.items() if v in keep})

    def without(self, variables: Iterable[Variable]) -> "Substitution":
        """Return a copy with bindings for *variables* removed."""
        drop = set(variables)
        return Substitution({v: t for v, t in self._map.items() if v not in drop})

    # -- inspection -------------------------------------------------------------

    def __contains__(self, var: Variable) -> bool:
        return var in self._map

    def __getitem__(self, var: Variable) -> Term:
        return self._map[var]

    def get(self, var: Variable, default: Optional[Term] = None) -> Optional[Term]:
        return self._map.get(var, default)

    def domain(self) -> frozenset:
        return frozenset(self._map)

    def items(self) -> Iterator[Tuple[Variable, Term]]:
        return iter(self._map.items())

    def is_ground_on(self, variables: Iterable[Variable]) -> bool:
        """True iff every variable in *variables* is mapped to a constant."""
        return all(isinstance(self.apply_term(v), Constant) for v in variables)

    def __len__(self) -> int:
        return len(self._map)

    def __bool__(self) -> bool:
        return bool(self._map)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Substitution) and self._map == other._map

    def __hash__(self) -> int:
        return hash(frozenset(self._map.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}: {t}" for v, t in sorted(
            self._map.items(), key=lambda item: item[0].name))
        return "{" + inner + "}"


_EMPTY = Substitution()

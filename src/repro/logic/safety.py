"""Safety conditions: range restriction and domain independence.

Section 2 of the paper imposes two syntactic disciplines that the whole
method depends on:

* every **rule** is *range-restricted*: each variable occurring in the
  head or in a negative body literal also occurs in a positive body
  literal — this is what makes bottom-up evaluation and the ``delta``
  propagation produce ground facts;

* every **constraint** uses *restricted quantification*, which implies
  *domain independence* ([KUHN 67]): its truth value never depends on
  domain elements outside the mentioned relations, so only constraints
  mentioning updated relations can change value (the basis of
  Definition 2's relevance test).
"""

from __future__ import annotations

from typing import Sequence, Set

from repro.logic.formulas import (
    And,
    Atom,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Literal,
    Or,
    TrueFormula,
)
from repro.logic.terms import Variable


class SafetyError(ValueError):
    """Raised when a rule or constraint violates a safety condition."""


def check_rule_range_restricted(head: Atom, body: Sequence[Literal]) -> None:
    """Raise :class:`SafetyError` unless the rule is range-restricted.

    Every variable of the head, and of every negative body literal, must
    occur in at least one positive body literal.
    """
    positive_vars: Set[Variable] = set()
    for literal in body:
        if literal.positive:
            positive_vars.update(literal.atom.variables())
    offenders: Set[Variable] = set()
    offenders.update(v for v in head.variables() if v not in positive_vars)
    for literal in body:
        if not literal.positive:
            offenders.update(
                v for v in literal.atom.variables() if v not in positive_vars
            )
    if offenders:
        names = ", ".join(sorted(v.name for v in offenders))
        raise SafetyError(
            f"rule {head} :- ... is not range-restricted: variable(s) "
            f"{names} do not occur in a positive body literal"
        )


def check_constraint_safety(formula: Formula) -> None:
    """Raise :class:`SafetyError` unless *formula* is a closed, fully
    restricted-quantification constraint (the output format of
    :func:`repro.logic.normalize.normalize_constraint`)."""
    free = formula.free_variables()
    if free:
        names = ", ".join(sorted(v.name for v in free))
        raise SafetyError(f"constraint is not closed; free: {names}")
    _check_restricted(formula)


def _check_restricted(formula: Formula) -> None:
    if isinstance(formula, (Literal, TrueFormula, FalseFormula)):
        return
    if isinstance(formula, (And, Or)):
        for child in formula.children:
            _check_restricted(child)
        return
    if isinstance(formula, (Exists, Forall)):
        if formula.restriction is None:
            raise SafetyError(
                f"quantifier without restriction: {formula} — run "
                f"normalize_constraint first"
            )
        covered: Set[Variable] = set()
        for atom in formula.restriction:
            covered.update(atom.variables())
        missing = [
            v for v in formula.variables_tuple if v not in covered
        ]
        if missing:
            names = ", ".join(v.name for v in missing)
            raise SafetyError(
                f"restriction of {formula} does not cover variable(s) {names}"
            )
        _check_restricted(formula.matrix)
        return
    raise SafetyError(f"unexpected node in constraint: {formula!r}")


def is_domain_independent(formula: Formula) -> bool:
    """True iff the (normalized) formula is in restricted-quantification
    form, which is a sufficient condition for domain independence.

    This is the check the paper appeals to in Section 3: "Formulas with
    restricted quantifications are domain independent."
    """
    try:
        _check_restricted(formula)
    except SafetyError:
        return False
    return True


def constraint_predicates(formula: Formula) -> Set[str]:
    """All predicate names mentioned by a constraint — the relations
    whose updates can possibly affect its truth value."""
    out: Set[str] = set()
    _collect_predicates(formula, out)
    return out


def _collect_predicates(formula: Formula, out: Set[str]) -> None:
    if isinstance(formula, Literal):
        out.add(formula.atom.pred)
    elif isinstance(formula, Atom):
        out.add(formula.pred)
    elif isinstance(formula, (And, Or)):
        for child in formula.children:
            _collect_predicates(child, out)
    elif isinstance(formula, (Exists, Forall)):
        if formula.restriction:
            for atom in formula.restriction:
                out.add(atom.pred)
        _collect_predicates(formula.matrix, out)
    elif isinstance(formula, (TrueFormula, FalseFormula)):
        pass
    else:
        raise SafetyError(f"unexpected node: {formula!r}")

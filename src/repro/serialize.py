"""One JSON vocabulary for verdicts, witnesses and diagnostics.

The CLI's ``--format json`` output and the service's wire protocol
share these serializers, so a verdict looks identical whether it came
from ``repro check``, ``repro evolve``, a socket ``commit`` response or
a library call — machine consumers parse one schema.

Everything here is duck-typed over the library's result objects
(:class:`~repro.integrity.checker.CheckResult`,
:class:`~repro.integrity.evolution.ConstraintAdditionResult`, the
service's commit results) and returns plain ``dict``/``list`` trees
ready for :func:`json.dumps`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.logic.formulas import Atom, Literal
from repro.logic.unparse import unparse, unparse_atom


def atom_text(atom: Atom) -> str:
    return unparse_atom(atom)


def literal_text(literal: Literal) -> str:
    text = unparse_atom(literal.atom)
    return text if literal.positive else f"not {text}"


def substitution_json(substitution) -> Dict[str, str]:
    """A binding as ``{variable: term}`` with surface-syntax terms."""
    from repro.logic.unparse import unparse_term

    return {
        variable.name: unparse_term(term)
        for variable, term in sorted(
            substitution.items(), key=lambda item: item[0].name
        )
    }


def violation_json(violation) -> Dict:
    """One violated constraint instance, with its witness trigger."""
    return {
        "constraint": violation.constraint_id,
        "instance": unparse(violation.instance),
        "trigger": (
            literal_text(violation.trigger)
            if violation.trigger is not None
            else None
        ),
    }


def check_result_json(result) -> Dict:
    """An integrity verdict: ``repro check --format json`` and the
    service's gate/commit diagnostics."""
    return {
        "ok": result.ok,
        "method": result.method,
        "violations": [violation_json(v) for v in result.violations],
        "stats": dict(result.stats),
    }


def query_result_json(formula: str, value: bool) -> Dict:
    return {"formula": formula, "value": bool(value)}


def model_json(facts) -> List[str]:
    return sorted(unparse_atom(fact) for fact in facts)


def evolution_result_json(result) -> Dict:
    """A constraint-addition triage verdict (Section 4 workflow):
    status, the violation witnesses (repair targets) and — when the
    satisfiability checker ran — its verdict and sample model."""
    sat = result.satisfiability
    return {
        "status": result.status,
        "constraint": {
            "id": result.constraint.id,
            "formula": unparse(result.constraint.formula),
        },
        "witnesses": [substitution_json(w) for w in result.witnesses],
        "satisfiability": None if sat is None else sat.status,
        "sample_model": (
            model_json(result.sample_model)
            if result.sample_model is not None
            else None
        ),
        "diagnostics": diagnostics_json(
            getattr(result, "diagnostics", ()) or ()
        ),
    }


def transaction_json(transaction) -> Dict:
    return {"updates": transaction.to_strings()}


def diagnostics_json(diagnostics) -> List[Dict]:
    """Static-analyzer diagnostics, exactly as
    :meth:`repro.analysis.Diagnostic.to_dict` renders each one —
    ``repro lint --format json`` and the service's DDL responses share
    this shape."""
    return [diagnostic.to_dict() for diagnostic in diagnostics]


def commit_result_json(result) -> Dict:
    """A service commit outcome. ``check``/``triage`` carry the gate
    diagnostics exactly as :func:`check_result_json` /
    :func:`evolution_result_json` emit them; ``diagnostics`` carries
    the static analyzer's findings for DDL commits."""
    payload: Dict = {
        "status": result.status,
        "lsn": result.lsn,
        "reason": result.reason,
    }
    payload["check"] = (
        check_result_json(result.check) if result.check is not None else None
    )
    payload["triage"] = (
        evolution_result_json(result.triage)
        if result.triage is not None
        else None
    )
    payload["diagnostics"] = diagnostics_json(
        getattr(result, "diagnostics", ()) or ()
    )
    return payload

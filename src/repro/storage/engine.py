"""The storage engine: recovery, logging and checkpointing.

Directory layout (one directory per database)::

    <dir>/wal.log               the write-ahead log
    <dir>/snapshot-<lsn>.chk    the newest checkpoint

Recovery = newest snapshot + replay of every WAL record past its LSN.
Replay drives the *same* code paths a live commit does — each logged
transaction is applied to the :class:`FactStore` through Definition 1
and propagated through the DRed-maintained model — so the recovered
state is byte-for-byte the state the crashed process had acknowledged
(the crash tests additionally pin the recovered model against a
from-scratch recomputation). A torn tail (crash mid-append) is
truncated before the engine accepts new appends; only records that
passed the integrity gate are ever logged, so replay never needs to
re-run the checker.
"""

from __future__ import annotations

import os
from typing import List, Optional, Set, Tuple, Union

from repro.config import resolve_config
from repro.datalog.database import DeductiveDatabase
from repro.datalog.incremental import MaintainedModel
from repro.integrity.transactions import Transaction
from repro.logic.formulas import Atom
from repro.storage.snapshot import load_latest_snapshot, write_snapshot
from repro.storage.wal import WalRecord, WriteAheadLog

WAL_NAME = "wal.log"


def directory_initialized(directory) -> bool:
    """Whether *directory* holds database state (snapshot or WAL) —
    probed without creating anything, so callers can distinguish a
    real database from a stale empty directory or a typo'd name."""
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        return False
    wal_path = os.path.join(directory, WAL_NAME)
    if os.path.exists(wal_path) and os.path.getsize(wal_path) > 0:
        return True
    return load_latest_snapshot(directory) is not None


def apply_transaction(
    transaction: Transaction,
    database: DeductiveDatabase,
    model: MaintainedModel,
) -> Tuple[Set[Atom], Set[Atom]]:
    """Apply one committed transaction to the extensional store
    (Definition 1) and the DRed-maintained model. The ONE apply step:
    live commits and WAL replay both call this, which is what makes
    the recovered state equal the acknowledged state by construction.

    Returns DRed's exact ``(inserted, deleted)`` model change sets —
    the invalidation keys for any derived-result caches layered above.
    """
    for literal in transaction.net():
        database.apply_update(literal)
    return model.apply(transaction)


class RecoveredState:
    """What :meth:`StorageEngine.recover` hands the service layer."""

    __slots__ = (
        "database",
        "model",
        "last_lsn",
        "snapshot_lsn",
        "replayed_transactions",
        "truncated_bytes",
    )

    def __init__(
        self,
        database: DeductiveDatabase,
        model: MaintainedModel,
        last_lsn: int,
        snapshot_lsn: int,
        replayed_transactions: int,
        truncated_bytes: int,
    ):
        self.database = database
        self.model = model
        self.last_lsn = last_lsn
        self.snapshot_lsn = snapshot_lsn
        self.replayed_transactions = replayed_transactions
        self.truncated_bytes = truncated_bytes

    def __repr__(self) -> str:
        return (
            f"RecoveredState(lsn={self.last_lsn}, "
            f"snapshot={self.snapshot_lsn}, "
            f"replayed={self.replayed_transactions}, {self.database!r})"
        )


class StorageEngine:
    """Durability for one database directory."""

    def __init__(self, directory, sync: bool = True):
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.sync = sync
        self.wal = WriteAheadLog(
            os.path.join(self.directory, WAL_NAME), sync=sync
        )

    # -- lifecycle ----------------------------------------------------------------

    def is_initialized(self) -> bool:
        return (
            load_latest_snapshot(self.directory) is not None
            or self.wal.size() > 0
        )

    def initialize(
        self,
        database: DeductiveDatabase,
        model: Optional[MaintainedModel] = None,
    ) -> None:
        """Persist *database* as the state at LSN 0 — the creation
        checkpoint a fresh database directory starts from."""
        write_snapshot(
            self.directory,
            0,
            database,
            model.model if model is not None else None,
        )

    # -- recovery -----------------------------------------------------------------

    def recover(
        self,
        plan: Optional[str] = None,
        exec_mode: Optional[str] = None,
        *,
        config=None,
    ) -> RecoveredState:
        """Rebuild the last committed state: snapshot + WAL replay.

        *config* (an :class:`repro.config.EngineConfig`) selects the
        maintenance plan/exec mode and the fact-store backend the
        recovered state is materialized into.
        """
        config = resolve_config(
            config, plan=plan, exec_mode=exec_mode, warn=False
        )
        snapshot = load_latest_snapshot(
            self.directory, backend=config.backend
        )
        if snapshot is not None:
            database = snapshot.database
            snapshot_lsn = snapshot.lsn
            model_store = snapshot.model
        else:
            database = DeductiveDatabase.from_source(
                "", backend=config.backend
            )
            snapshot_lsn = 0
            model_store = None
        records, valid_bytes = self.wal.scan()
        truncated = self.wal.size() - valid_bytes
        if truncated:
            self.wal.truncate_to(valid_bytes)
        if model_store is not None:
            model = MaintainedModel.from_snapshot(
                database.facts,
                database.program,
                model_store,
                config=config,
            )
        else:
            model = MaintainedModel(
                database.facts, database.program, config=config
            )
        last_lsn = snapshot_lsn
        replayed = 0
        program_changed = False
        for record in records:
            if record.lsn <= snapshot_lsn:
                continue  # already folded into the snapshot
            replayed += self._replay(record, database, model)
            program_changed = program_changed or record.kind == "rule"
            last_lsn = record.lsn
        if program_changed:
            # Replayed rule DDL changed the program; the maintained
            # model above was propagated under the old one. Rebuild it
            # from the final facts + program — exactly the rebuild the
            # live rule commit performed before logging the record.
            model = MaintainedModel(
                database.facts, database.program, config=config
            )
        return RecoveredState(
            database, model, last_lsn, snapshot_lsn, replayed, truncated
        )

    def _replay(
        self,
        record: WalRecord,
        database: DeductiveDatabase,
        model: MaintainedModel,
    ) -> int:
        """Apply one recovered record; returns transactions applied."""
        if record.kind == "txn":
            apply_transaction(
                Transaction(record.data["updates"]), database, model
            )
            return 1
        if record.kind == "batch":
            entries = sorted(record.data["txns"], key=lambda e: e["lsn"])
            for entry in entries:
                apply_transaction(
                    Transaction(entry["updates"]), database, model
                )
            return len(entries)
        if record.kind == "constraint":
            database.add_constraint(
                record.data["source"], id=record.data.get("id")
            )
            return 1
        if record.kind == "rule":
            database.add_rule(record.data["source"])
            return 1
        raise ValueError(f"unknown record kind {record.kind!r}")

    # -- logging ------------------------------------------------------------------

    def log(self, records: Union[WalRecord, List[WalRecord]]) -> None:
        """Durably append commit record(s) — one write, one fsync."""
        if isinstance(records, WalRecord):
            records = [records]
        self.wal.append_batch(records)

    # -- checkpointing ------------------------------------------------------------

    def checkpoint(
        self,
        lsn: int,
        database: DeductiveDatabase,
        model: Optional[MaintainedModel] = None,
    ) -> None:
        """Fold the log into a fresh snapshot at *lsn* and empty it.

        Ordering is crash-safe: the snapshot replaces atomically first;
        only then is the WAL truncated. A crash in between replays WAL
        records whose LSN the snapshot already covers — the LSN filter
        in :meth:`recover` makes that replay a no-op.
        """
        write_snapshot(
            self.directory,
            lsn,
            database,
            model.model if model is not None else None,
        )
        self.wal.reset()

    def close(self) -> None:
        self.wal.close()

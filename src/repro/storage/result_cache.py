"""A size-bounded derived-result cache with per-predicate-key
invalidation.

Generation-flush caches (clear everything whenever anything commits)
waste exactly the work an incremental maintenance algorithm saves.
DRed gives us something much sharper: every commit returns the *exact*
set of atoms whose truth in the canonical model changed — extensional
and derived alike, post over-deletion/re-derivation. A cached answer
is a function of the extensions of the predicates its formula
mentions, so it can only change if the commit's change set touches one
of those predicates. :meth:`ResultCache.invalidate` therefore evicts
per predicate key, not per generation: a commit touching ``p`` leaves
every ``q``-only entry warm.

Two precision levels per entry:

* **predicate-level** (``atoms=None``): the entry depends on the whole
  extension of its ``deps`` predicates — any change-set atom of a dep
  predicate evicts it. Used for formula evaluations (quantifiers sweep
  extensions).
* **atom-level** (``atoms={...}``): the entry depends only on the
  listed ground atoms — a change-set atom of a dep predicate evicts it
  only if it *is* one of those atoms. Used for ground ``holds``
  probes: committing ``edge(c,d)`` does not evict a cached
  ``edge(a,b)``.

Entries are LRU-bounded (``max_entries``); keys embed the
:meth:`EngineConfig.key` evaluation identity, so answers computed
under one strategy/backend never serve another. All counters
(``hits``/``misses``/``evictions``/``invalidations``) are exposed for
the benchmark and the service stats endpoint. The cache is
thread-safe: the NDJSON server's handler threads share one instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set, Tuple

from repro.logic.formulas import Atom
from repro.obs.metrics import default_registry

# Process-wide mirrors of the per-instance counters, so the `metrics`
# verb aggregates cache behaviour across every live cache.
_HITS = default_registry().counter("cache.hits")
_MISSES = default_registry().counter("cache.misses")
_EVICTIONS = default_registry().counter("cache.evictions")
_INVALIDATIONS = default_registry().counter("cache.invalidations")


class _Entry:
    __slots__ = ("value", "deps", "atoms")

    def __init__(
        self,
        value,
        deps: FrozenSet[str],
        atoms: Optional[FrozenSet[Atom]],
    ):
        self.value = value
        self.deps = deps
        self.atoms = atoms


class ResultCache:
    """LRU cache of derived results, invalidated from DRed change sets."""

    def __init__(self, max_entries: int = 256):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive: {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()
        # Reverse index: dep predicate -> keys of entries depending on it.
        self._by_pred: Dict[str, Set[Hashable]] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- lookup / store -----------------------------------------------------------

    def get(self, key: Hashable) -> Tuple[bool, object]:
        """``(True, value)`` on a hit (freshening the entry's LRU
        position), ``(False, None)`` on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                _MISSES.inc()
                return False, None
            self._entries.move_to_end(key)
            self.hits += 1
            _HITS.inc()
            return True, entry.value

    def put(
        self,
        key: Hashable,
        value,
        deps: Iterable[str],
        atoms: Optional[Iterable[Atom]] = None,
    ) -> None:
        """Store *value* under *key*, recording the predicates (*deps*)
        — and optionally the exact ground *atoms* — the result depends
        on. Evicts the least recently used entry past the bound."""
        deps_set = frozenset(deps)
        atoms_set = None if atoms is None else frozenset(atoms)
        with self._lock:
            if key in self._entries:
                self._drop(key)
            self._entries[key] = _Entry(value, deps_set, atoms_set)
            for pred in deps_set:
                self._by_pred.setdefault(pred, set()).add(key)
            while len(self._entries) > self.max_entries:
                oldest = next(iter(self._entries))
                self._drop(oldest)
                self.evictions += 1
                _EVICTIONS.inc()

    # -- invalidation -------------------------------------------------------------

    def invalidate(self, changed: Iterable[Atom]) -> int:
        """Evict every entry whose recorded dependencies intersect the
        *changed* atoms (a commit's DRed change set: inserted plus
        deleted model atoms). Returns the number of entries evicted."""
        changed_atoms = set(changed)
        if not changed_atoms:
            return 0
        changed_preds = {atom.pred for atom in changed_atoms}
        dropped = 0
        with self._lock:
            for pred in changed_preds:
                keys = self._by_pred.get(pred)
                if not keys:
                    continue
                for key in list(keys):
                    entry = self._entries.get(key)
                    if entry is None:
                        continue
                    if entry.atoms is not None and not (
                        entry.atoms & changed_atoms
                    ):
                        continue  # atom-level precision: key untouched
                    self._drop(key)
                    dropped += 1
            self.invalidations += dropped
        if dropped:
            _INVALIDATIONS.inc(dropped)
        return dropped

    def clear(self) -> None:
        """Drop every entry (counters survive — they describe the
        cache's lifetime, not its contents)."""
        with self._lock:
            self._entries.clear()
            self._by_pred.clear()

    def _drop(self, key: Hashable) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for pred in entry.deps:
            keys = self._by_pred.get(pred)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_pred[pred]

    # -- inspection ---------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """This cache's counters under the registry's ``layer.metric``
        names (see :mod:`repro.obs.metrics`) — the per-instance view of
        the process-wide ``cache.*`` series."""
        with self._lock:
            return {
                "cache.entries": len(self._entries),
                "cache.max_entries": self.max_entries,
                "cache.hits": self.hits,
                "cache.misses": self.misses,
                "cache.evictions": self.evictions,
                "cache.invalidations": self.invalidations,
            }

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"ResultCache({stats['cache.entries']}/"
            f"{stats['cache.max_entries']} entries, "
            f"{stats['cache.hits']} hits, "
            f"{stats['cache.misses']} misses)"
        )

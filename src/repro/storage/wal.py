"""The write-ahead log: checksummed, newline-delimited JSON records.

One record per line::

    {"lsn": 17, "kind": "txn", "data": {...}, "crc": 2868599729}

``crc`` is the CRC-32 of the canonical JSON encoding (sorted keys, no
whitespace) of the record *without* its ``crc`` field, so a torn write
— the tail a crash mid-``write`` leaves behind — is detected as either
non-JSON or a checksum mismatch. Recovery tolerates exactly that: a
corrupt *tail* is truncated (the transaction was never acknowledged,
so dropping it is correct), while a corrupt record *followed by valid
ones* means real damage and raises :class:`WalCorruptionError` instead
of silently losing acknowledged commits.

Records are appended strictly before the in-memory state is touched
(write-ahead discipline) and each append batch is flushed and —
when ``sync`` is on — ``fsync``\\ ed as one unit, which is what lets
the service's group commit amortize durability cost across concurrent
writers.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import default_registry
from repro.obs.trace import current_trace

# wal.appends counts durable write calls (a group-committed batch is
# one append), wal.bytes the payload volume, wal.fsyncs the actual
# fsync system calls; wal.append_seconds is the write+flush+fsync
# latency distribution — the durability half of commit latency.
_APPENDS = default_registry().counter("wal.appends")
_BYTES = default_registry().counter("wal.bytes")
_FSYNCS = default_registry().counter("wal.fsyncs")
_APPEND_SECONDS = default_registry().histogram("wal.append_seconds")
# Health signals the /readyz probe reads: wal.healthy flips to 0 when
# a durable write raises (disk full, file gone) and back to 1 on the
# next success; the last_*_unix gauges expose append-vs-fsync lag.
_APPEND_FAILURES = default_registry().counter("wal.append_failures")
_HEALTHY = default_registry().gauge("wal.healthy")
_HEALTHY.set(1)
_LAST_APPEND_UNIX = default_registry().gauge("wal.last_append_unix")
_LAST_FSYNC_UNIX = default_registry().gauge("wal.last_fsync_unix")

#: Record kinds the engine understands. ``txn`` carries one committed
#: fact transaction; ``batch`` carries several group-committed ones as
#: a single atomic unit (all-or-nothing under crash, because the CRC
#: covers the whole line); ``constraint`` is accepted constraint DDL;
#: ``rule`` is admitted rule DDL (the rule's surface source).
RECORD_KINDS = ("txn", "batch", "constraint", "rule")


class WalError(Exception):
    """Base class for write-ahead log failures."""


class WalCorruptionError(WalError):
    """A corrupt record *before* the end of the log: acknowledged
    commits would be lost by truncating, so recovery refuses."""


def _payload_bytes(lsn: int, kind: str, data: Dict) -> bytes:
    return json.dumps(
        {"lsn": lsn, "kind": kind, "data": data},
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")


class WalRecord:
    """One durable log entry."""

    __slots__ = ("lsn", "kind", "data")

    def __init__(self, lsn: int, kind: str, data: Dict):
        if kind not in RECORD_KINDS:
            raise ValueError(
                f"unknown WAL record kind {kind!r}; pick one of {RECORD_KINDS}"
            )
        self.lsn = lsn
        self.kind = kind
        self.data = data

    def to_line(self) -> bytes:
        payload = _payload_bytes(self.lsn, self.kind, self.data)
        crc = zlib.crc32(payload)
        body = json.dumps(
            {"lsn": self.lsn, "kind": self.kind, "data": self.data, "crc": crc},
            sort_keys=True,
            separators=(",", ":"),
        )
        return body.encode("utf-8") + b"\n"

    @classmethod
    def from_line(cls, line: bytes) -> "WalRecord":
        """Parse and verify one log line; raises ``ValueError`` on any
        malformation (bad JSON, missing fields, checksum mismatch)."""
        decoded = json.loads(line)
        if not isinstance(decoded, dict):
            raise ValueError("record is not an object")
        try:
            lsn, kind, data, crc = (
                decoded["lsn"],
                decoded["kind"],
                decoded["data"],
                decoded["crc"],
            )
        except KeyError as missing:
            raise ValueError(f"record lacks field {missing}") from None
        if zlib.crc32(_payload_bytes(lsn, kind, data)) != crc:
            raise ValueError("checksum mismatch")
        return cls(lsn, kind, data)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, WalRecord)
            and (self.lsn, self.kind, self.data)
            == (other.lsn, other.kind, other.data)
        )

    def __repr__(self) -> str:
        return f"WalRecord(lsn={self.lsn}, kind={self.kind!r})"


class WriteAheadLog:
    """Append-only log file with batch append and tail-safe scan."""

    def __init__(self, path, sync: bool = True):
        self.path = os.fspath(path)
        self.sync = sync
        self._file = None

    # -- appending ----------------------------------------------------------------

    def _handle(self):
        if self._file is None:
            self._file = open(self.path, "ab")
        return self._file

    def _write_bytes(self, data: bytes) -> None:
        """One durable write: buffered write, flush, fsync (when sync
        is on). Isolated so crash tests can inject torn writes. A
        failed write marks the WAL unhealthy (read by ``/readyz``)
        before the error propagates; the next success clears it. When
        a trace is active (e.g. the group-commit leader serving an
        ``--explain`` request) the write shows up as a ``wal.append``
        span under that trace."""
        trace = current_trace()
        if trace is None:
            self._write_durable(data)
            return
        with trace.span("wal.append", bytes=len(data)):
            self._write_durable(data)

    def _write_durable(self, data: bytes) -> None:
        start = time.perf_counter()
        try:
            handle = self._handle()
            handle.write(data)
            handle.flush()
            _LAST_APPEND_UNIX.set(time.time())
            if self.sync:
                os.fsync(handle.fileno())
                _FSYNCS.inc()
                _LAST_FSYNC_UNIX.set(time.time())
        except OSError:
            _APPEND_FAILURES.inc()
            _HEALTHY.set(0)
            raise
        _HEALTHY.set(1)
        _APPENDS.inc()
        _BYTES.inc(len(data))
        _APPEND_SECONDS.observe(time.perf_counter() - start)

    def append(self, record: WalRecord) -> None:
        self._write_bytes(record.to_line())

    def append_batch(self, records: List[WalRecord]) -> None:
        """Append *records* with a single write and a single fsync —
        the group-commit amortization."""
        if not records:
            return
        self._write_bytes(b"".join(r.to_line() for r in records))

    # -- scanning -----------------------------------------------------------------

    def scan(self) -> Tuple[List[WalRecord], int]:
        """All valid records plus the byte offset where they end.

        A trailing torn record is reported by a ``valid_bytes`` short
        of the file size (the caller truncates); corruption that is
        *not* at the tail raises :class:`WalCorruptionError`.
        """
        records: List[WalRecord] = []
        valid_bytes = 0
        torn: Optional[str] = None
        if not os.path.exists(self.path):
            return records, 0
        last_lsn = -1
        with open(self.path, "rb") as handle:
            offset = 0
            for line in handle:
                stripped = line.rstrip(b"\n")
                if torn is not None:
                    if _parses(stripped) and line.endswith(b"\n"):
                        raise WalCorruptionError(
                            f"{self.path}: corrupt record mid-log ({torn}); "
                            f"valid records follow it — refusing to "
                            f"truncate acknowledged commits"
                        )
                    offset += len(line)
                    continue
                try:
                    record = WalRecord.from_line(stripped)
                except ValueError as error:
                    torn = str(error)
                    offset += len(line)
                    continue
                if not line.endswith(b"\n"):
                    # Complete JSON but no newline: the write may still
                    # have been torn mid-line in a way that happens to
                    # parse; only a terminated line is trustworthy.
                    torn = "unterminated final record"
                    offset += len(line)
                    continue
                if record.lsn <= last_lsn:
                    raise WalCorruptionError(
                        f"{self.path}: LSN not increasing at byte {offset} "
                        f"({record.lsn} after {last_lsn})"
                    )
                last_lsn = record.lsn
                offset += len(line)
                records.append(record)
                valid_bytes = offset
        return records, valid_bytes

    def truncate_to(self, valid_bytes: int) -> None:
        """Drop everything past *valid_bytes* (the torn tail)."""
        self.close()
        with open(self.path, "ab") as handle:
            handle.truncate(valid_bytes)
            handle.flush()
            os.fsync(handle.fileno())

    def reset(self) -> None:
        """Empty the log (after its records landed in a snapshot)."""
        self.truncate_to(0)

    def size(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def _parses(line: bytes) -> bool:
    try:
        WalRecord.from_line(line)
    except ValueError:
        return False
    return True

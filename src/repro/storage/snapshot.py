"""Snapshots: the durable database state at one log position.

A snapshot file is text with three sections::

    {"format": 1, "lsn": 42, "model": true}     <- JSON header line
    %%db
    <database surface syntax — DeductiveDatabase.to_source()>
    %%model
    <one canonical-model fact per line>

The database section round-trips through the parser (the library's
existing persistence format); the model section persists the
DRed-maintained canonical model so recovery *resumes* it
(:meth:`MaintainedModel.from_snapshot`) instead of recomputing the
fixpoint. Snapshots are written to a temporary file, fsynced and
``os.replace``\\ d into place, so a crash mid-snapshot leaves the
previous snapshot intact; stale snapshots are pruned only after the
new one is durable.
"""

from __future__ import annotations

import json
import os
import re
from typing import List, Optional

from repro.datalog.database import DeductiveDatabase
from repro.datalog.facts import FactStore
from repro.logic.parser import parse_atom
from repro.storage.backends import make_store
from repro.logic.unparse import unparse_atom

SNAPSHOT_FORMAT = 1
_SNAPSHOT_NAME = re.compile(r"snapshot-(\d{12})\.chk\Z")
_DB_MARKER = "%%db"
_MODEL_MARKER = "%%model"


class SnapshotError(Exception):
    """A snapshot file that cannot be read back."""


class Snapshot:
    """A decoded snapshot: the database plus (optionally) its model."""

    __slots__ = ("lsn", "database", "model")

    def __init__(
        self,
        lsn: int,
        database: DeductiveDatabase,
        model,  # Optional[StoreBackend] — FactStore or SqliteFactStore
    ):
        self.lsn = lsn
        self.database = database
        self.model = model

    def __repr__(self) -> str:
        return f"Snapshot(lsn={self.lsn}, {self.database!r})"


def snapshot_path(directory, lsn: int) -> str:
    return os.path.join(os.fspath(directory), f"snapshot-{lsn:012d}.chk")


def write_snapshot(
    directory,
    lsn: int,
    database: DeductiveDatabase,
    model: Optional[FactStore] = None,
) -> str:
    """Atomically persist *database* (and *model*) as the state at
    *lsn*; returns the snapshot's path. Older snapshots are pruned
    after the new one is durable."""
    directory = os.fspath(directory)
    lines: List[str] = [
        json.dumps(
            {
                "format": SNAPSHOT_FORMAT,
                "lsn": lsn,
                "model": model is not None,
                # Surface syntax has no constraint-id annotation, so the
                # header carries the ids positionally (source order).
                "constraint_ids": [c.id for c in database.constraints],
            }
        ),
        _DB_MARKER,
        database.to_source().rstrip("\n"),
    ]
    if model is not None:
        lines.append(_MODEL_MARKER)
        lines.extend(sorted(unparse_atom(fact) for fact in model))
    content = "\n".join(lines) + "\n"
    final = snapshot_path(directory, lsn)
    temporary = final + ".tmp"
    with open(temporary, "w", encoding="utf-8") as handle:
        handle.write(content)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, final)
    _fsync_directory(directory)
    for stale in _snapshot_files(directory):
        if stale != final:
            os.unlink(stale)
    return final


def load_latest_snapshot(
    directory, *, backend: Optional[str] = None
) -> Optional[Snapshot]:
    """The newest readable snapshot in *directory*, or ``None``.
    *backend* selects the fact-store backend (``"dict"``/``"sqlite"``)
    the database and model sections are materialized into."""
    paths = _snapshot_files(os.fspath(directory))
    if not paths:
        return None
    return _read_snapshot(paths[-1], backend=backend)


def _read_snapshot(path: str, *, backend: Optional[str] = None) -> Snapshot:
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    lines = text.splitlines()
    if not lines:
        raise SnapshotError(f"{path}: empty snapshot")
    try:
        header = json.loads(lines[0])
        lsn = int(header["lsn"])
        fmt = header["format"]
    except (ValueError, KeyError, TypeError) as error:
        raise SnapshotError(f"{path}: bad header ({error})") from None
    if fmt != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path}: unsupported format {fmt!r}")
    if len(lines) < 2 or lines[1] != _DB_MARKER:
        raise SnapshotError(f"{path}: missing {_DB_MARKER} section")
    try:
        model_at = lines.index(_MODEL_MARKER)
    except ValueError:
        model_at = len(lines)
    source = "\n".join(lines[2:model_at])
    try:
        database = DeductiveDatabase.from_source(source, backend=backend)
    except ValueError as error:
        raise SnapshotError(f"{path}: bad database section ({error})") from None
    ids = header.get("constraint_ids")
    if ids is not None:
        if len(ids) != len(database.constraints):
            raise SnapshotError(
                f"{path}: {len(ids)} constraint ids for "
                f"{len(database.constraints)} constraints"
            )
        for constraint, constraint_id in zip(database.constraints, ids):
            constraint.id = str(constraint_id)
    model = None
    if model_at < len(lines):
        model = make_store(backend)
        for line in lines[model_at + 1:]:
            if line.strip():
                try:
                    model.add(parse_atom(line))
                except ValueError as error:
                    raise SnapshotError(
                        f"{path}: bad model fact {line!r} ({error})"
                    ) from None
    return Snapshot(lsn, database, model)


def _snapshot_files(directory: str) -> List[str]:
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    found = sorted(n for n in names if _SNAPSHOT_NAME.match(n))
    return [os.path.join(directory, name) for name in found]


def _fsync_directory(directory: str) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)

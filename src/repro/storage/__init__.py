"""Durable storage: backends, write-ahead log, snapshots, recovery.

Two halves live here. :mod:`repro.storage.backends` is the fact-store
contract (:class:`StoreBackend`) with its dict and sqlite
implementations, plus :mod:`repro.storage.result_cache`, the
precisely-invalidated derived-result cache. The remaining modules are
the service layer's durability substrate: committed transactions are
appended to a checksummed, newline-delimited write-ahead log *before*
they are applied in memory; periodic snapshots bound replay time; and
recovery replays the log's suffix into a fact store while restoring
the DRed-maintained model, so a restarted server resumes at exactly
the last committed state.

Re-exports resolve lazily (PEP 562): the durability modules import the
datalog layer, while the datalog layer's ``FactStore`` imports
``backends.base`` to subclass the storage contract — eager re-exports
here would close that loop into an import cycle.
"""

from typing import TYPE_CHECKING

_EXPORTS = {
    "RecoveredState": "repro.storage.engine",
    "StorageEngine": "repro.storage.engine",
    "Snapshot": "repro.storage.snapshot",
    "load_latest_snapshot": "repro.storage.snapshot",
    "write_snapshot": "repro.storage.snapshot",
    "WalCorruptionError": "repro.storage.wal",
    "WalRecord": "repro.storage.wal",
    "WriteAheadLog": "repro.storage.wal",
    "BACKENDS": "repro.storage.backends",
    "DEFAULT_BACKEND": "repro.storage.backends",
    "StoreBackend": "repro.storage.backends",
    "StoreCapacityError": "repro.storage.backends",
    "make_store": "repro.storage.backends",
    "validate_backend": "repro.storage.backends",
    "ResultCache": "repro.storage.result_cache",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static-analysis imports only
    from repro.storage.backends import (  # noqa: F401
        BACKENDS,
        DEFAULT_BACKEND,
        StoreBackend,
        StoreCapacityError,
        make_store,
        validate_backend,
    )
    from repro.storage.engine import RecoveredState, StorageEngine  # noqa: F401
    from repro.storage.result_cache import ResultCache  # noqa: F401
    from repro.storage.snapshot import (  # noqa: F401
        Snapshot,
        load_latest_snapshot,
        write_snapshot,
    )
    from repro.storage.wal import (  # noqa: F401
        WalCorruptionError,
        WalRecord,
        WriteAheadLog,
    )

"""Durable storage: write-ahead log, snapshots, crash recovery.

The service layer's durability substrate. Committed transactions are
appended to a checksummed, newline-delimited write-ahead log *before*
they are applied in memory; periodic snapshots bound replay time; and
recovery replays the log's suffix into a :class:`FactStore` while
restoring the DRed-maintained model, so a restarted server resumes at
exactly the last committed state.
"""

from repro.storage.engine import RecoveredState, StorageEngine
from repro.storage.snapshot import Snapshot, load_latest_snapshot, write_snapshot
from repro.storage.wal import (
    WalCorruptionError,
    WalRecord,
    WriteAheadLog,
)

"""The storage contract every fact-store backend implements.

Until PR 6 the contract was *implicit*: ``FactStore`` defined it by
example, and ``OverlayFactStore``, ``_CombinedView``, ``_DemandView``
and ``_PreUpdateView`` each re-implemented the read half by
duck-typing. This module makes it explicit: :class:`StoreBackend` is
the abstract interface the evaluators, the join kernel and the join
planner consume, so a database larger than one interpreter's heap is a
backend choice (``EngineConfig(backend="sqlite")``) rather than a
rewrite.

The contract has three layers:

* **membership and mutation** — :meth:`add` / :meth:`remove` /
  :meth:`contains` / :meth:`clear` over ground atoms, with set
  semantics (``add`` reports whether the fact was new);
* **access paths** — :meth:`match` (pattern scan through the cheapest
  index), :meth:`bucket` (the composite group probe the batched join
  kernel relies on: all facts of a predicate whose arguments at a
  position tuple equal a key tuple, one hash/index probe), and
  :meth:`estimate` (the O(1)-ish cardinality figure the join planner
  ranks literals by);
* **inspection** — :meth:`predicates` / :meth:`count` / ``len`` /
  iteration / :meth:`constants` / :meth:`copy`.

Group-index maintenance hooks: a backend must expose a
:attr:`group_builds` counter — how many *build scans* it has spent
constructing composite indexes. The batch kernel's amortization
argument (and the conformance suite) pins that repeated :meth:`bucket`
probes of an unchanged predicate never rescan: the counter may grow
only when a new (predicate, positions) pair is first probed, never on
a repeat probe and never on incremental maintenance under
:meth:`add`/:meth:`remove`. The module-level helpers
(:func:`build_group_index`, :func:`index_into_groups`,
:func:`drop_from_groups`) are the shared in-memory implementation of
those hooks, used by the dict backend and the DRed overlay sets alike.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Iterator, Set, Tuple

from repro.logic.formulas import Atom
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant
from repro.logic.unify import match

#: The backend names :func:`repro.storage.backends.make_store` accepts.
BACKENDS = ("dict", "sqlite")


def validate_backend(backend: str) -> str:
    """Fail fast on an unknown backend name, listing the accepted
    values — mirrors :func:`repro.datalog.planner.validate_plan`."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; pick one of {BACKENDS}"
        )
    return backend


class StoreCapacityError(RuntimeError):
    """An in-memory store exceeded its configured fact capacity.

    Raised by bounded dict stores (``FactStore(max_facts=...)``) when an
    insert would push them past the cap — the signal that a workload
    has outgrown the in-process backend and should move to an
    out-of-core one (``backend="sqlite"``)."""


# A composite group index: argument positions -> key tuple -> facts.
GroupIndex = Dict[Tuple[int, ...], Dict[Tuple[Constant, ...], Set[Atom]]]


def build_group_index(
    facts: Iterable[Atom], positions: Tuple[int, ...]
) -> Dict[Tuple[Constant, ...], Set[Atom]]:
    """One scan of *facts* grouped by their argument values at
    *positions* (ascending) — the lazy-build step every in-memory
    composite index shares (:class:`repro.datalog.facts.FactStore`,
    the DRed overlays)."""
    index: Dict[Tuple[Constant, ...], Set[Atom]] = {}
    deepest = positions[-1]
    for fact in facts:
        args = fact.args
        if len(args) <= deepest:
            continue  # arity mismatch: the pattern cannot match
        index.setdefault(tuple(args[p] for p in positions), set()).add(fact)
    return index


def index_into_groups(groups: GroupIndex, fact: Atom) -> None:
    """Incrementally maintain every built group index under an insert."""
    args = fact.args
    for positions, index in groups.items():
        if len(args) <= positions[-1]:
            continue
        key = tuple(args[p] for p in positions)
        index.setdefault(key, set()).add(fact)


def drop_from_groups(groups: GroupIndex, fact: Atom) -> None:
    """Incrementally maintain every built group index under a delete."""
    args = fact.args
    for positions, index in groups.items():
        if len(args) <= positions[-1]:
            continue
        key = tuple(args[p] for p in positions)
        slot = index.get(key)
        if slot is not None:
            slot.discard(fact)
            if not slot:
                del index[key]


class StoreBackend(abc.ABC):
    """Abstract fact-store backend: a mutable, indexed set of ground
    atoms behind the access paths the evaluators consume."""

    # No storage of our own: concrete backends keep their slotted (or
    # dict-backed) layout. ``group_builds`` is annotated, not assigned,
    # so slotted subclasses may declare it as a slot.
    __slots__ = ()

    #: Registry name of the backend (``"dict"``, ``"sqlite"``, ...).
    name = "abstract"

    #: Build scans spent constructing composite group indexes — the
    #: group-index maintenance hook the conformance suite pins (repeat
    #: probes and incremental maintenance must not grow it). Concrete
    #: backends initialise it to 0 in ``__init__``.
    group_builds: int

    # -- membership and mutation --------------------------------------------------

    @abc.abstractmethod
    def add(self, fact: Atom) -> bool:
        """Insert *fact* (ground); True iff it was not already present."""

    @abc.abstractmethod
    def remove(self, fact: Atom) -> bool:
        """Delete *fact*; True iff it was present."""

    @abc.abstractmethod
    def contains(self, fact: Atom) -> bool:
        """Membership of a ground atom."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every fact (and every index built over them)."""

    def __contains__(self, fact: Atom) -> bool:
        return self.contains(fact)

    # -- access paths -------------------------------------------------------------

    @abc.abstractmethod
    def facts(self, pred: str) -> frozenset:
        """All stored facts of predicate *pred* (frozen snapshot)."""

    @abc.abstractmethod
    def match(self, pattern: Atom) -> Iterator[Atom]:
        """All stored facts matching *pattern* (which may contain
        variables, including repeated ones)."""

    @abc.abstractmethod
    def bucket(
        self,
        pred: str,
        positions: Tuple[int, ...],
        key: Tuple[Constant, ...],
    ) -> Iterable[Atom]:
        """All facts of *pred* whose arguments at *positions* equal
        *key* — one composite-index probe, the batched join kernel's
        access path. An empty *positions* returns the predicate's whole
        extent. The result may be a live internal collection: treat it
        as read-only and materialize before mutating mid-iteration."""

    def match_substitutions(self, pattern: Atom) -> Iterator[Substitution]:
        """Answer substitutions for *pattern* against the store."""
        for fact in self.match(pattern):
            subst = match(pattern, fact)
            if subst is not None:
                yield subst

    @abc.abstractmethod
    def estimate(self, pattern: Atom) -> int:
        """Cheap upper bound on the facts matching *pattern* — the
        access-path cost figure the join planner ranks literals by.
        Must never undershoot the true match count."""

    # -- inspection ---------------------------------------------------------------

    @abc.abstractmethod
    def predicates(self) -> frozenset:
        """All predicates with at least one stored fact."""

    @abc.abstractmethod
    def count(self, pred: str) -> int:
        """Exact number of stored facts of predicate *pred*."""

    @abc.abstractmethod
    def constants(self) -> Set[Constant]:
        """All constants appearing in stored facts — the active domain."""

    @abc.abstractmethod
    def copy(self) -> "StoreBackend":
        """An independent same-backend clone of the current contents."""

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def __iter__(self) -> Iterator[Atom]: ...

"""Fact-store backend registry.

Two backends ship today, selected by ``EngineConfig.backend`` (or the
``REPRO_BACKEND`` environment variable, mirroring ``REPRO_EXEC``):

* ``"dict"`` — :class:`repro.datalog.facts.FactStore`, the in-process
  reference implementation: hash-indexed Python sets, the fastest
  choice for models that fit in one interpreter's heap.
* ``"sqlite"`` — :class:`.sqlite_store.SqliteFactStore`, out-of-core
  relations in an embedded SQLite database (in-memory by default, a
  file when given a path) with composite ``bucket()`` probes mapped to
  real DB indexes, for EDBs and models larger than RAM.

Both implement the :class:`.base.StoreBackend` contract and pass the
same conformance suite (``tests/storage/test_backend_conformance.py``).

This package deliberately imports no sibling at module level beyond
``base`` (a leaf): :mod:`repro.datalog.facts` itself imports
``backends.base`` to subclass the contract, so a module-level import of
the dict store here would be circular. :func:`make_store` resolves
backend classes lazily instead.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from repro.logic.formulas import Atom

from .base import (  # noqa: F401  (re-exported contract surface)
    BACKENDS,
    GroupIndex,
    StoreBackend,
    StoreCapacityError,
    build_group_index,
    drop_from_groups,
    index_into_groups,
    validate_backend,
)

#: Process-wide default backend; a typo'd REPRO_BACKEND aborts import
#: with one clear error, exactly like REPRO_EXEC in the join kernel.
DEFAULT_BACKEND = validate_backend(os.environ.get("REPRO_BACKEND", "dict"))


def make_store(
    backend: Optional[str] = None,
    facts: Iterable[Atom] = (),
    *,
    path: Optional[str] = None,
    max_facts: Optional[int] = None,
) -> StoreBackend:
    """Build a fact store of the requested *backend* seeded with
    *facts*.

    ``path`` places a sqlite store on disk (out-of-core; ignored with a
    ``ValueError`` for the dict backend, which has no file form).
    ``max_facts`` caps the dict backend's in-memory footprint
    (:class:`.base.StoreCapacityError` past the cap); the sqlite
    backend is unbounded by design.
    """
    backend = validate_backend(backend or DEFAULT_BACKEND)
    if backend == "sqlite":
        if max_facts is not None:
            raise ValueError("max_facts applies to the dict backend only")
        from .sqlite_store import SqliteFactStore

        return SqliteFactStore(facts, path=path)
    if path is not None:
        raise ValueError("path applies to the sqlite backend only")
    from repro.datalog.facts import FactStore

    return FactStore(facts, max_facts=max_facts)


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "GroupIndex",
    "StoreBackend",
    "StoreCapacityError",
    "build_group_index",
    "drop_from_groups",
    "index_into_groups",
    "make_store",
    "validate_backend",
]

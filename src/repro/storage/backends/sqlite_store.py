"""Out-of-core fact storage on SQLite — the ``sqlite`` backend.

Each (predicate, arity) pair becomes one relation table ``f<id>`` with
columns ``c0..c{n-1}`` (a catalogue table maps predicate names — which
may contain characters like the ``@`` in supplementary-magic predicates
— to table ids). Constant values are stored JSON-encoded, which keeps
``1`` and ``"1"`` distinct and makes rows order-comparable for the
UNIQUE constraint that gives the store its set semantics.

The interesting part is how the :class:`StoreBackend` access paths map
onto the database:

* :meth:`SqliteFactStore.match` compiles a pattern's bound positions
  (and repeated-variable equalities) into a ``WHERE`` clause, so the
  database's own planner picks the access path;
* :meth:`SqliteFactStore.bucket` — the batch join kernel's composite
  group probe — lazily creates a *real* composite DB index the first
  time a (predicate, positions) pair is probed, mirroring the dict
  backend's lazily-built group hash indexes one-for-one
  (:attr:`group_builds` counts first-time builds with the same
  semantics the conformance suite pins: repeat probes and incremental
  maintenance never rebuild);
* :meth:`SqliteFactStore.estimate` answers the join planner with an
  indexed ``COUNT`` upper bound.

With ``path=None`` the database lives in memory (still useful: shared
nothing with the Python heap, and the conformance surface is
identical); with a path it lives on disk in WAL mode, so EDBs and
canonical models larger than RAM are a config knob away. A single
re-entrant lock serialises access — the NDJSON server's handler
threads funnel through one store — and every read materialises its
result before the lock is released, so no cursor escapes.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.logic.formulas import Atom
from repro.logic.terms import Constant, Variable
from repro.obs.metrics import default_registry

from .base import StoreBackend

#: Process-wide twin of the per-store ``group_builds`` counter.
_GROUP_BUILDS = default_registry().counter("store.group_builds")

_SCALARS = (str, int, float, bool, type(None))


def _encode(constant: Constant) -> str:
    value = constant.value
    if not isinstance(value, _SCALARS):
        raise ValueError(
            f"sqlite backend stores JSON scalar constants only, "
            f"not {type(value).__name__}: {value!r}"
        )
    return json.dumps(value, separators=(",", ":"))


def _decode(text: str) -> Constant:
    return Constant(json.loads(text))


class SqliteFactStore(StoreBackend):
    """A mutable, indexed set of ground atoms in an SQLite database."""

    name = "sqlite"

    def __init__(self, facts: Iterable[Atom] = (), *, path: Optional[str] = None):
        self._path = path
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            path if path is not None else ":memory:",
            check_same_thread=False,
            isolation_level=None,  # autocommit; the store is its own unit
        )
        if path is not None:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS rels ("
            " id INTEGER PRIMARY KEY,"
            " pred TEXT NOT NULL,"
            " arity INTEGER NOT NULL,"
            " UNIQUE(pred, arity))"
        )
        # Python-side catalogue caches: (pred, arity) -> table id / row
        # count, so the hot paths never query sqlite_master.
        self._rels: Dict[Tuple[str, int], int] = {}
        self._counts: Dict[Tuple[str, int], int] = {}
        # Composite probes seen per predicate (the group-index hook).
        self._probed: Dict[str, Set[Tuple[int, ...]]] = {}
        self.group_builds = 0
        self._load_catalogue()
        for fact in facts:
            self.add(fact)

    def _load_catalogue(self) -> None:
        """Rehydrate the in-process catalogue from an existing file."""
        for rid, pred, arity in self._conn.execute(
            "SELECT id, pred, arity FROM rels"
        ).fetchall():
            key = (pred, int(arity))
            self._rels[key] = int(rid)
            (count,) = self._conn.execute(
                f"SELECT COUNT(*) FROM f{int(rid)}"
            ).fetchone()
            self._counts[key] = int(count)

    # -- relation tables ----------------------------------------------------------

    def _rel_id(self, pred: str, arity: int) -> Optional[int]:
        return self._rels.get((pred, arity))

    def _ensure_rel(self, pred: str, arity: int) -> int:
        key = (pred, arity)
        rid = self._rels.get(key)
        if rid is not None:
            return rid
        self._conn.execute(
            "INSERT OR IGNORE INTO rels(pred, arity) VALUES (?, ?)", key
        )
        (rid,) = self._conn.execute(
            "SELECT id FROM rels WHERE pred=? AND arity=?", key
        ).fetchone()
        if arity:
            columns = ", ".join(f"c{i} TEXT NOT NULL" for i in range(arity))
            unique = ", ".join(f"c{i}" for i in range(arity))
        else:
            # A propositional relation holds at most one (empty) row.
            columns = "present INTEGER NOT NULL"
            unique = "present"
        self._conn.execute(
            f"CREATE TABLE IF NOT EXISTS f{rid} ({columns}, UNIQUE({unique}))"
        )
        self._rels[key] = rid
        self._counts.setdefault(key, 0)
        # Composite probes declared before this arity existed get their
        # DB index now, so later bucket() calls stay index-backed.
        for positions in self._probed.get(pred, ()):
            if positions and positions[-1] < arity:
                self._create_index(rid, positions)
        return rid

    def _create_index(self, rid: int, positions: Tuple[int, ...]) -> None:
        suffix = "_".join(str(p) for p in positions)
        columns = ", ".join(f"c{p}" for p in positions)
        self._conn.execute(
            f"CREATE INDEX IF NOT EXISTS i{rid}_{suffix} ON f{rid} ({columns})"
        )

    def _rels_of(self, pred: str) -> List[Tuple[int, int]]:
        """(arity, table id) pairs of every relation named *pred*."""
        return [
            (arity, rid)
            for (name, arity), rid in self._rels.items()
            if name == pred
        ]

    # -- mutation -----------------------------------------------------------------

    def add(self, fact: Atom) -> bool:
        """Insert *fact*; returns True iff it was not already present."""
        if not fact.is_ground():
            raise ValueError(f"facts must be ground: {fact}")
        arity = len(fact.args)
        row = tuple(_encode(arg) for arg in fact.args) or (1,)
        holes = ", ".join("?" for _ in row)
        with self._lock:
            rid = self._ensure_rel(fact.pred, arity)
            cursor = self._conn.execute(
                f"INSERT OR IGNORE INTO f{rid} VALUES ({holes})", row
            )
            if cursor.rowcount <= 0:
                return False
            self._counts[(fact.pred, arity)] += 1
            return True

    def remove(self, fact: Atom) -> bool:
        """Delete *fact*; returns True iff it was present."""
        arity = len(fact.args)
        with self._lock:
            rid = self._rel_id(fact.pred, arity)
            if rid is None:
                return False
            if arity:
                where = " AND ".join(f"c{i}=?" for i in range(arity))
                row = tuple(_encode(arg) for arg in fact.args)
            else:
                where, row = "present=1", ()
            cursor = self._conn.execute(f"DELETE FROM f{rid} WHERE {where}", row)
            if cursor.rowcount <= 0:
                return False
            self._counts[(fact.pred, arity)] -= 1
            return True

    def clear(self) -> None:
        with self._lock:
            for rid in self._rels.values():
                self._conn.execute(f"DROP TABLE IF EXISTS f{rid}")
            self._conn.execute("DELETE FROM rels")
            self._rels.clear()
            self._counts.clear()
            self._probed.clear()

    # -- queries ------------------------------------------------------------------

    def contains(self, fact: Atom) -> bool:
        arity = len(fact.args)
        with self._lock:
            rid = self._rel_id(fact.pred, arity)
            if rid is None or self._counts[(fact.pred, arity)] == 0:
                return False
            if arity:
                where = " AND ".join(f"c{i}=?" for i in range(arity))
                row = tuple(_encode(arg) for arg in fact.args)
            else:
                where, row = "present=1", ()
            hit = self._conn.execute(
                f"SELECT 1 FROM f{rid} WHERE {where} LIMIT 1", row
            ).fetchone()
            return hit is not None

    __contains__ = contains

    def facts(self, pred: str) -> frozenset:
        """All stored facts of predicate *pred* (frozen snapshot)."""
        with self._lock:
            out: List[Atom] = []
            for arity, rid in self._rels_of(pred):
                out.extend(self._fetch(pred, arity, rid, "", ()))
            return frozenset(out)

    def _fetch(
        self,
        pred: str,
        arity: int,
        rid: int,
        where: str,
        params: Tuple[str, ...],
    ) -> List[Atom]:
        """Materialise matching rows of one relation table as atoms."""
        if self._counts[(pred, arity)] == 0:
            return []
        if not arity:
            row = self._conn.execute(
                f"SELECT 1 FROM f{rid} {where} LIMIT 1", params
            ).fetchone()
            return [Atom(pred, ())] if row is not None else []
        columns = ", ".join(f"c{i}" for i in range(arity))
        rows = self._conn.execute(
            f"SELECT {columns} FROM f{rid} {where}", params
        ).fetchall()
        return [
            Atom(pred, tuple(_decode(cell) for cell in row)) for row in rows
        ]

    def match(self, pattern: Atom) -> Iterator[Atom]:
        """All stored facts matching *pattern*: bound positions and
        repeated-variable equalities compile into the WHERE clause, so
        SQLite's planner picks the access path."""
        arity = len(pattern.args)
        with self._lock:
            rid = self._rel_id(pattern.pred, arity)
            if rid is None:
                return iter(())
            clauses: List[str] = []
            params: List[str] = []
            first_seen: Dict[Variable, int] = {}
            for position, arg in enumerate(pattern.args):
                if isinstance(arg, Variable):
                    earlier = first_seen.setdefault(arg, position)
                    if earlier != position:
                        clauses.append(f"c{position}=c{earlier}")
                else:
                    clauses.append(f"c{position}=?")
                    params.append(_encode(arg))
            where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
            return iter(
                self._fetch(pattern.pred, arity, rid, where, tuple(params))
            )

    def bucket(
        self,
        pred: str,
        positions: Tuple[int, ...],
        key: Tuple[Constant, ...],
    ) -> Iterable[Atom]:
        """All facts of *pred* whose arguments at *positions* equal
        *key* — an equality probe against a composite DB index created
        on the first probe of the (pred, positions) pair (counted in
        :attr:`group_builds`, incremental thereafter: the index is
        maintained by the database itself)."""
        with self._lock:
            rels = self._rels_of(pred)
            if not any(self._counts[(pred, arity)] for arity, _ in rels):
                return []
            if positions:
                probed = self._probed.setdefault(pred, set())
                if positions not in probed:
                    probed.add(positions)
                    self.group_builds += 1
                    _GROUP_BUILDS.inc()

                    for arity, rid in rels:
                        if positions[-1] < arity:
                            self._create_index(rid, positions)
            out: List[Atom] = []
            for arity, rid in rels:
                if positions:
                    if positions[-1] >= arity:
                        continue  # arity mismatch: pattern cannot match
                    where = "WHERE " + " AND ".join(
                        f"c{p}=?" for p in positions
                    )
                    params = tuple(_encode(value) for value in key)
                else:
                    where, params = "", ()
                out.extend(self._fetch(pred, arity, rid, where, params))
            return out

    def estimate(self, pattern: Atom) -> int:
        """Indexed COUNT upper bound on the facts matching *pattern*
        (repeated-variable equalities are ignored — estimates must
        never undershoot)."""
        arity = len(pattern.args)
        with self._lock:
            rid = self._rel_id(pattern.pred, arity)
            if rid is None:
                return 0
            total = self._counts[(pattern.pred, arity)]
            if total == 0:
                return 0
            clauses: List[str] = []
            params: List[str] = []
            for position, arg in enumerate(pattern.args):
                if not isinstance(arg, Variable):
                    clauses.append(f"c{position}=?")
                    params.append(_encode(arg))
            if not clauses:
                return total
            (count,) = self._conn.execute(
                f"SELECT COUNT(*) FROM f{rid} WHERE {' AND '.join(clauses)}",
                tuple(params),
            ).fetchone()
            return int(count)

    # -- inspection ---------------------------------------------------------------

    def predicates(self) -> frozenset:
        with self._lock:
            return frozenset(
                pred for (pred, _), count in self._counts.items() if count
            )

    def count(self, pred: str) -> int:
        with self._lock:
            return sum(
                count
                for (name, _), count in self._counts.items()
                if name == pred
            )

    def __len__(self) -> int:
        with self._lock:
            return sum(self._counts.values())

    def __iter__(self) -> Iterator[Atom]:
        with self._lock:
            out: List[Atom] = []
            for (pred, arity), rid in self._rels.items():
                out.extend(self._fetch(pred, arity, rid, "", ()))
        return iter(out)

    def constants(self) -> Set[Constant]:
        """All constants appearing in stored facts — the active domain."""
        with self._lock:
            out: Set[Constant] = set()
            for (pred, arity), rid in self._rels.items():
                for position in range(arity):
                    rows = self._conn.execute(
                        f"SELECT DISTINCT c{position} FROM f{rid}"
                    ).fetchall()
                    out.update(_decode(cell) for (cell,) in rows)
            return out

    def copy(self) -> "SqliteFactStore":
        """An independent in-memory clone (via SQLite's backup API).

        Note the clone is always in-memory even when this store is
        file-backed: copies are working state (pre-update views, model
        seeds), not durable artifacts."""
        clone = SqliteFactStore()
        with self._lock:
            self._conn.backup(clone._conn)
        clone._rels.clear()
        clone._counts.clear()
        clone._load_catalogue()
        return clone

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown ordering
        try:
            self._conn.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        where = self._path or ":memory:"
        return (
            f"SqliteFactStore({len(self)} facts, "
            f"{len(self.predicates())} predicates, {where})"
        )

"""repro — constraint satisfaction and satisfiability in deductive databases.

A from-scratch reproduction of Bry, Decker & Manthey, *A Uniform
Approach to Constraint Satisfaction and Constraint Satisfiability in
Deductive Databases* (EDBT 1988).

The two front doors:

>>> from repro import DeductiveDatabase, IntegrityChecker
>>> db = DeductiveDatabase.from_source('''
...     leads(ann, sales).
...     member(X, Y) :- leads(X, Y).
...     forall X, Y: member(X, Y) -> employee(X).
... ''')
>>> db.apply_update("employee(ann)")
True
>>> IntegrityChecker(db).check("leads(bob, hr)").ok
False

>>> from repro import check_satisfiability
>>> check_satisfiability("exists X: p(X). forall X: not p(X).").status
'unsatisfiable'

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-claim-by-claim reproduction record.
"""

from repro.datalog.database import Constraint, DeductiveDatabase
from repro.datalog.facts import FactStore
from repro.datalog.incremental import MaintainedModel
from repro.datalog.program import Program, Rule, StratificationError
from repro.integrity.checker import CheckResult, IntegrityChecker, Violation
from repro.integrity.transactions import Transaction
from repro.logic.normalize import NormalizationError, normalize_constraint
from repro.logic.parser import ParseError, parse_formula, parse_program
from repro.logic.safety import SafetyError
from repro.satisfiability.checker import (
    SatisfiabilityChecker,
    SatResult,
    check_satisfiability,
)
from repro.satisfiability.tableaux import TableauxChecker

__version__ = "1.0.0"

__all__ = [
    "CheckResult",
    "Constraint",
    "DeductiveDatabase",
    "FactStore",
    "IntegrityChecker",
    "MaintainedModel",
    "NormalizationError",
    "ParseError",
    "Program",
    "Rule",
    "SafetyError",
    "SatResult",
    "SatisfiabilityChecker",
    "StratificationError",
    "TableauxChecker",
    "Transaction",
    "Violation",
    "check_satisfiability",
    "normalize_constraint",
    "parse_formula",
    "parse_program",
    "__version__",
]

"""repro — constraint satisfaction and satisfiability in deductive databases.

A from-scratch reproduction of Bry, Decker & Manthey, *A Uniform
Approach to Constraint Satisfaction and Constraint Satisfiability in
Deductive Databases* (EDBT 1988).

The front door is :func:`repro.open` — a transactional deductive
database whose commit gate is the paper's integrity check:

>>> import repro
>>> db = repro.open(source='''
...     leads(ann, sales).
...     employee(ann).
...     member(X, Y) :- leads(X, Y).
...     forall X, Y: member(X, Y) -> employee(X).
... ''')
>>> db.submit("not employee(zoe)").status
'committed'
>>> db.submit("leads(bob, hr)").status          # bob is no employee
'rejected'
>>> db.query("forall X: employee(X) -> exists Y: member(X, Y)")
True

Pass a directory for durability (WAL + snapshots), and an
:class:`EngineConfig` to pick evaluation strategy, join plan, storage
backend and result caching in one validated object:

>>> config = repro.EngineConfig(strategy="magic", backend="sqlite",
...                             cache=True)
>>> db = repro.open("/tmp/mydb", config=config)   # doctest: +SKIP

The lower-level classes (:class:`DeductiveDatabase`,
:class:`IntegrityChecker`, :class:`SatisfiabilityChecker`) remain
public for library use:

>>> from repro import check_satisfiability
>>> check_satisfiability("exists X: p(X). forall X: not p(X).").status
'unsatisfiable'

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-claim-by-claim reproduction record.
"""

import os as _os
from typing import Optional as _Optional, Union as _Union

# Initialize the datalog package before repro.config: config's own
# imports (joins, planner) would otherwise re-enter repro.datalog's
# package __init__ mid-flight and hit a partially initialized module.
import repro.datalog  # noqa: F401  isort:skip

from repro.analysis import AnalysisReport, Diagnostic, analyze
from repro.config import EngineConfig, resolve_config
from repro.datalog.database import Constraint, DeductiveDatabase
from repro.datalog.facts import FactStore
from repro.datalog.incremental import MaintainedModel
from repro.datalog.program import Program, Rule, StratificationError
from repro.integrity.checker import CheckResult, IntegrityChecker, Violation
from repro.integrity.transactions import Transaction
from repro.logic.normalize import NormalizationError, normalize_constraint
from repro.logic.parser import ParseError, parse_formula, parse_program
from repro.logic.safety import SafetyError
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.trace import QueryTrace
from repro.satisfiability.checker import (
    SatisfiabilityChecker,
    SatResult,
    check_satisfiability,
)
from repro.satisfiability.tableaux import TableauxChecker
from repro.service.database import ManagedDatabase
from repro.service.transactions import CommitResult, Session
from repro.storage.backends import BACKENDS, StoreBackend, make_store
from repro.storage.result_cache import ResultCache

#: The transactional database handle :func:`open` returns.
Database = ManagedDatabase


def open(
    directory: _Optional[_Union[str, "_os.PathLike"]] = None,
    source: _Optional[str] = None,
    *,
    config: _Optional[EngineConfig] = None,
    **options,
) -> ManagedDatabase:
    """Open (or create) a transactional deductive database.

    With *directory*, the last committed state is recovered from its
    WAL and snapshots (the directory is created and seeded from
    *source* on first open); without one, the database lives in memory
    with identical semantics. *config* is an :class:`EngineConfig`
    bundling every engine knob (strategy, plan, exec mode, storage
    backend, result cache); remaining *options* (``sync``, ``method``,
    ``group_commit``, ``snapshot_interval``, ...) pass through to
    :class:`Database`.
    """
    return ManagedDatabase(directory, source, config=config, **options)


def metrics() -> dict:
    """A snapshot of the process-wide metrics registry: one flat dict
    of ``layer.metric`` names — counters/gauges as numbers, histograms
    as ``{"count", "sum", "buckets", "overflow"}`` dicts. Pair two
    snapshots with :meth:`MetricsRegistry.diff` to meter one workload.
    """
    return default_registry().snapshot()


__version__ = "1.2.0"

__all__ = [
    "AnalysisReport",
    "BACKENDS",
    "CheckResult",
    "CommitResult",
    "Constraint",
    "Database",
    "DeductiveDatabase",
    "Diagnostic",
    "EngineConfig",
    "FactStore",
    "IntegrityChecker",
    "MaintainedModel",
    "ManagedDatabase",
    "MetricsRegistry",
    "NormalizationError",
    "ParseError",
    "Program",
    "QueryTrace",
    "ResultCache",
    "Rule",
    "SafetyError",
    "SatResult",
    "SatisfiabilityChecker",
    "Session",
    "StoreBackend",
    "StratificationError",
    "TableauxChecker",
    "Transaction",
    "Violation",
    "analyze",
    "check_satisfiability",
    "default_registry",
    "make_store",
    "metrics",
    "normalize_constraint",
    "open",
    "parse_formula",
    "parse_program",
    "resolve_config",
    "__version__",
]

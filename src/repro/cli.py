"""Command-line interface: integrity checking and satisfiability from
the shell.

::

    python -m repro check db.dl --update "p(a)" --update "not q(b)"
    python -m repro satcheck schema.dl --budget 8 --no-reuse
    python -m repro query db.dl "forall X: p(X) -> q(X)"
    python -m repro model db.dl

``check`` exits 0 when the update preserves integrity, 1 otherwise;
``satcheck`` exits 0 / 1 / 2 for satisfiable / unsatisfiable / unknown.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.datalog.database import DeductiveDatabase
from repro.datalog.planner import DEFAULT_PLAN, PLANS
from repro.datalog.query import STRATEGIES
from repro.integrity.checker import IntegrityChecker
from repro.logic.parser import parse_formula
from repro.logic.normalize import normalize_constraint
from repro.satisfiability.checker import SatisfiabilityChecker

_METHODS = ("bdm", "full", "nicolas", "interleaved", "lloyd")


def _add_plan_option(command) -> None:
    # choices= makes argparse reject bad values up front with a
    # one-line error listing the accepted ones (exit 2), instead of a
    # traceback from deep inside evaluation.
    command.add_argument(
        "--plan",
        choices=PLANS,
        default=DEFAULT_PLAN,
        help="join order for rule bodies: 'greedy' reorders literals by "
        "estimated selectivity, 'source' keeps rule-source order "
        "(default: %(default)s)",
    )


def _add_strategy_option(command) -> None:
    command.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="lazy",
        help="where intensional facts come from: 'lazy' materializes "
        "per dependency closure, 'topdown' is tabled resolution, "
        "'model' materializes everything, 'magic' evaluates "
        "demand-driven via the magic-sets rewrite "
        "(default: %(default)s)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Integrity maintenance and constraint satisfiability for "
            "deductive databases (Bry, Decker & Manthey, EDBT 1988)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check", help="check whether updates preserve integrity"
    )
    check.add_argument("database", help="path to the database source file")
    check.add_argument(
        "--update",
        "-u",
        action="append",
        required=True,
        dest="updates",
        metavar="LITERAL",
        help="update literal, e.g. 'p(a)' or 'not q(b)'; repeatable "
        "(repeats form one transaction)",
    )
    check.add_argument(
        "--method",
        choices=_METHODS,
        default="bdm",
        help="checking method (default: the paper's two-phase method)",
    )
    check.add_argument(
        "--apply",
        action="store_true",
        help="apply the updates and print the updated database when the "
        "check passes",
    )
    check.add_argument(
        "--stats", action="store_true", help="print cost statistics"
    )
    _add_plan_option(check)
    _add_strategy_option(check)

    satcheck = commands.add_parser(
        "satcheck", help="check finite satisfiability of rules + constraints"
    )
    satcheck.add_argument("database", help="path to the schema source file")
    satcheck.add_argument(
        "--budget",
        type=int,
        default=12,
        help="fresh-constant budget (iteratively deepened; default 12)",
    )
    satcheck.add_argument(
        "--max-levels", type=int, default=200, help="level-saturation cap"
    )
    satcheck.add_argument(
        "--no-reuse",
        action="store_true",
        help="classical tableaux mode: fresh-constant existentials only",
    )
    satcheck.add_argument(
        "--no-deepening",
        action="store_true",
        help="single bounded search at the full budget",
    )
    satcheck.add_argument(
        "--trace", action="store_true", help="print the enforcement trace"
    )

    query = commands.add_parser(
        "query", help="evaluate a closed formula over the database"
    )
    query.add_argument("database", help="path to the database source file")
    query.add_argument("formula", help="closed formula to evaluate")
    _add_plan_option(query)
    _add_strategy_option(query)

    model = commands.add_parser(
        "model", help="print the canonical model (facts + derived)"
    )
    model.add_argument("database", help="path to the database source file")
    _add_plan_option(model)

    return parser


def _load_database(path: str) -> DeductiveDatabase:
    with open(path) as handle:
        return DeductiveDatabase.from_source(handle.read())


def _run_check(args) -> int:
    db = _load_database(args.database)
    checker = IntegrityChecker(db, strategy=args.strategy, plan=args.plan)
    method = getattr(checker, f"check_{args.method}")
    result = method(list(args.updates))
    if result.ok:
        print("OK: all constraints satisfied in the updated database")
    else:
        print(f"VIOLATION: {len(result.violations)} constraint instance(s)")
        for violation in result.violations:
            via = f"  (via {violation.trigger})" if violation.trigger else ""
            print(f"  {violation.constraint_id}: {violation.instance}{via}")
    if args.stats:
        for key, value in sorted(result.stats.items()):
            print(f"  # {key}: {value}")
    if args.apply and result.ok:
        for update in args.updates:
            db.apply_update(update)
        print()
        print(db.to_source(), end="")
    return 0 if result.ok else 1


def _run_satcheck(args) -> int:
    with open(args.database) as handle:
        checker = SatisfiabilityChecker.from_source(
            handle.read(),
            existential_reuse=not args.no_reuse,
            trace=args.trace,
        )
    result = checker.check(
        max_fresh_constants=args.budget,
        max_levels=args.max_levels,
        deepening=not args.no_deepening,
    )
    print(f"status: {result.status}")
    if result.model is not None:
        print(f"finite model ({len(result.model)} facts):")
        for fact in sorted(result.model, key=str):
            print(f"  {fact}")
    if args.trace and result.trace:
        print("trace:")
        for line in result.trace:
            print(f"  {line}")
    return {"satisfiable": 0, "unsatisfiable": 1}.get(result.status, 2)


def _run_query(args) -> int:
    db = _load_database(args.database)
    formula = normalize_constraint(parse_formula(args.formula))
    value = db.engine(args.strategy, plan=args.plan).evaluate(formula)
    print("true" if value else "false")
    return 0 if value else 1


def _run_model(args) -> int:
    db = _load_database(args.database)
    for fact in sorted(db.canonical_model(plan=args.plan), key=str):
        print(fact)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    runners = {
        "check": _run_check,
        "satcheck": _run_satcheck,
        "query": _run_query,
        "model": _run_model,
    }
    try:
        return runners[args.command](args)
    except ValueError as error:
        # User-input errors past argparse — malformed database or
        # formula syntax (ParseError), non-ground update literals,
        # unsafe constraints — fail with one line, not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: integrity checking, satisfiability, schema
evolution and the database service from the shell.

::

    python -m repro check db.dl --update "p(a)" --update "not q(b)"
    python -m repro satcheck schema.dl --budget 8 --no-reuse
    python -m repro query db.dl "forall X: p(X) -> q(X)"
    python -m repro model db.dl
    python -m repro lint db.dl --format json --fail-on error
    python -m repro evolve db.dl --constraint "forall X: p(X) -> q(X)"
    python -m repro serve ./data --port 7407 --metrics-port 9464
    python -m repro shell --port 7407
    python -m repro top 127.0.0.1:9464

``check`` exits 0 when the update preserves integrity, 1 otherwise;
``satcheck`` exits 0 / 1 / 2 for satisfiable / unsatisfiable / unknown;
``evolve`` exits 0 / 1 / 2 / 3 for accepted / incompatible / undecided
/ repairable; ``lint`` exits 0 / 1 / 2 for clean / warnings / errors
(``--fail-on error`` treats warnings as clean). ``check``, ``query`` and ``evolve`` take ``--format
json`` for machine-readable verdicts in exactly the schema the service
protocol speaks (:mod:`repro.serialize`).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from typing import Optional, Sequence

from repro import serialize
from repro.config import DEFAULT_SLOW_QUERY_MS, STRATEGIES, EngineConfig
from repro.datalog.database import DeductiveDatabase
from repro.datalog.joins import (
    DEFAULT_EXEC,
    DEFAULT_JOIN,
    EXEC_MODES,
    JOIN_ALGOS,
)
from repro.datalog.planner import DEFAULT_PLAN, PLANS
from repro.integrity.checker import METHODS, IntegrityChecker
from repro.obs.metrics import default_registry
from repro.obs.trace import (
    SLOW_QUERY_LOGGER,
    maybe_trace,
    render_trace,
    trace_query,
)
from repro.storage.backends import BACKENDS, DEFAULT_BACKEND
from repro.logic.parser import parse_formula
from repro.logic.normalize import normalize_constraint
from repro.satisfiability.checker import SatisfiabilityChecker

_METHODS = METHODS
FORMATS = ("text", "json")


def _add_format_option(command) -> None:
    command.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="output format: human-readable text or one JSON object "
        "(the service protocol's schema; default: %(default)s)",
    )


def _add_plan_option(command) -> None:
    # choices= makes argparse reject bad values up front with a
    # one-line error listing the accepted ones (exit 2), instead of a
    # traceback from deep inside evaluation.
    command.add_argument(
        "--plan",
        choices=PLANS,
        default=DEFAULT_PLAN,
        help="join order for rule bodies: 'greedy' reorders literals by "
        "estimated selectivity, 'source' keeps rule-source order "
        "(default: %(default)s)",
    )


def _add_exec_option(command) -> None:
    command.add_argument(
        "--exec",
        dest="exec_mode",
        choices=EXEC_MODES,
        default=DEFAULT_EXEC,
        help="join execution model: 'batch' solves rule bodies "
        "set-at-a-time with hash joins, 'tuple' one binding at a time "
        "(the oracle; default: %(default)s)",
    )


def _add_join_algo_option(command) -> None:
    command.add_argument(
        "--join-algo",
        dest="join_algo",
        choices=JOIN_ALGOS,
        default=DEFAULT_JOIN,
        help="batch join algorithm: 'auto' runs the worst-case-"
        "optimal leapfrog triejoin on cyclic eligible bodies, 'wcoj' "
        "on every eligible body, 'hash' never "
        "(default: %(default)s)",
    )


def _add_strategy_option(command) -> None:
    command.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="lazy",
        help="where intensional facts come from: 'lazy' materializes "
        "per dependency closure, 'topdown' is tabled resolution, "
        "'model' materializes everything, 'magic' evaluates "
        "demand-driven via the magic-sets rewrite "
        "(default: %(default)s)",
    )
    command.add_argument(
        "--no-supplementary",
        dest="supplementary",
        action="store_false",
        help="disable supplementary-predicate prefix sharing in the "
        "magic rewrite (the classic rewrite, kept as the differential "
        "oracle; only meaningful with --strategy magic)",
    )


def _add_backend_option(command) -> None:
    command.add_argument(
        "--backend",
        choices=BACKENDS,
        default=DEFAULT_BACKEND,
        help="fact-store backend: 'dict' keeps relations in process "
        "memory, 'sqlite' spills them to SQLite with lazily-built "
        "composite indexes (default: %(default)s, from REPRO_BACKEND)",
    )


def _add_cache_option(command, default: bool = False) -> None:
    command.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=default,
        help="cache derived query results, invalidated per predicate "
        "from the maintained model's change sets",
    )


def _add_obs_options(command) -> None:
    command.add_argument(
        "--explain",
        action="store_true",
        help="print the per-query trace (plan, rewrite, rounds, cache, "
        "phase timings) as an EXPLAIN tree after the verdict",
    )
    command.add_argument(
        "--metrics",
        action="store_true",
        help="print the delta of the process metrics registry "
        "accumulated while running this command",
    )
    command.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="log queries slower than MS milliseconds on the "
        f"'{SLOW_QUERY_LOGGER}' logger (to stderr here; default: "
        "REPRO_SLOW_QUERY_MS, unset = off)",
    )


def _config_from_args(args) -> EngineConfig:
    """One EngineConfig from whichever knob options the subcommand
    declared (missing ones fall back to the config defaults)."""
    slow_query_ms = getattr(args, "slow_query_ms", None)
    if slow_query_ms is None:
        slow_query_ms = DEFAULT_SLOW_QUERY_MS
    elif not logging.getLogger(SLOW_QUERY_LOGGER).handlers:
        # A CLI run has nowhere else to put slow-query reports: wire
        # the logger to stderr (libraries embedding repro configure
        # logging themselves; the obs NullHandler keeps them silent).
        logging.getLogger(SLOW_QUERY_LOGGER).addHandler(
            logging.StreamHandler(sys.stderr)
        )
    return EngineConfig(
        strategy=getattr(args, "strategy", "lazy"),
        plan=getattr(args, "plan", DEFAULT_PLAN),
        exec_mode=getattr(args, "exec_mode", DEFAULT_EXEC),
        join_algo=getattr(args, "join_algo", DEFAULT_JOIN),
        supplementary=getattr(args, "supplementary", True),
        backend=getattr(args, "backend", DEFAULT_BACKEND),
        cache=getattr(args, "cache", False),
        slow_query_ms=slow_query_ms,
    )


def _metrics_delta(before: dict) -> dict:
    """Registry movement since *before*, dropping zero counters."""
    delta = default_registry().diff(before)
    return {
        name: value
        for name, value in delta.items()
        if (value.get("count") if isinstance(value, dict) else value)
    }


def _print_metrics(delta: dict) -> None:
    for name in sorted(delta):
        value = delta[name]
        if isinstance(value, dict):
            value = json.dumps(value, sort_keys=True)
        print(f"  # {name}: {value}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Integrity maintenance and constraint satisfiability for "
            "deductive databases (Bry, Decker & Manthey, EDBT 1988)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check", help="check whether updates preserve integrity"
    )
    check.add_argument("database", help="path to the database source file")
    check.add_argument(
        "--update",
        "-u",
        action="append",
        required=True,
        dest="updates",
        metavar="LITERAL",
        help="update literal, e.g. 'p(a)' or 'not q(b)'; repeatable "
        "(repeats form one transaction)",
    )
    check.add_argument(
        "--method",
        choices=_METHODS,
        default="bdm",
        help="checking method (default: the paper's two-phase method)",
    )
    check.add_argument(
        "--apply",
        action="store_true",
        help="apply the updates and print the updated database when the "
        "check passes",
    )
    check.add_argument(
        "--stats", action="store_true", help="print cost statistics"
    )
    _add_plan_option(check)
    _add_strategy_option(check)
    _add_exec_option(check)
    _add_join_algo_option(check)
    _add_backend_option(check)
    _add_cache_option(check)
    _add_format_option(check)
    _add_obs_options(check)

    satcheck = commands.add_parser(
        "satcheck", help="check finite satisfiability of rules + constraints"
    )
    satcheck.add_argument("database", help="path to the schema source file")
    satcheck.add_argument(
        "--budget",
        type=int,
        default=12,
        help="fresh-constant budget (iteratively deepened; default 12)",
    )
    satcheck.add_argument(
        "--max-levels", type=int, default=200, help="level-saturation cap"
    )
    satcheck.add_argument(
        "--no-reuse",
        action="store_true",
        help="classical tableaux mode: fresh-constant existentials only",
    )
    satcheck.add_argument(
        "--no-deepening",
        action="store_true",
        help="single bounded search at the full budget",
    )
    satcheck.add_argument(
        "--trace", action="store_true", help="print the enforcement trace"
    )

    query = commands.add_parser(
        "query", help="evaluate a closed formula over the database"
    )
    query.add_argument("database", help="path to the database source file")
    query.add_argument("formula", help="closed formula to evaluate")
    _add_plan_option(query)
    _add_strategy_option(query)
    _add_exec_option(query)
    _add_join_algo_option(query)
    _add_backend_option(query)
    _add_cache_option(query)
    _add_format_option(query)
    _add_obs_options(query)

    model = commands.add_parser(
        "model", help="print the canonical model (facts + derived)"
    )
    model.add_argument("database", help="path to the database source file")
    _add_plan_option(model)
    _add_exec_option(model)
    _add_join_algo_option(model)
    _add_backend_option(model)
    _add_obs_options(model)

    lint = commands.add_parser(
        "lint",
        help="statically analyze programs: coded diagnostics "
        "(R0xx errors / W0xx warnings / I0xx notes), no evaluation",
    )
    lint.add_argument(
        "databases",
        nargs="+",
        metavar="FILE",
        help="database source file(s) to analyze",
    )
    lint.add_argument(
        "--fail-on",
        dest="fail_on",
        choices=("warning", "error"),
        default="warning",
        help="lowest severity that makes the exit status non-zero "
        "(default: %(default)s — warnings exit 1, errors exit 2)",
    )
    _add_format_option(lint)

    evolve = commands.add_parser(
        "evolve",
        help="triage a candidate constraint: accepted / repairable / "
        "incompatible / undecided (Section 4 workflow)",
    )
    evolve.add_argument("database", help="path to the database source file")
    evolve.add_argument(
        "--constraint",
        "-c",
        required=True,
        help="candidate constraint formula",
    )
    evolve.add_argument(
        "--id", default=None, help="identifier for the candidate constraint"
    )
    evolve.add_argument(
        "--budget",
        type=int,
        default=8,
        help="fresh-constant budget for the compatibility search "
        "(default: %(default)s)",
    )
    evolve.add_argument(
        "--max-levels", type=int, default=120, help="level-saturation cap"
    )
    _add_format_option(evolve)
    _add_obs_options(evolve)

    serve = commands.add_parser(
        "serve",
        help="host named databases over a newline-delimited-JSON socket",
    )
    serve.add_argument(
        "root", help="directory holding one subdirectory per database"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7407)
    serve.add_argument(
        "--no-sync",
        action="store_true",
        help="skip fsync on commit (faster, loses the durability "
        "guarantee across power failure)",
    )
    serve.add_argument(
        "--snapshot-interval",
        type=int,
        default=64,
        help="checkpoint every N commits (0 disables; default: %(default)s)",
    )
    serve.add_argument(
        "--serialize-commits",
        action="store_true",
        help="disable group commit (the E12 baseline)",
    )
    serve.add_argument(
        "--method",
        choices=_METHODS,
        default="bdm",
        help="integrity gate method (default: %(default)s)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve /metrics (Prometheus), /metrics.json, /healthz "
        "and /readyz on this HTTP port (0 picks an ephemeral one; "
        "default: REPRO_METRICS_PORT, unset = off)",
    )
    _add_plan_option(serve)
    _add_strategy_option(serve)
    _add_exec_option(serve)
    _add_join_algo_option(serve)
    _add_backend_option(serve)
    # The server maintains its model through DRed, so precise cache
    # invalidation is available: cache on by default.
    _add_cache_option(serve, default=True)

    top = commands.add_parser(
        "top",
        help="live terminal dashboard over a server's /metrics.json",
    )
    top.add_argument(
        "address",
        help="metrics endpoint as HOST:PORT (the serve --metrics-port "
        "address)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh period (default: %(default)s)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        metavar="N",
        help="stop after N refreshes (0 = run until interrupted)",
    )
    top.add_argument(
        "--no-clear",
        dest="clear",
        action="store_false",
        help="append frames instead of redrawing in place",
    )

    shell = commands.add_parser(
        "shell",
        help="interactive client: commands in, NDJSON responses out",
    )
    shell.add_argument("--host", default="127.0.0.1")
    shell.add_argument("--port", type=int, default=7407)
    shell.add_argument(
        "--db", default=None, help="database to open on connect"
    )

    return parser


def _load_database(
    path: str, config: Optional[EngineConfig] = None
) -> DeductiveDatabase:
    with open(path) as handle:
        return DeductiveDatabase.from_source(handle.read(), config=config)


def _run_check(args) -> int:
    from repro.integrity.transactions import Transaction

    config = _config_from_args(args)
    db = _load_database(args.database, config)
    checker = IntegrityChecker(db, config=config)
    transaction = Transaction.coerce(list(args.updates))
    before = default_registry().snapshot() if args.metrics else None
    trace = None
    label = "check " + ", ".join(transaction.to_strings())
    if args.explain:
        with trace_query(label, config) as trace:
            result = checker.admit(transaction, args.method)
            trace.result = "ok" if result.ok else "violation"
    else:
        with maybe_trace(label, config):
            result = checker.admit(transaction, args.method)
    if args.format == "json":
        payload = serialize.check_result_json(result)
        payload["updates"] = transaction.to_strings()
        if trace is not None:
            payload["explain"] = trace.to_dict()
        if before is not None:
            payload["metrics"] = _metrics_delta(before)
        if args.apply and result.ok:
            for update in transaction:
                db.apply_update(update)
            payload["applied"] = db.to_source()
        print(json.dumps(payload))
        return 0 if result.ok else 1
    elif result.ok:
        print("OK: all constraints satisfied in the updated database")
    else:
        print(f"VIOLATION: {len(result.violations)} constraint instance(s)")
        for violation in result.violations:
            via = f"  (via {violation.trigger})" if violation.trigger else ""
            print(f"  {violation.constraint_id}: {violation.instance}{via}")
    if args.stats:
        for key, value in sorted(result.stats.items()):
            print(f"  # {key}: {value}")
    if trace is not None:
        print(trace.render())
    if before is not None:
        _print_metrics(_metrics_delta(before))
    if args.apply and result.ok:
        for update in transaction:
            db.apply_update(update)
        print()
        print(db.to_source(), end="")
    return 0 if result.ok else 1


def _run_satcheck(args) -> int:
    with open(args.database) as handle:
        checker = SatisfiabilityChecker.from_source(
            handle.read(),
            existential_reuse=not args.no_reuse,
            trace=args.trace,
        )
    result = checker.check(
        max_fresh_constants=args.budget,
        max_levels=args.max_levels,
        deepening=not args.no_deepening,
    )
    print(f"status: {result.status}")
    if result.model is not None:
        print(f"finite model ({len(result.model)} facts):")
        for fact in sorted(result.model, key=str):
            print(f"  {fact}")
    if args.trace and result.trace:
        print("trace:")
        for line in result.trace:
            print(f"  {line}")
    return {"satisfiable": 0, "unsatisfiable": 1}.get(result.status, 2)


def _run_query(args) -> int:
    config = _config_from_args(args)
    db = _load_database(args.database, config)
    formula = normalize_constraint(parse_formula(args.formula))
    before = default_registry().snapshot() if args.metrics else None
    engine = db.engine(config=config)
    trace = None
    if args.explain:
        with trace_query(str(formula), config) as trace:
            value = engine.evaluate(formula)
            trace.result = str(value)
    else:
        # maybe_trace is a no-op without --slow-query-ms; with it, the
        # completed trace reaches the slow-query logger.
        with maybe_trace(str(formula), config):
            value = engine.evaluate(formula)
    if args.format == "json":
        payload = serialize.query_result_json(args.formula, value)
        if trace is not None:
            payload["explain"] = trace.to_dict()
        if before is not None:
            payload["metrics"] = _metrics_delta(before)
        print(json.dumps(payload))
    else:
        print("true" if value else "false")
        if trace is not None:
            print(trace.render())
        if before is not None:
            _print_metrics(_metrics_delta(before))
    return 0 if value else 1


def _run_model(args) -> int:
    config = _config_from_args(args)
    db = _load_database(args.database, config)
    before = default_registry().snapshot() if args.metrics else None
    trace = None
    if args.explain:
        with trace_query(f"model {args.database}", config) as trace:
            model = db.canonical_model(config=config)
            trace.result = f"{len(model)} facts"
    else:
        with maybe_trace(f"model {args.database}", config):
            model = db.canonical_model(config=config)
    for fact in sorted(model, key=str):
        print(fact)
    if trace is not None:
        print(trace.render())
    if before is not None:
        _print_metrics(_metrics_delta(before))
    return 0


def _run_lint(args) -> int:
    from repro.analysis import analyze

    reports = []
    for path in args.databases:
        try:
            with open(path) as handle:
                source = handle.read()
        except OSError as error:
            print(f"error: cannot read {path}: {error}", file=sys.stderr)
            return 2
        reports.append((path, analyze(source)))
    if args.format == "json":
        files = [
            {"path": path, **report.to_dict()} for path, report in reports
        ]
        summary = {
            key: sum(report.summary()[key] for _, report in reports)
            for key in ("errors", "warnings", "info")
        }
        payload = files[0] if len(files) == 1 else {
            "files": files,
            "summary": summary,
        }
        print(json.dumps(payload))
    else:
        for path, report in reports:
            prefix = f"{path}: " if len(reports) > 1 else ""
            for line in report.render().splitlines():
                print(f"{prefix}{line}")
    if any(report.has_errors for _, report in reports):
        return 2
    if args.fail_on == "warning" and any(
        report.has_warnings for _, report in reports
    ):
        return 1
    return 0


#: ``repro evolve`` exit codes, one per triage status.
EVOLVE_EXIT_CODES = {
    "accepted": 0,
    "incompatible": 1,
    "undecided": 2,
    "repairable": 3,
}


def _run_evolve(args) -> int:
    from repro.integrity.evolution import assess_constraint_addition

    config = _config_from_args(args)
    db = _load_database(args.database, config)
    before = default_registry().snapshot() if args.metrics else None
    trace = None
    label = f"evolve {args.constraint}"
    if args.explain:
        with trace_query(label, config) as trace:
            result = assess_constraint_addition(
                db,
                args.constraint,
                id=args.id,
                max_fresh_constants=args.budget,
                max_levels=args.max_levels,
            )
            trace.result = result.status
    else:
        with maybe_trace(label, config):
            result = assess_constraint_addition(
                db,
                args.constraint,
                id=args.id,
                max_fresh_constants=args.budget,
                max_levels=args.max_levels,
            )
    if args.format == "json":
        payload = serialize.evolution_result_json(result)
        if trace is not None:
            payload["explain"] = trace.to_dict()
        if before is not None:
            payload["metrics"] = _metrics_delta(before)
        print(json.dumps(payload))
        return EVOLVE_EXIT_CODES[result.status]
    print(f"status: {result.status}")
    if result.witnesses:
        print("witnesses (violating instances today):")
        for witness in result.witnesses:
            binding = ", ".join(
                f"{var}={val}"
                for var, val in sorted(
                    serialize.substitution_json(witness).items()
                )
            )
            print(f"  {binding}")
    if result.status == "repairable" and result.sample_model is not None:
        print(f"sample consistent database ({len(result.sample_model)} facts):")
        for fact in sorted(result.sample_model, key=str):
            print(f"  {fact}")
    if result.status == "incompatible":
        print(
            "no sequence of fact updates can satisfy the extended "
            "constraint set"
        )
    if trace is not None:
        print(trace.render())
    if before is not None:
        _print_metrics(_metrics_delta(before))
    return EVOLVE_EXIT_CODES[result.status]


def _run_serve(args) -> int:
    from repro.service.server import DatabaseServer

    server = DatabaseServer(
        args.root,
        host=args.host,
        port=args.port,
        sync=not args.no_sync,
        method=args.method,
        config=_config_from_args(args),
        group_commit=not args.serialize_commits,
        snapshot_interval=args.snapshot_interval,
        metrics_port=args.metrics_port,
    )
    host, port = server.address
    print(f"listening on {host}:{port} (root: {args.root})", flush=True)
    if server.metrics_address is not None:
        mhost, mport = server.metrics_address
        print(
            f"metrics on http://{mhost}:{mport}/metrics "
            f"(also /metrics.json /healthz /readyz)",
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


#: The dashboard's throughput rows: label → counter name. Rates come
#: from the server's sliding window at each horizon.
_TOP_RATES = (
    ("requests/s", "service.requests"),
    ("commits/s", "txn.commits"),
    ("conflicts/s", "txn.conflicts"),
    ("rejections/s", "txn.rejected"),
    ("wal bytes/s", "wal.bytes"),
    ("fsyncs/s", "wal.fsyncs"),
)

#: The dashboard's latency rows (windowed quantiles when the last 60s
#: saw observations, cumulative since process start otherwise).
_TOP_LATENCIES = (
    "service.request_seconds",
    "gate.check_seconds",
    "wal.append_seconds",
    "txn.session_seconds",
)


def _render_top(payload: dict) -> str:
    """One dashboard frame from a ``/metrics.json`` document."""
    window = payload.get("window") or {}
    rates = window.get("rates") or {}
    quantiles = window.get("quantiles") or {}
    metrics = payload.get("metrics") or {}
    info = payload.get("info") or {}
    lines = [
        "repro top — uptime {:.0f}s — window {}s, {} samples".format(
            payload.get("uptime_seconds", 0.0),
            window.get("width_seconds", "?"),
            window.get("samples", 0),
        ),
        "",
        f"{'throughput':<16}{'1s':>12}{'10s':>12}{'60s':>12}",
    ]
    for label, name in _TOP_RATES:
        entry = rates.get(name) or {}
        lines.append(
            f"{label:<16}"
            + "".join(
                f"{entry.get(h, 0.0):>12.1f}" for h in ("1s", "10s", "60s")
            )
        )
    hits = (rates.get("cache.hits") or {}).get("60s", 0.0)
    misses = (rates.get("cache.misses") or {}).get("60s", 0.0)
    if hits or misses:
        lines.append(
            f"{'cache hit %':<16}{100.0 * hits / (hits + misses):>36.1f}"
        )
    lines.append("")
    lines.append(
        f"{'latency (ms)':<26}{'p50':>9}{'p95':>9}{'p99':>9}  window"
    )
    for name in _TOP_LATENCIES:
        entry = quantiles.get(name)
        scope = "60s"
        if entry is None:
            # Nothing landed in the window: fall back to the cumulative
            # histogram so an idle server still shows its history.
            series = metrics.get(name)
            if not isinstance(series, dict) or not series.get("count"):
                continue
            entry = series
            scope = "all"
        lines.append(
            f"{name:<26}"
            + "".join(
                f"{entry.get(p, 0.0) * 1000:>9.2f}"
                for p in ("p50", "p95", "p99")
            )
            + f"  {scope}"
        )
    databases = info.get("databases") or {}
    if databases:
        lines.append("")
        lines.append(
            f"{'database':<20}{'lsn':>8}{'facts':>10}{'sessions':>10}"
        )
        for name in sorted(databases):
            entry = databases[name]
            lines.append(
                f"{name:<20}{entry.get('lsn', 0):>8}"
                f"{entry.get('facts', 0):>10}"
                f"{entry.get('open_sessions', 0):>10}"
            )
    return "\n".join(lines)


def _run_top(args) -> int:
    import urllib.error
    import urllib.request

    address = args.address
    if "://" not in address:
        address = f"http://{address}"
    url = address.rstrip("/") + "/metrics.json"
    frames = 0
    try:
        while True:
            try:
                with urllib.request.urlopen(url, timeout=5) as response:
                    payload = json.loads(response.read())
            except (OSError, urllib.error.URLError, ValueError) as error:
                print(
                    f"error: cannot scrape {url} ({error})",
                    file=sys.stderr,
                )
                return 2
            if args.clear and sys.stdout.isatty():
                # ANSI clear + home: redraw the frame in place.
                sys.stdout.write("\x1b[2J\x1b[H")
            print(_render_top(payload), flush=True)
            frames += 1
            if args.iterations and frames >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


_SHELL_USAGE = """\
commands:
  open DB [SOURCE-FILE]   open or create a database
  begin                   start a session on the open database
  stage LITERAL           stage an update, e.g.  stage not p(a)
  check                   dry-run the integrity gate
  commit                  commit the session
  abort                   abort the session
  query FORMULA           evaluate over session (if any) else database
  explain FORMULA         query with the server's EXPLAIN trace
  holds ATOM              ground-atom truth
  constraint FORMULA      propose constraint DDL (triage-gated)
  rule RULE               propose rule DDL (lint- and integrity-gated)
  model | stats | databases | checkpoint | ping
  raw JSON                send a raw protocol request
  help | quit\
"""


def _shell_request(state, line: str):
    """Translate one shell command into a protocol request dict (or a
    ('message', text) directive handled locally)."""
    command, _, rest = line.partition(" ")
    rest = rest.strip()
    command = command.lower()
    if command in ("help", "?"):
        return ("message", _SHELL_USAGE)
    if command in ("quit", "exit"):
        return ("quit", None)
    if command == "raw":
        request = json.loads(rest)
        if not isinstance(request, dict) or "op" not in request:
            raise ValueError(
                "raw request must be a JSON object with an 'op' field"
            )
        return request
    if command == "open":
        name, _, source_path = rest.partition(" ")
        if not name:
            raise ValueError("usage: open DB [SOURCE-FILE]")
        request = {"op": "open", "db": name}
        if source_path.strip():
            with open(source_path.strip()) as handle:
                request["source"] = handle.read()
        # Recorded as current only once the server confirms the open.
        state["_pending_db"] = name
        return request
    if command in ("databases", "ping"):
        return {"op": command}
    if command in ("begin", "model", "stats", "checkpoint"):
        if not state.get("db"):
            raise ValueError("open a database first")
        return {"op": command, "db": state["db"]}
    if command == "stage":
        if not state.get("session"):
            raise ValueError("begin a session first")
        return {"op": "stage", "session": state["session"], "updates": [rest]}
    if command in ("commit", "abort", "check"):
        if not state.get("session"):
            raise ValueError("begin a session first")
        return {"op": command, "session": state["session"]}
    if command in ("query", "holds", "explain"):
        target = (
            {"session": state["session"]}
            if state.get("session")
            else {"db": state.get("db")}
        )
        if not any(target.values()):
            raise ValueError("open a database first")
        if command == "explain":
            return {"op": "query", **target, "formula": rest, "explain": True}
        key = "formula" if command == "query" else "atom"
        return {"op": command, **target, key: rest}
    if command == "constraint":
        if not state.get("db"):
            raise ValueError("open a database first")
        return {"op": "add_constraint", "db": state["db"], "constraint": rest}
    if command == "rule":
        if not state.get("db"):
            raise ValueError("open a database first")
        return {"op": "add_rule", "db": state["db"], "rule": rest}
    raise ValueError(f"unknown command {command!r} (try 'help')")


def _run_shell(args) -> int:
    from repro.service.client import DatabaseClient, ServiceError

    try:
        client = DatabaseClient(args.host, args.port)
    except OSError as error:
        print(
            f"error: cannot connect to {args.host}:{args.port} ({error})",
            file=sys.stderr,
        )
        return 2
    state = {"db": args.db, "session": None}
    if args.db:
        try:
            print(json.dumps(client.call("open", db=args.db)))
        except (ServiceError, OSError) as error:
            print(f"error: open {args.db!r} failed: {error}", file=sys.stderr)
            client.close()
            return 2
    interactive = sys.stdin.isatty()
    if interactive:
        print(_SHELL_USAGE)
    try:
        while True:
            if interactive:
                sys.stdout.write("repro> ")
                sys.stdout.flush()
            line = sys.stdin.readline()
            if not line:
                break
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                request = _shell_request(state, line)
            except (ValueError, OSError) as error:
                print(json.dumps({"ok": False, "error": str(error)}))
                continue
            if isinstance(request, tuple):
                directive, payload = request
                if directive == "quit":
                    break
                print(payload)
                continue
            try:
                response = client.call(request.pop("op"), **request)
                response["ok"] = True
            except ServiceError as error:
                response = {"ok": False, "error": str(error)}
            except (OSError, json.JSONDecodeError) as error:
                # The server went away mid-session: one line, no
                # traceback, and there is nothing left to talk to.
                print(
                    json.dumps(
                        {"ok": False, "error": f"connection lost: {error}"}
                    )
                )
                return 1
            pending = state.pop("_pending_db", None)
            if response["ok"] and pending is not None:
                state["db"] = pending
            if response.get("session"):
                state["session"] = response["session"]
            if line.split(None, 1)[0].lower() in ("commit", "abort"):
                state["session"] = None
            explain_payload = (
                response.pop("explain", None) if response["ok"] else None
            )
            print(json.dumps(response))
            if explain_payload is not None:
                print(render_trace(explain_payload))
    finally:
        client.close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    runners = {
        "check": _run_check,
        "satcheck": _run_satcheck,
        "query": _run_query,
        "model": _run_model,
        "evolve": _run_evolve,
        "serve": _run_serve,
        "shell": _run_shell,
        "top": _run_top,
        "lint": _run_lint,
    }
    try:
        return runners[args.command](args)
    except ValueError as error:
        # User-input errors past argparse — malformed database or
        # formula syntax (ParseError), non-ground update literals,
        # unsafe constraints — fail with one line, carrying the same
        # diagnostic code the analyzer assigns to the defect.
        from repro.analysis.diagnostics import coded_message

        print(f"error: {coded_message(error)}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

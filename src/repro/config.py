"""One frozen configuration object for every engine knob.

Before PR 6 four knobs (``strategy``, ``plan``, ``exec_mode``,
``supplementary``) were threaded positionally through ten classes, and
each seam re-validated them; adding the storage ``backend`` and result
``cache`` knobs would have made it six. :class:`EngineConfig` collapses
them into one immutable dataclass validated in one place
(:meth:`EngineConfig.__post_init__`), hashable so it can key engine
memos and cache entries directly.

Every constructor that used to take the loose kwargs now accepts
``config=EngineConfig(...)`` (or an ``EngineConfig`` in the old
``strategy`` position) and routes the old keywords through
:func:`resolve_config`, the deprecation shim: legacy calls keep
working, but warn once per call site that the keyword spelling is on
its way out.

The knobs:

``strategy``
    How queries are answered: ``lazy`` (per-closure materialization),
    ``topdown`` (tabled), ``model`` (full materialization), ``magic``
    (goal-directed bottom-up).
``plan``
    Join order: ``greedy`` (cardinality-ranked) or ``source`` (textual).
``exec_mode``
    Join execution: ``batch`` (set-at-a-time hash joins) or ``tuple``
    (tuple-at-a-time oracle). Default from ``REPRO_EXEC``.
``join_algo``
    The batch path's join algorithm: ``auto`` (leapfrog triejoin on
    cyclic eligible bodies, hash elsewhere), ``wcoj`` (leapfrog on
    every eligible body, counting fallbacks), ``hash`` (pairwise
    only). Default from ``REPRO_JOIN``; inert under
    ``exec_mode="tuple"``.
``supplementary``
    Whether the magic rewrite shares rule prefixes through
    supplementary predicates.
``backend``
    Fact-store backend: ``dict`` (in-process reference store) or
    ``sqlite`` (out-of-core). Default from ``REPRO_BACKEND``.
``cache`` / ``cache_size``
    The derived-result cache: enabled flag and entry bound. Cached
    entries are invalidated per-predicate-key from DRed's change sets
    (see :mod:`repro.storage.result_cache`).
``slow_query_ms``
    Slow-query log threshold in milliseconds: queries/checks slower
    than this emit their completed :class:`repro.obs.QueryTrace`
    through stdlib logging under ``repro.obs.slowquery``. ``None``
    (the default) disables tracing entirely; ``0`` traces every
    query. Default from ``REPRO_SLOW_QUERY_MS``. Purely
    observational — excluded from :meth:`EngineConfig.key`.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.datalog.joins import (
    DEFAULT_EXEC,
    DEFAULT_JOIN,
    validate_exec,
    validate_join_algo,
)
from repro.datalog.planner import DEFAULT_PLAN, validate_plan
from repro.storage.backends import DEFAULT_BACKEND, validate_backend

STRATEGIES = ("lazy", "topdown", "model", "magic")


def _default_slow_query_ms() -> Optional[float]:
    """``REPRO_SLOW_QUERY_MS`` as a float threshold, empty/unset → off.

    The CI tracing leg sets it to ``0`` so every query in the suite
    runs fully traced."""
    raw = os.environ.get("REPRO_SLOW_QUERY_MS", "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_SLOW_QUERY_MS must be a number (ms): {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(
            f"REPRO_SLOW_QUERY_MS must be >= 0: {raw!r}"
        )
    return value


DEFAULT_SLOW_QUERY_MS = _default_slow_query_ms()


def default_metrics_port() -> Optional[int]:
    """``REPRO_METRICS_PORT`` as a port number, empty/unset → no
    exporter. ``0`` asks for an ephemeral port (the CI service leg uses
    it so every server in the suite runs with scraping enabled). Read
    at call time — the server consults it per construction — so tests
    can flip the environment without re-importing."""
    raw = os.environ.get("REPRO_METRICS_PORT", "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_METRICS_PORT must be an integer port: {raw!r}"
        ) from None
    if not 0 <= value <= 65535:
        raise ValueError(
            f"REPRO_METRICS_PORT must be in [0, 65535]: {raw!r}"
        )
    return value


def validate_strategy(strategy: str) -> str:
    """Fail fast on an unknown strategy name, listing the accepted
    values — mirrors :func:`repro.datalog.planner.validate_plan`."""
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; pick one of {STRATEGIES}"
        )
    return strategy


@dataclass(frozen=True)
class EngineConfig:
    """Immutable bundle of every evaluation/storage knob."""

    strategy: str = "lazy"
    plan: str = DEFAULT_PLAN
    exec_mode: str = DEFAULT_EXEC
    supplementary: bool = True
    backend: str = DEFAULT_BACKEND
    cache: bool = False
    cache_size: int = 256
    slow_query_ms: Optional[float] = DEFAULT_SLOW_QUERY_MS
    # Appended after the original knobs so positional construction
    # stays stable across versions.
    join_algo: str = DEFAULT_JOIN

    def __post_init__(self):
        validate_strategy(self.strategy)
        validate_plan(self.plan)
        validate_exec(self.exec_mode)
        validate_join_algo(self.join_algo)
        validate_backend(self.backend)
        if not isinstance(self.supplementary, bool):
            raise ValueError(
                f"supplementary must be a bool: {self.supplementary!r}"
            )
        if not isinstance(self.cache, bool):
            raise ValueError(f"cache must be a bool: {self.cache!r}")
        if not isinstance(self.cache_size, int) or isinstance(
            self.cache_size, bool
        ) or self.cache_size <= 0:
            raise ValueError(
                f"cache_size must be a positive int: {self.cache_size!r}"
            )
        if self.slow_query_ms is not None and (
            not isinstance(self.slow_query_ms, (int, float))
            or isinstance(self.slow_query_ms, bool)
            or self.slow_query_ms < 0
        ):
            raise ValueError(
                "slow_query_ms must be None or a number >= 0: "
                f"{self.slow_query_ms!r}"
            )

    def replace(self, **changes) -> "EngineConfig":
        """A copy with *changes* applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def key(self) -> Tuple:
        """The evaluation-identity tuple: two configs with equal keys
        answer every query identically (cache entries are tagged with
        it, so answers computed under one config never serve
        another)."""
        return (
            self.strategy,
            self.plan,
            self.exec_mode,
            self.supplementary,
            self.backend,
            # Included deliberately, mirroring exec_mode: the hash and
            # leapfrog paths answer identically (the differential
            # harness pins it), but keeping evaluation identity
            # conservative means a cached answer never hides a
            # divergence bug between the legs.
            self.join_algo,
        )


#: The legacy keyword spellings :func:`resolve_config` accepts.
_KNOBS = tuple(field.name for field in dataclasses.fields(EngineConfig))


def resolve_config(
    value: Union[EngineConfig, str, None] = None,
    *,
    base: Optional[EngineConfig] = None,
    warn: bool = True,
    **legacy,
) -> EngineConfig:
    """Resolve a seam's configuration arguments into one
    :class:`EngineConfig`.

    *value* is whatever arrived in the config (née ``strategy``)
    position: an :class:`EngineConfig`, a legacy strategy string, or
    ``None``. *legacy* holds the seam's old keyword arguments
    (``strategy=​``, ``plan=``, ...), each ``None`` when the caller left
    it alone. Explicit legacy values override *value*/*base*; using
    them emits a :class:`DeprecationWarning` unless *warn* is false
    (internal seams that merely forward defaults pass ``warn=False``).
    """
    unknown = set(legacy) - set(_KNOBS)
    if unknown:
        raise TypeError(f"unknown engine option(s): {sorted(unknown)}")
    overrides = {k: v for k, v in legacy.items() if v is not None}
    positional_strategy = isinstance(value, str)
    if isinstance(value, EngineConfig):
        config = value
    elif value is None:
        config = base if base is not None else EngineConfig()
    elif positional_strategy:
        # Legacy positional strategy string.
        overrides.setdefault("strategy", value)
        config = base if base is not None else EngineConfig()
    else:
        raise TypeError(
            f"expected EngineConfig, strategy string or None, "
            f"got {value!r}"
        )
    if warn and not isinstance(value, EngineConfig) and (
        overrides or positional_strategy
    ):
        warnings.warn(
            "passing loose engine knobs ("
            + ", ".join(sorted(overrides))
            + ") is deprecated; pass config=EngineConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return config

"""Tests for the deletion-heavy orders workload."""

from repro.integrity.checker import IntegrityChecker
from repro.integrity.transactions import Transaction
from repro.workloads.orders import OrdersWorkload, make_orders_database


class TestGeneration:
    def test_generated_database_is_consistent(self):
        db = make_orders_database(6, seed=3)
        assert db.all_constraints_satisfied()

    def test_deterministic(self):
        first = make_orders_database(5, seed=1)
        second = make_orders_database(5, seed=1)
        assert set(first.facts) == set(second.facts)

    def test_derived_status(self):
        db = make_orders_database(4, seed=0)
        model = db.canonical_model()
        open_orders = model.facts("open_order")
        shipped = model.facts("shipped")
        # Every order is either open or shipped, never both.
        assert open_orders
        assert shipped
        assert not {o.args[0] for o in open_orders} & {
            s.args[0] for s in shipped
        }


class TestDeletionChecking:
    def test_stream_mixes_verdicts(self):
        workload = OrdersWorkload(6, seed=2)
        db = workload.build()
        checker = IntegrityChecker(db)
        verdicts = {
            checker.check_bdm(update).ok
            for update in workload.deletion_stream(20, seed=9)
        }
        assert verdicts == {True, False}

    def test_bdm_agrees_with_full_on_deletions(self):
        workload = OrdersWorkload(5, seed=4)
        db = workload.build()
        checker = IntegrityChecker(db)
        for update in workload.deletion_stream(12, seed=5):
            assert (
                checker.check_bdm(update).ok
                is checker.check_full(update).ok
            ), update

    def test_deleting_referenced_customer_violates(self):
        db = make_orders_database(3, seed=0)
        checker = IntegrityChecker(db)
        assert not checker.check_bdm("not customer(cust0)").ok

    def test_cascading_delete_transaction_passes(self):
        # Removing a whole order with all its items and references in
        # one transaction preserves integrity.
        db = make_orders_database(3, seed=0)
        checker = IntegrityChecker(db)
        items = [
            f.args[0].value
            for f in db.facts.facts("item_of")
            if f.args[1].value == "ord0_0"
        ]
        updates = [f"not item_of({i}, ord0_0)" for i in items]
        updates.append("not order_by(ord0_0, cust0)")
        updates.append("not dispatched(ord0_0)")
        result = checker.check_bdm(Transaction(updates))
        assert result.ok

    def test_partial_cascade_fails(self):
        # Dropping the order link but keeping items violates the
        # item_of -> order_by inclusion.
        db = make_orders_database(3, seed=0)
        checker = IntegrityChecker(db)
        result = checker.check_bdm("not order_by(ord0_0, cust0)")
        assert not result.ok

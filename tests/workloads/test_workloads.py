"""Unit tests for the workload generators."""

from repro.integrity.checker import IntegrityChecker
from repro.satisfiability.checker import check_satisfiability
from repro.workloads.deductive import (
    ancestor_database,
    fanout_database,
    rule_chain_database,
    university_database,
    university_transaction,
)
from repro.workloads.relational import RelationalWorkload
from repro.workloads.theorem_proving import (
    cycle_coloring,
    pigeonhole,
    serial_order,
)


class TestRelationalWorkload:
    def test_generated_database_is_satisfied(self):
        db = RelationalWorkload(30, seed=7).build()
        assert db.all_constraints_satisfied()

    def test_deterministic_for_seed(self):
        first = RelationalWorkload(20, seed=3).build()
        second = RelationalWorkload(20, seed=3).build()
        assert set(first.facts) == set(second.facts)

    def test_different_seeds_differ(self):
        first = RelationalWorkload(20, seed=3).build()
        second = RelationalWorkload(20, seed=4).build()
        assert set(first.facts) != set(second.facts)

    def test_sizes_scale(self):
        small = RelationalWorkload(10).build()
        large = RelationalWorkload(100).build()
        assert len(large.facts) > len(small.facts)

    def test_update_stream_mixes_outcomes(self):
        workload = RelationalWorkload(30, seed=7)
        db = workload.build()
        checker = IntegrityChecker(db)
        verdicts = {
            checker.check_bdm(update).ok
            for update in workload.update_stream(20, seed=11)
        }
        assert verdicts == {True, False}

    def test_update_stream_deterministic(self):
        workload = RelationalWorkload(30, seed=7)
        first = workload.update_stream(10, seed=5)
        second = workload.update_stream(10, seed=5)
        assert first == second

    def test_bdm_agrees_with_full_on_stream(self):
        workload = RelationalWorkload(25, seed=1)
        db = workload.build()
        checker = IntegrityChecker(db)
        for update in workload.update_stream(15, seed=2):
            assert (
                checker.check_bdm(update).ok
                is checker.check_full(update).ok
            ), update


class TestDeductiveWorkloads:
    def test_fanout_database_satisfied(self):
        db, update = fanout_database(10)
        assert db.all_constraints_satisfied()
        checker = IntegrityChecker(db)
        assert checker.check_bdm(update).ok

    def test_rule_chain_database(self):
        db, update = rule_chain_database(depth=3, width=5)
        assert db.all_constraints_satisfied()
        checker = IntegrityChecker(db)
        assert checker.check_bdm(update).ok
        assert checker.check_lloyd(update).ok

    def test_rule_chain_violation_detected(self):
        db, _ = rule_chain_database(depth=2, width=3)
        checker = IntegrityChecker(db)
        from repro.integrity.transactions import Transaction

        # rogue reaches the end of the chain but is not ok.
        rogue = Transaction(
            ["c0(rogue)", "link0(rogue, rogue)", "link1(rogue, rogue)"]
        )
        result = checker.check_bdm(rogue)
        assert not result.ok
        assert checker.check_full(rogue).ok is result.ok

    def test_ancestor_database(self):
        db, update = ancestor_database(5)
        assert db.all_constraints_satisfied()
        checker = IntegrityChecker(db)
        # g6 is not a person: the recursive closure must catch it.
        assert not checker.check_bdm(update).ok

    def test_university_transaction(self):
        db = university_database(10)
        checker = IntegrityChecker(db)
        good = university_transaction(3, attend=True)
        bad = university_transaction(3, attend=False)
        assert checker.check_bdm(good).ok
        assert not checker.check_bdm(bad).ok


class TestTheoremProvingWorkloads:
    def test_pigeonhole_unsat(self):
        result = check_satisfiability(pigeonhole(2), max_fresh_constants=0)
        assert result.unsatisfiable

    def test_pigeonhole_equal_counts_sat(self):
        result = check_satisfiability(
            pigeonhole(3, pigeons=3), max_fresh_constants=0
        )
        assert result.satisfiable

    def test_even_cycle_two_colorable(self):
        result = check_satisfiability(
            cycle_coloring(4), max_fresh_constants=0
        )
        assert result.satisfiable

    def test_odd_cycle_not_two_colorable(self):
        result = check_satisfiability(
            cycle_coloring(5), max_fresh_constants=0
        )
        assert result.unsatisfiable

    def test_odd_cycle_three_colorable(self):
        result = check_satisfiability(
            cycle_coloring(5, colors=3), max_fresh_constants=0
        )
        assert result.satisfiable

    def test_serial_order_one_element_model(self):
        result = check_satisfiability(serial_order())
        assert result.satisfiable
        assert len(result.model.facts("p")) == 1

    def test_serial_irreflexive_two_elements(self):
        result = check_satisfiability(serial_order(irreflexive=True))
        assert result.satisfiable
        assert len(result.model.facts("p")) == 2

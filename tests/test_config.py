"""EngineConfig: one frozen object, validated in one place, and the
resolve_config deprecation shim every legacy seam routes through."""

import dataclasses

import pytest

from repro.config import EngineConfig, resolve_config
from repro.datalog.joins import DEFAULT_EXEC
from repro.datalog.planner import DEFAULT_PLAN
from repro.storage.backends import DEFAULT_BACKEND


class TestValidation:
    def test_defaults_are_valid(self):
        config = EngineConfig()
        assert config.strategy == "lazy"
        assert config.plan == DEFAULT_PLAN
        assert config.exec_mode == DEFAULT_EXEC
        assert config.supplementary is True
        assert config.backend == DEFAULT_BACKEND
        assert config.cache is False

    @pytest.mark.parametrize(
        "kwargs, message",
        [
            ({"strategy": "psychic"}, "unknown strategy"),
            ({"plan": "optimal"}, "unknown plan"),
            ({"exec_mode": "vectorized"}, "unknown exec mode"),
            ({"backend": "postgres"}, "unknown backend"),
            ({"supplementary": "yes"}, "supplementary"),
            ({"cache": 1}, "cache"),
            ({"cache_size": 0}, "cache_size"),
            ({"cache_size": True}, "cache_size"),
        ],
    )
    def test_every_knob_validated_in_one_place(self, kwargs, message):
        with pytest.raises(ValueError, match=message):
            EngineConfig(**kwargs)

    def test_frozen_and_hashable(self):
        config = EngineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.strategy = "magic"
        assert hash(config) == hash(EngineConfig())
        assert config == EngineConfig()
        assert config != EngineConfig(strategy="magic")

    def test_replace_revalidates(self):
        config = EngineConfig()
        assert config.replace(strategy="magic").strategy == "magic"
        with pytest.raises(ValueError, match="unknown strategy"):
            config.replace(strategy="psychic")

    def test_key_excludes_cache_knobs(self):
        """Two configs differing only in caching answer queries
        identically — they must share a cache identity."""
        a = EngineConfig(cache=True, cache_size=7)
        b = EngineConfig(cache=False)
        assert a.key() == b.key()
        assert EngineConfig(strategy="magic").key() != a.key()


class TestResolveShim:
    def test_config_passes_through(self):
        config = EngineConfig(strategy="magic")
        assert resolve_config(config) is config

    def test_none_gives_defaults(self):
        assert resolve_config(None) == EngineConfig()

    def test_base_supplies_defaults(self):
        base = EngineConfig(strategy="model")
        assert resolve_config(None, base=base) is base

    def test_positional_strategy_string_warns(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            config = resolve_config("magic")
        assert config.strategy == "magic"

    def test_legacy_keywords_warn_and_override(self):
        with pytest.warns(DeprecationWarning, match="plan"):
            config = resolve_config(None, plan="source", exec_mode="tuple")
        assert config.plan == "source"
        assert config.exec_mode == "tuple"

    def test_internal_seams_can_silence_the_warning(self, recwarn):
        config = resolve_config(None, plan="source", warn=False)
        assert config.plan == "source"
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

    def test_explicit_config_never_warns(self, recwarn):
        resolve_config(EngineConfig(strategy="magic"))
        assert not [
            w for w in recwarn.list if w.category is DeprecationWarning
        ]

    def test_unknown_keyword_is_a_type_error(self):
        with pytest.raises(TypeError, match="unknown engine option"):
            resolve_config(None, turbo=True)

    def test_unresolvable_value_is_a_type_error(self):
        with pytest.raises(TypeError, match="EngineConfig"):
            resolve_config(42)


class TestSeamAcceptance:
    """Every public constructor seam accepts config= (spot checks)."""

    def test_query_engine(self):
        from repro.datalog.facts import FactStore
        from repro.datalog.program import Program
        from repro.datalog.query import QueryEngine

        engine = QueryEngine(
            FactStore(), Program(), config=EngineConfig(strategy="model")
        )
        assert engine.config.strategy == "model"

    def test_database_engine_memoizes_per_config(self):
        from repro.datalog.database import DeductiveDatabase

        db = DeductiveDatabase.from_source("p(a).")
        config = EngineConfig(strategy="magic")
        assert db.engine(config=config) is db.engine(config=config)
        assert db.engine(config=config) is not db.engine(
            config=EngineConfig()
        )

    def test_integrity_checker(self):
        from repro import DeductiveDatabase, IntegrityChecker

        db = DeductiveDatabase.from_source("p(a).")
        checker = IntegrityChecker(db, config=EngineConfig(strategy="magic"))
        assert checker.config.strategy == "magic"

    def test_compute_model(self):
        from repro.datalog.bottomup import compute_model
        from repro.datalog.facts import FactStore
        from repro.datalog.program import Program, Rule
        from repro.logic.parser import parse_atom, parse_rule

        model = compute_model(
            FactStore([parse_atom("p(a)")]),
            Program([Rule.from_parsed(parse_rule("q(X) :- p(X)"))]),
            config=EngineConfig(exec_mode="tuple"),
        )
        assert model.contains(parse_atom("q(a)"))

    def test_managed_database(self):
        import repro

        db = repro.open(source="p(a).", config=EngineConfig(cache=True))
        assert db.config.cache is True
        assert db.manager.result_cache is not None

    def test_legacy_kwargs_still_work_with_warning(self):
        from repro import DeductiveDatabase

        db = DeductiveDatabase.from_source("p(a). q(X) :- p(X).")
        with pytest.warns(DeprecationWarning):
            engine = db.engine("magic", plan="source")
        assert engine.config.strategy == "magic"
        assert engine.config.plan == "source"

"""SlidingWindow rollup correctness under a simulated clock."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.window import HORIZONS, SlidingWindow


class Clock:
    """A settable clock the window treats as time.monotonic."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float = 1.0) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def window(clock):
    return SlidingWindow(width=60, clock=clock)


class TestRates:
    def test_first_snapshot_is_baseline_only(self, window, clock):
        window.ingest({"x": 100})
        clock.tick()
        assert window.rate("x", 1) == 0.0

    def test_counter_delta_lands_in_its_second(self, window, clock):
        window.ingest({"x": 0})
        clock.tick()
        window.ingest({"x": 30})
        clock.tick()
        assert window.rate("x", 1) == 30.0
        assert window.rate("x", 10) == 3.0
        assert window.rate("x", 60) == 0.5

    def test_rates_spread_over_their_horizon(self, window, clock):
        window.ingest({"x": 0})
        for value in (10, 20, 30, 40, 50):
            clock.tick()
            window.ingest({"x": value})
        clock.tick()
        # 50 events over the last 10 (and 60) seconds; the most recent
        # completed second saw 10 of them.
        assert window.rate("x", 1) == 10.0
        assert window.rate("x", 10) == 5.0

    def test_multiple_ingests_within_one_second_accumulate(
        self, window, clock
    ):
        window.ingest({"x": 0})
        clock.tick()
        window.ingest({"x": 5})
        window.ingest({"x": 9})
        clock.tick()
        assert window.rate("x", 1) == 9.0

    def test_old_buckets_age_out_of_the_horizon(self, window, clock):
        window.ingest({"x": 0})
        clock.tick()
        window.ingest({"x": 100})
        clock.tick(11)
        assert window.rate("x", 10) == 0.0
        assert window.rate("x", 60) == pytest.approx(100 / 60)

    def test_ring_wraparound_replaces_stale_slots(self, window, clock):
        window.ingest({"x": 0})
        clock.tick()
        window.ingest({"x": 100})  # lands at second N
        clock.tick(60)  # second N + 60 maps to the same ring slot
        window.ingest({"x": 150})
        clock.tick()
        assert window.rate("x", 1) == 50.0
        assert window.rate("x", 60) == pytest.approx(50 / 60)

    def test_unknown_counter_reads_zero(self, window):
        assert window.rate("never.seen", 10) == 0.0


class TestWindowedQuantiles:
    def test_quantiles_over_recent_histogram_deltas(self, window, clock):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        window.ingest(registry.snapshot())
        clock.tick()
        for _ in range(100):
            histogram.observe(0.004)  # lands in a low bucket
        window.ingest(registry.snapshot())
        clock.tick()
        p50 = window.quantile("lat", 0.5)
        assert 0.0 < p50 <= 0.005

    def test_observations_age_out(self, window, clock):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        window.ingest(registry.snapshot())
        clock.tick()
        histogram.observe(0.5)
        window.ingest(registry.snapshot())
        clock.tick(61)
        assert window.quantile("lat", 0.5, horizon=60) == 0.0

    def test_no_observations_is_zero(self, window):
        assert window.quantile("lat", 0.95) == 0.0


class TestSummary:
    def test_summary_shape(self, window, clock):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        histogram = registry.histogram("h")
        window.ingest(registry.snapshot())
        clock.tick()
        registry.counter("c").inc(4)
        histogram.observe(0.01)
        window.ingest(registry.snapshot())
        clock.tick()
        summary = window.summary()
        assert summary["width_seconds"] == 60
        assert summary["samples"] == 2
        assert summary["rates"]["c"] == {
            f"{h}s": pytest.approx(4 / h) for h in HORIZONS
        }
        quantiles = summary["quantiles"]["h"]
        assert quantiles["observations"] == 1
        assert set(quantiles) == {"observations", "p50", "p95", "p99"}

    def test_width_must_cover_largest_horizon(self):
        with pytest.raises(ValueError):
            SlidingWindow(width=10)

    def test_concurrent_ingest_is_safe(self, window, clock):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        stop = threading.Event()

        def feed():
            while not stop.is_set():
                counter.inc()
                window.ingest(registry.snapshot())

        threads = [threading.Thread(target=feed) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(50):
            clock.tick(0.1)
            window.summary()
        stop.set()
        for thread in threads:
            thread.join()
        # No torn state: the rollup still reads and is non-negative.
        clock.tick(1)
        assert window.rate("c", 60) >= 0.0
        assert window.summary()["samples"] > 0

"""The metrics registry: instruments, snapshots, diffs, thread safety."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter()
        rounds = 5000

        def worker():
            for _ in range(rounds):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4 * rounds


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        histogram.observe(0.005)
        histogram.observe(0.05)
        histogram.observe(5.0)
        data = histogram.to_dict()
        assert data["count"] == 3
        assert data["overflow"] == 1
        assert histogram.mean() == pytest.approx((0.005 + 0.05 + 5.0) / 3)

    def test_empty_mean_is_zero(self):
        assert Histogram().mean() == 0.0


class TestRegistry:
    def test_counter_is_create_or_get(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError):
            registry.gauge("a.b")
        with pytest.raises(ValueError):
            registry.histogram("a.b")

    def test_snapshot_is_flat_and_detached(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c"] == 2
        assert snapshot["g"] == 7
        assert snapshot["h"]["count"] == 1
        registry.counter("c").inc()
        assert snapshot["c"] == 2  # a snapshot does not track the live value

    def test_diff_subtracts_and_tolerates_new_names(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        before = registry.snapshot()
        registry.counter("c").inc(3)
        registry.counter("fresh").inc(1)
        registry.histogram("h").observe(0.25)
        delta = registry.diff(before)
        assert delta["c"] == 3
        assert delta["fresh"] == 1
        assert delta["h"] == {"count": 1, "sum": 0.25}

    def test_reset_zeroes_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        registry.histogram("h").observe(1.0)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["c"] == 0
        assert snapshot["h"]["count"] == 0


class TestDefaultRegistry:
    def test_engine_counters_are_registered(self):
        names = set(default_registry().snapshot())
        expected = {
            "join.tuple_fallbacks",
            "join.wcoj_joins",
            "join.wcoj_fallbacks",
            "store.group_builds",
            "cache.hits",
            "cache.misses",
            "magic.rewrites",
            "magic.derivations",
            "wal.appends",
            "wal.fsyncs",
            "txn.session_seconds",
            "gate.check_seconds",
            "wal.append_seconds",
            "txn.linger_seconds",
            "analysis.runs",
            "analysis.errors",
            "analysis.warnings",
        }
        assert expected <= names

    def test_join_counters_alias_tracks_registry(self):
        from repro.datalog.joins import JOIN_COUNTERS

        counter = default_registry().counter("join.tuple_fallbacks")
        start = counter.value
        assert JOIN_COUNTERS.tuple_fallbacks == start
        counter.inc()
        assert JOIN_COUNTERS.tuple_fallbacks == start + 1
        JOIN_COUNTERS.tuple_fallbacks = start
        assert counter.value == start

"""EXPLAIN as a differential oracle: the trace's logical shape must be
identical across execution legs, and stable under repeated runs for
every (strategy, plan, supplementary) combination."""

import itertools

import pytest

import repro
from repro.config import EngineConfig

SOURCE = """
edge(a, b).
edge(b, c).
edge(c, d).
edge(d, e).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
"""

QUERY = "path(a, e)"


def explain(config):
    db = repro.DeductiveDatabase.from_source(SOURCE, config=config)
    return db.explain(QUERY, config=config)


class TestDifferentialShape:
    @pytest.mark.parametrize("strategy", ["lazy", "magic", "model"])
    def test_batch_and_tuple_legs_share_one_logical_shape(self, strategy):
        shapes = {}
        for exec_mode in ("batch", "tuple"):
            config = EngineConfig(
                strategy=strategy, exec_mode=exec_mode, slow_query_ms=None
            )
            trace = explain(config)
            assert trace.result == "True"
            shapes[exec_mode] = trace.shape()
        assert shapes["batch"] == shapes["tuple"]

    def test_magic_supplementary_trace_names_sup_predicates(self):
        config = EngineConfig(
            strategy="magic", supplementary=True, slow_query_ms=None
        )
        trace = explain(config)
        assert trace.rewrites, "magic evaluation should record its rewrite"
        assert any(
            sup.startswith("sup@")
            for rewrite in trace.rewrites
            for sup in rewrite["sup_predicates"]
        )
        assert trace.rounds and trace.rounds[-1] == 0
        assert trace.total_derived > 0
        rendered = trace.render()
        assert "rewrite" in rendered and "rounds" in rendered

    def test_shape_is_stable_across_knob_sweep_reruns(self):
        for strategy, plan, supplementary in itertools.product(
            ("lazy", "magic"), ("greedy", "source"), (True, False)
        ):
            config = EngineConfig(
                strategy=strategy,
                plan=plan,
                supplementary=supplementary,
                slow_query_ms=None,
            )
            first = explain(config).shape()
            second = explain(config).shape()
            assert first == second, (strategy, plan, supplementary)
            assert first["result"] == "True"


class TestManagedExplain:
    def test_database_explain_covers_gate_free_query(self):
        db = repro.open(
            source=SOURCE,
            config=EngineConfig(strategy="magic", slow_query_ms=None),
        )
        trace = db.explain(QUERY)
        assert trace.result == "True"
        assert trace.elapsed is not None
        assert "QUERY" in trace.render()

    def test_explain_negative_answer(self):
        db = repro.open(source=SOURCE)
        trace = db.explain("path(e, a)")
        assert trace.result == "False"

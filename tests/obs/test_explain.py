"""EXPLAIN as a differential oracle: the trace's logical shape must be
identical across execution legs — batch vs tuple, and hash vs wcoj —
and stable under repeated runs for every (strategy, plan,
supplementary) combination. The physical wcoj decision records are
the one deliberate exception: they appear only under the leg that ran
(or explicitly asked for) the leapfrog, and :meth:`QueryTrace.shape`
excludes them."""

import itertools

import pytest

import repro
from repro.config import EngineConfig

SOURCE = """
edge(a, b).
edge(b, c).
edge(c, d).
edge(d, e).
path(X, Y) :- edge(X, Y).
path(X, Y) :- edge(X, Z), path(Z, Y).
"""

QUERY = "path(a, e)"

# A cyclic body the leapfrog actually runs (the chain body above is
# two-literal, hence always hash).
TRIANGLE_SOURCE = """
edge(a, b).
edge(b, c).
edge(a, c).
edge(b, d).
edge(c, d).
edge(b, b).
tri(X, Y, Z) :- edge(X, Y), edge(Y, Z), edge(X, Z).
"""

TRIANGLE_QUERY = "tri(a, b, c)"


def explain(config, source=SOURCE, query=QUERY):
    db = repro.DeductiveDatabase.from_source(source, config=config)
    return db.explain(query, config=config)


class TestDifferentialShape:
    @pytest.mark.parametrize("strategy", ["lazy", "magic", "model"])
    def test_batch_and_tuple_legs_share_one_logical_shape(self, strategy):
        shapes = {}
        for exec_mode in ("batch", "tuple"):
            config = EngineConfig(
                strategy=strategy, exec_mode=exec_mode, slow_query_ms=None
            )
            trace = explain(config)
            assert trace.result == "True"
            shapes[exec_mode] = trace.shape()
        assert shapes["batch"] == shapes["tuple"]

    @pytest.mark.parametrize("strategy", ["lazy", "magic", "model"])
    def test_join_algo_legs_share_one_logical_shape(self, strategy):
        shapes = {}
        traces = {}
        for join_algo in ("hash", "wcoj", "auto"):
            # The leapfrog is a batch-kernel path: pin exec_mode so
            # the physical assertions hold under the tuple CI leg too.
            config = EngineConfig(
                strategy=strategy,
                exec_mode="batch",
                join_algo=join_algo,
                slow_query_ms=None,
            )
            trace = explain(config, TRIANGLE_SOURCE, TRIANGLE_QUERY)
            assert trace.result == "True"
            shapes[join_algo] = trace.shape()
            traces[join_algo] = trace
        assert shapes["hash"] == shapes["wcoj"] == shapes["auto"]
        # The physical leg shows only where the leapfrog was in play:
        # never any decision record under hash.
        assert not traces["hash"].wcoj
        assert traces["hash"].join["wcoj_joins"] == 0
        if strategy == "lazy":
            # The raw triangle body runs the leapfrog under both wcoj
            # and auto (cyclic, three relations, shared variables).
            for leg in ("wcoj", "auto"):
                assert any(d["chose"] for d in traces[leg].wcoj), leg
                assert traces[leg].join["wcoj_joins"] > 0, leg
                assert "leapfrog" in traces[leg].render(), leg
        if strategy == "magic":
            # The adorned body gains a magic literal covering all
            # three variables, which makes the hypergraph alpha-
            # acyclic: wcoj still forces the leapfrog, auto plans
            # hash and records the near-miss.
            assert any(d["chose"] for d in traces["wcoj"].wcoj)
            assert any(
                not d["chose"] and d["reason"] == "acyclic body"
                for d in traces["auto"].wcoj
            )
            assert traces["auto"].join["wcoj_joins"] == 0

    def test_wcoj_fallback_reaches_the_trace(self):
        config = EngineConfig(
            exec_mode="batch", join_algo="wcoj", slow_query_ms=None
        )
        # The chain program's two-literal bodies are ineligible: under
        # an explicit wcoj ask every join is a recorded fallback.
        trace = explain(config)
        assert trace.result == "True"
        assert trace.join["wcoj_joins"] == 0
        assert trace.join["wcoj_fallbacks"] > 0
        assert trace.wcoj and all(not d["chose"] for d in trace.wcoj)
        assert trace.to_dict()["wcoj"] == trace.wcoj
        assert "wcoj" in trace.render()

    def test_magic_supplementary_trace_names_sup_predicates(self):
        config = EngineConfig(
            strategy="magic", supplementary=True, slow_query_ms=None
        )
        trace = explain(config)
        assert trace.rewrites, "magic evaluation should record its rewrite"
        assert any(
            sup.startswith("sup@")
            for rewrite in trace.rewrites
            for sup in rewrite["sup_predicates"]
        )
        assert trace.rounds and trace.rounds[-1] == 0
        assert trace.total_derived > 0
        rendered = trace.render()
        assert "rewrite" in rendered and "rounds" in rendered

    def test_shape_is_stable_across_knob_sweep_reruns(self):
        for strategy, plan, supplementary in itertools.product(
            ("lazy", "magic"), ("greedy", "source"), (True, False)
        ):
            config = EngineConfig(
                strategy=strategy,
                plan=plan,
                supplementary=supplementary,
                slow_query_ms=None,
            )
            first = explain(config).shape()
            second = explain(config).shape()
            assert first == second, (strategy, plan, supplementary)
            assert first["result"] == "True"


class TestManagedExplain:
    def test_database_explain_covers_gate_free_query(self):
        db = repro.open(
            source=SOURCE,
            config=EngineConfig(strategy="magic", slow_query_ms=None),
        )
        trace = db.explain(QUERY)
        assert trace.result == "True"
        assert trace.elapsed is not None
        assert "QUERY" in trace.render()

    def test_explain_negative_answer(self):
        db = repro.open(source=SOURCE)
        trace = db.explain("path(e, a)")
        assert trace.result == "False"

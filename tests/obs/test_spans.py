"""Wire trace context: generation, propagation, and span parenting."""

from repro.obs.spans import Span, TraceContext, new_span_id, new_trace_id
from repro.obs.trace import QueryTrace, trace_query


class TestIds:
    def test_trace_id_is_16_byte_hex(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 32
        int(trace_id, 16)

    def test_span_id_is_8_byte_hex(self):
        span_id = new_span_id()
        assert len(span_id) == 16
        int(span_id, 16)

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64


class TestTraceContext:
    def test_wire_round_trip(self):
        context = TraceContext.generate()
        wire = context.to_wire()
        parsed = TraceContext.from_wire(wire)
        assert parsed is not None
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id

    def test_child_keeps_trace_id_with_fresh_span(self):
        parent = TraceContext.generate()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id

    def test_malformed_wire_payloads_return_none(self):
        # A hostile or buggy client must never crash the server's
        # trace adoption: every malformed shape degrades to None.
        for bad in (
            None,
            "not a dict",
            42,
            [],
            {},
            {"trace_id": "zz", "span_id": "0" * 16},
            {"trace_id": "0" * 32},
            {"trace_id": "0" * 32, "span_id": 7},
            {"trace_id": "0" * 31, "span_id": "0" * 16},
            {"trace_id": None, "span_id": None},
        ):
            assert TraceContext.from_wire(bad) is None, bad


class TestSpanRecording:
    def test_trace_adopts_wire_context(self):
        context = TraceContext.generate()
        trace = QueryTrace("q", context=context)
        assert trace.trace_id == context.trace_id
        assert trace.parent_span_id == context.span_id

    def test_outermost_span_parents_on_wire_span(self):
        context = TraceContext.generate()
        with trace_query("q", context=context) as trace:
            with trace.span("verb"):
                pass
        assert trace.spans[0].parent_id == context.span_id

    def test_nested_spans_parent_on_enclosing_span(self):
        with trace_query("q") as trace:
            with trace.span("outer") as outer:
                with trace.span("inner"):
                    pass
        outer_span, inner_span = trace.spans
        assert outer_span is outer
        assert inner_span.parent_id == outer_span.span_id
        assert outer_span.parent_id is None

    def test_spans_carry_timing_and_attrs(self):
        with trace_query("q") as trace:
            with trace.span("work", rows=3):
                pass
        payload = trace.spans[0].to_dict()
        assert payload["name"] == "work"
        assert payload["elapsed_seconds"] >= 0.0
        assert payload["attrs"] == {"rows": 3}

    def test_span_cap_drops_excess(self):
        from repro.obs.trace import MAX_SPANS

        with trace_query("q") as trace:
            for _ in range(MAX_SPANS + 5):
                with trace.span("s"):
                    pass
        assert len(trace.spans) == MAX_SPANS
        assert trace.spans_dropped == 5
        assert trace.to_dict()["spans_dropped"] == 5

    def test_to_dict_default_omits_attrs(self):
        span = Span("bare")
        assert "attrs" not in span.to_dict()

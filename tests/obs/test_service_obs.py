"""Service-level observability: stats naming, the metrics verb,
latency histograms and structured error logging."""

import logging

import pytest

import repro
from repro.config import EngineConfig
from repro.obs.metrics import default_registry
from repro.service.client import DatabaseClient, ServiceError
from repro.service.server import DatabaseServer

SOURCE = """
employee(ann).
leads(ann, sales).
member(X, Y) :- leads(X, Y).
forall X, Y: member(X, Y) -> employee(X).
"""

#: Metric-shaped stats keys that are per-instance state (cache sizes),
#: reported under the registry naming scheme but not process-global.
PER_INSTANCE = {"cache.entries", "cache.max_entries"}


@pytest.fixture
def server(tmp_path):
    instance = DatabaseServer(tmp_path / "root", port=0, sync=False).start()
    yield instance
    instance.close()


@pytest.fixture
def client(server):
    host, port = server.address
    with DatabaseClient(host, port) as connection:
        connection.open("hr", SOURCE)
        yield connection


class TestStatsNaming:
    def test_served_stats_keys_match_registry_names(self, client):
        session = client.begin("hr")
        session.insert("employee(zoe)")
        session.commit()
        payload = client.stats("hr")
        registered = set(default_registry().snapshot())
        metric_keys = {key for key in payload if "." in key}
        assert metric_keys, "stats should carry layer.metric keys"
        unknown = metric_keys - registered - PER_INSTANCE
        assert not unknown, f"stats keys missing from registry: {unknown}"

    def test_latency_series_appear_after_a_commit(self, client):
        session = client.begin("hr")
        session.insert("employee(maria)")
        session.commit()
        payload = client.stats("hr")
        series = payload["txn.session_seconds"]
        assert series["count"] >= 1
        assert series["mean"] == pytest.approx(
            series["sum"] / series["count"]
        )
        assert payload["gate.check_seconds"]["count"] >= 1


class TestMetricsVerb:
    def test_metrics_verb_serves_the_registry_snapshot(self, client):
        client.query("hr", "exists X: employee(X)")
        metrics = client.metrics()
        registered = set(default_registry().snapshot())
        assert set(metrics) == registered
        assert metrics["txn.commits"] == default_registry().counter(
            "txn.commits"
        ).value

    def test_public_metrics_function_matches(self, client):
        assert set(repro.metrics()) == set(client.metrics())


class TestStructuredErrorLogging:
    def test_failing_verb_logs_and_server_survives(self, client, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs.server"):
            with pytest.raises(ServiceError):
                client.call("query", db="hr", formula="not valid ((")
        records = [
            record
            for record in caplog.records
            if getattr(record, "event", None) == "verb_failed"
        ]
        assert records, "a failed verb should leave a structured record"
        record = records[-1]
        assert record.op == "query"
        assert record.db == "hr"
        # the connection and server are still healthy
        assert client.ping()
        assert client.query("hr", "employee(ann)")

    def test_unknown_op_logs_the_op_name(self, client, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs.server"):
            with pytest.raises(ServiceError):
                client.call("frobnicate")
        assert any(
            getattr(record, "op", None) == "frobnicate"
            for record in caplog.records
        )


class TestSlowQueryConfig:
    def test_engine_config_slow_query_validation(self):
        assert EngineConfig(slow_query_ms=None).slow_query_ms is None
        assert EngineConfig(slow_query_ms=2.5).slow_query_ms == 2.5
        with pytest.raises(ValueError):
            EngineConfig(slow_query_ms=-1)
        with pytest.raises(ValueError):
            EngineConfig(slow_query_ms=True)

    def test_slow_query_excluded_from_evaluation_identity(self):
        on = EngineConfig(slow_query_ms=0.0)
        off = EngineConfig(slow_query_ms=None)
        assert on.key() == off.key()

    def test_evaluate_logs_slow_queries_through_the_service(self, caplog):
        db = repro.open(
            source=SOURCE, config=EngineConfig(slow_query_ms=0.0)
        )
        with caplog.at_level(
            logging.WARNING, logger="repro.obs.slowquery"
        ):
            assert db.query("exists X: employee(X)")
        assert any(
            "slow query" in record.getMessage()
            for record in caplog.records
        )

"""The exporter: Prometheus rendering, quantiles, health endpoints."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.export import MetricsExporter, ReadinessProbe
from repro.obs.metrics import (
    QUANTILES,
    MetricsRegistry,
    quantile_from_buckets,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


def _get(url: str):
    """(status, body bytes) — treating HTTP errors as responses."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestQuantileEstimator:
    def test_empty_histogram_is_zero(self):
        assert quantile_from_buckets([0.001, 0.01], [0, 0], 0.5) == 0.0

    def test_single_bucket_interpolates_from_lower_bound(self):
        # 100 observations in (0.001, 0.01]: p50 lands mid-bucket.
        value = quantile_from_buckets([0.001, 0.01], [0, 100], 0.5)
        assert 0.001 < value <= 0.01

    def test_overflow_reports_top_bound(self):
        # counts has one overflow slot past the last bound.
        bounds = [0.001, 0.01]
        assert quantile_from_buckets(bounds, [0, 0, 50], 0.99) == 0.01

    def test_quantiles_are_monotone(self, registry):
        histogram = registry.histogram("h")
        for n in range(1, 200):
            histogram.observe(n / 1000.0)
        values = [histogram.quantile(q) for q in QUANTILES]
        assert values == sorted(values)
        assert histogram.quantile(0.0) <= histogram.quantile(1.0)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            quantile_from_buckets([1.0], [1], 1.5)

    def test_to_dict_carries_quantiles_and_counts(self, registry):
        histogram = registry.histogram("h")
        histogram.observe(0.002)
        payload = histogram.to_dict()
        for key in ("p50", "p95", "p99", "counts", "bounds", "mean"):
            assert key in payload, key
        assert sum(payload["counts"]) == payload["count"] == 1
        assert len(payload["counts"]) == len(payload["bounds"]) + 1


class TestPrometheusRendering:
    def test_counters_and_gauges(self, registry):
        registry.counter("txn.commits").inc(7)
        registry.gauge("txn.queue_depth").set(3)
        text = registry.render_prometheus()
        assert "# TYPE repro_txn_commits_total counter" in text
        assert "repro_txn_commits_total 7" in text
        assert "# TYPE repro_txn_queue_depth gauge" in text
        assert "repro_txn_queue_depth 3" in text

    def test_histogram_buckets_are_cumulative_and_monotone(self, registry):
        histogram = registry.histogram("wal.append_seconds")
        for value in (0.0001, 0.003, 0.02, 5.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        counts = []
        for line in text.splitlines():
            if line.startswith("repro_wal_append_seconds_bucket"):
                counts.append(float(line.rsplit(" ", 1)[1]))
        assert counts, text
        assert counts == sorted(counts), "buckets must be cumulative"
        assert counts[-1] == 4.0, "+Inf bucket must equal the count"
        assert "repro_wal_append_seconds_count 4" in text
        assert "repro_wal_append_seconds_sum" in text

    def test_exposition_parses_line_by_line(self, registry):
        registry.counter("a.b").inc()
        registry.histogram("c.d").observe(0.1)
        registry.gauge("e-f.g").set(1.5)
        for line in registry.render_prometheus().splitlines():
            assert line, "no blank lines"
            if line.startswith("#"):
                kind, name, *rest = line[2:].split(" ")
                assert kind in ("HELP", "TYPE")
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # every sample value parses
            metric = name_part.split("{", 1)[0]
            assert metric.replace("_", "").isalnum(), line


class TestReadiness:
    def test_all_checks_pass_when_marked_ready(self, registry):
        probe = ReadinessProbe(registry)
        probe.mark_ready()
        ok, checks = probe.ready()
        assert ok, checks
        assert set(checks) == {
            "recovery",
            "wal_writable",
            "commit_queue",
            "fsync_age",
        }

    def test_not_ready_until_marked(self, registry):
        ok, checks = ReadinessProbe(registry).ready()
        assert not ok
        assert checks["recovery"]["ok"] is False

    def test_unhealthy_wal_fails(self, registry):
        probe = ReadinessProbe(registry)
        probe.mark_ready()
        registry.gauge("wal.healthy").set(0)
        ok, checks = probe.ready()
        assert not ok
        assert checks["wal_writable"]["ok"] is False

    def test_deep_commit_queue_fails(self, registry):
        probe = ReadinessProbe(registry, queue_max=4)
        probe.mark_ready()
        registry.gauge("txn.queue_depth").set(5)
        ok, checks = probe.ready()
        assert not ok
        assert checks["commit_queue"]["ok"] is False

    def test_stale_fsync_fails(self, registry):
        probe = ReadinessProbe(registry, fsync_max_age=30.0)
        probe.mark_ready()
        registry.gauge("wal.last_fsync_unix").set(1000.0)
        registry.gauge("wal.last_append_unix").set(1100.0)
        ok, checks = probe.ready()
        assert not ok
        assert checks["fsync_age"]["ok"] is False

    def test_never_fsynced_server_is_ready(self, registry):
        # sync=False servers never fsync: last_fsync stays 0 and the
        # age check must not fire.
        probe = ReadinessProbe(registry)
        probe.mark_ready()
        registry.gauge("wal.last_append_unix").set(5000.0)
        ok, checks = probe.ready()
        assert ok, checks


class TestHttpEndpoints:
    @pytest.fixture
    def exporter(self, registry):
        instance = MetricsExporter(registry).start()
        yield instance
        instance.close()

    def test_metrics_text(self, registry, exporter):
        registry.counter("hits").inc(2)
        status, body = _get(exporter.url("/metrics"))
        assert status == 200
        assert b"repro_hits_total 2" in body

    def test_metrics_json_carries_window_and_info(self, registry):
        exporter = MetricsExporter(
            registry, info=lambda: {"role": "test"}
        ).start()
        try:
            registry.counter("hits").inc()
            exporter.sample_now()
            status, body = _get(exporter.url("/metrics.json"))
            assert status == 200
            payload = json.loads(body)
            assert payload["metrics"]["hits"] == 1
            assert payload["info"] == {"role": "test"}
            assert "rates" in payload["window"]
        finally:
            exporter.close()

    def test_healthz_is_livenesss(self, exporter):
        status, body = _get(exporter.url("/healthz"))
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_readyz_flips_with_probe_state(self, registry, exporter):
        status, body = _get(exporter.url("/readyz"))
        assert status == 503
        assert json.loads(body)["ready"] is False
        exporter.mark_ready()
        status, body = _get(exporter.url("/readyz"))
        assert status == 200
        assert json.loads(body)["ready"] is True
        registry.gauge("wal.healthy").set(0)
        status, body = _get(exporter.url("/readyz"))
        assert status == 503
        checks = json.loads(body)["checks"]
        assert checks["wal_writable"]["ok"] is False

    def test_unknown_route_is_404(self, exporter):
        status, _ = _get(exporter.url("/nope"))
        assert status == 404

    def test_info_failure_never_breaks_the_scrape(self, registry):
        def broken():
            raise RuntimeError("boom")

        exporter = MetricsExporter(registry, info=broken).start()
        try:
            status, body = _get(exporter.url("/metrics.json"))
            assert status == 200
            assert json.loads(body)["info"] == {"error": "boom"}
        finally:
            exporter.close()

"""QueryTrace mechanics: phases, nesting, caps, rendering, slow log."""

import logging

from repro.config import EngineConfig
from repro.obs.trace import (
    MAX_PLANS,
    SLOW_QUERY_LOGGER,
    QueryTrace,
    current_trace,
    maybe_trace,
    trace_query,
)


class TestPhases:
    def test_phase_accumulates_and_nests(self):
        trace = QueryTrace("q")
        with trace.phase("plan"):
            pass
        with trace.phase("plan"):
            with trace.phase("plan"):  # re-entrant: no double count
                pass
        assert set(trace.phases) == {"plan"}
        assert trace.phases["plan"] >= 0.0

    def test_distinct_phases_keep_order(self):
        trace = QueryTrace("q")
        with trace.phase("rewrite"):
            pass
        with trace.phase("saturate"):
            pass
        assert list(trace.phases) == ["rewrite", "saturate"]


class TestRecording:
    def test_plans_dedupe_and_cap(self):
        trace = QueryTrace("q")
        trace.record_plan("g", ("a", "b"), (1, 2))
        trace.record_plan("g", ("a", "b"), (1, 2))  # duplicate
        assert len(trace.plans) == 1
        for index in range(MAX_PLANS + 5):
            trace.record_plan(f"g{index}", ("x",), (0,))
        assert len(trace.plans) == MAX_PLANS
        assert trace.plans_dropped == 6

    def test_rounds_and_totals(self):
        trace = QueryTrace("q")
        for count in (3, 1, 0):
            trace.record_round(count)
        assert trace.rounds == [3, 1, 0]
        assert trace.total_derived == 4

    def test_cache_consults(self):
        trace = QueryTrace("q")
        trace.record_cache(True)
        trace.record_cache(False)
        assert trace.cache == {"hits": 1, "misses": 1}


class TestActivation:
    def test_trace_query_activates_and_finishes(self):
        assert current_trace() is None
        with trace_query("q") as trace:
            assert current_trace() is trace
        assert current_trace() is None
        assert trace.elapsed is not None

    def test_nested_trace_query_reuses_outer(self):
        with trace_query("outer") as outer:
            with trace_query("inner") as inner:
                assert inner is outer
            # the inner exit must not finish the outer trace
            assert outer.elapsed is None

    def test_maybe_trace_is_noop_without_slow_query_config(self):
        config = EngineConfig(slow_query_ms=None)
        with maybe_trace("q", config) as trace:
            assert trace is None

    def test_maybe_trace_joins_active_trace(self):
        config = EngineConfig(slow_query_ms=None)
        with trace_query("outer") as outer:
            with maybe_trace("q", config) as trace:
                assert trace is outer

    def test_maybe_trace_activates_for_slow_query_logging(self):
        config = EngineConfig(slow_query_ms=10_000.0)
        with maybe_trace("q", config) as trace:
            assert trace is not None and current_trace() is trace


class TestRender:
    def test_render_names_every_recorded_section(self):
        trace = QueryTrace("path(a, d)", EngineConfig(strategy="magic"))
        trace.record_rewrite("path", "bf", ("sup@path@bf@1@0",), 5)
        trace.record_plan("body", ("edge(X, Z)", "path(Z, Y)"), (3, 9))
        trace.record_round(4)
        trace.join["joins"] = 2
        trace.record_cache(False)
        with trace.phase("saturate"):
            pass
        trace.finish("True")
        text = trace.render()
        assert "QUERY path(a, d)" in text
        assert "rewrite" in text and "path^bf" in text
        assert "plan" in text and "edge(X, Z) (~3)" in text
        assert "rounds: [4]" in text
        assert "join: 2 joins" in text
        assert "cache: 0 hits / 1 misses" in text
        assert "saturate" in text
        assert "result: True" in text

    def test_to_dict_and_shape_split_logical_from_physical(self):
        trace = QueryTrace("q")
        trace.join["rows_out"] = 7
        trace.finish("True")
        assert "join" in trace.to_dict()
        shape = trace.shape()
        assert "join" not in shape and "phases" not in shape
        assert shape["result"] == "True"


class TestSlowQueryLog:
    def test_threshold_zero_logs_every_query(self, caplog):
        config = EngineConfig(slow_query_ms=0.0)
        with caplog.at_level(logging.WARNING, logger=SLOW_QUERY_LOGGER):
            with trace_query("slow one", config):
                pass
        assert any(
            "slow one" in record.getMessage() for record in caplog.records
        )
        record = caplog.records[-1]
        assert record.query_trace["label"] == "slow one"

    def test_fast_query_stays_silent(self, caplog):
        config = EngineConfig(slow_query_ms=60_000.0)
        with caplog.at_level(logging.WARNING, logger=SLOW_QUERY_LOGGER):
            with trace_query("fast one", config):
                pass
        assert not caplog.records

    def test_no_threshold_no_log(self, caplog):
        with caplog.at_level(logging.WARNING, logger=SLOW_QUERY_LOGGER):
            with trace_query("untracked", EngineConfig(slow_query_ms=None)):
                pass
        assert not caplog.records

"""Tests for DRed incremental maintenance, including the property that
the maintained model always equals a from-scratch recomputation."""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.datalog.bottomup import compute_model
from repro.datalog.facts import FactStore
from repro.datalog.incremental import MaintainedModel
from repro.datalog.program import Program, Rule
from repro.logic.formulas import Atom, Literal
from repro.logic.parser import parse_fact, parse_literal, parse_rule
from repro.logic.terms import Constant


def program(*texts):
    return Program([Rule.from_parsed(parse_rule(t)) for t in texts])


def store(*facts):
    return FactStore(parse_fact(f) for f in facts)


ANCESTOR = program(
    "anc(X, Y) :- par(X, Y)",
    "anc(X, Y) :- par(X, Z), anc(Z, Y)",
)


class TestBasicMaintenance:
    def test_insert_propagates(self):
        maintained = MaintainedModel(store("par(a, b)"), ANCESTOR)
        inserted, deleted = maintained.apply([parse_literal("par(b, c)")])
        assert parse_fact("anc(a, c)") in inserted
        assert maintained.holds(parse_fact("anc(a, c)"))
        assert not deleted

    def test_delete_cascades(self):
        maintained = MaintainedModel(
            store("par(a, b)", "par(b, c)"), ANCESTOR
        )
        inserted, deleted = maintained.apply(
            [parse_literal("not par(b, c)")]
        )
        assert parse_fact("anc(a, c)") in deleted
        assert parse_fact("anc(b, c)") in deleted
        assert not maintained.holds(parse_fact("anc(a, c)"))
        assert maintained.holds(parse_fact("anc(a, b)"))

    def test_rederivation_keeps_supported_facts(self):
        # anc(a, c) has two derivations: via b and via d.
        maintained = MaintainedModel(
            store("par(a, b)", "par(b, c)", "par(a, d)", "par(d, c)"),
            ANCESTOR,
        )
        _, deleted = maintained.apply([parse_literal("not par(b, c)")])
        assert maintained.holds(parse_fact("anc(a, c)"))
        assert parse_fact("anc(a, c)") not in deleted
        assert parse_fact("anc(b, c)") in deleted

    def test_deleted_edb_fact_still_derivable_stays(self):
        prog = program("p(X) :- base(X)")
        maintained = MaintainedModel(store("p(a)", "base(a)"), prog)
        _, deleted = maintained.apply([parse_literal("not p(a)")])
        assert maintained.holds(parse_fact("p(a)"))
        assert parse_fact("p(a)") not in deleted

    def test_negation_stratum_flip(self):
        prog = program(
            "busy(X) :- emp(X), assigned(X)",
            "idle(X) :- emp(X), not busy(X)",
        )
        maintained = MaintainedModel(store("emp(a)"), prog)
        assert maintained.holds(parse_fact("idle(a)"))
        inserted, deleted = maintained.apply([parse_literal("assigned(a)")])
        assert parse_fact("busy(a)") in inserted
        assert parse_fact("idle(a)") in deleted
        assert not maintained.holds(parse_fact("idle(a)"))

    def test_transaction_net_change(self):
        maintained = MaintainedModel(store("par(a, b)"), ANCESTOR)
        inserted, deleted = maintained.apply(
            [parse_literal("par(b, c)"), parse_literal("not par(a, b)")]
        )
        assert maintained.holds(parse_fact("anc(b, c)"))
        assert not maintained.holds(parse_fact("anc(a, b)"))

    def test_nonground_update_rejected(self):
        maintained = MaintainedModel(store(), ANCESTOR)
        from repro.logic.parser import parse_atom
        from repro.logic.formulas import Literal as Lit

        with pytest.raises(ValueError):
            maintained.apply([Lit(parse_atom("par(X, b)"))])


RULE_POOL = [
    "tc(X, Y) :- r(X, Y)",
    "tc(X, Y) :- r(X, Z), tc(Z, Y)",
    "node(X) :- r(X, Y)",
    "node(Y) :- r(X, Y)",
    "busy(X) :- p(X), q(X)",
    "idle(X) :- node(X), not busy(X)",
]

CONSTS = [Constant(c) for c in "abc"]


@st.composite
def maintenance_case(draw):
    texts = draw(
        st.lists(st.sampled_from(RULE_POOL), min_size=1, max_size=5, unique=True)
    )
    prog = program(*texts)
    facts = FactStore()
    for _ in range(draw(st.integers(0, 7))):
        pred = draw(st.sampled_from(["p", "q", "r"]))
        arity = 2 if pred == "r" else 1
        facts.add(
            Atom(pred, tuple(draw(st.sampled_from(CONSTS)) for _ in range(arity)))
        )
    n_updates = draw(st.integers(1, 4))
    updates = []
    for _ in range(n_updates):
        pred = draw(st.sampled_from(["p", "q", "r"]))
        arity = 2 if pred == "r" else 1
        atom = Atom(
            pred, tuple(draw(st.sampled_from(CONSTS)) for _ in range(arity))
        )
        updates.append(Literal(atom, draw(st.booleans())))
    return prog, facts, updates


class TestSimultaneousSupportLoss:
    """Regression: when *every* body fact of a derivation's only
    support is removed in one transaction, the over-deletion join can
    reconstruct the old derivation only if the already-removed facts
    stay visible — the exact dual of the paper-delta gap documented in
    ``delta_eval``'s module docstring."""

    def test_both_body_facts_deleted_at_once(self):
        prog = program("busy(X) :- p(X), q(X)")
        facts = store("p(a)", "q(a)")
        maintained = MaintainedModel(facts, prog)
        assert maintained.holds(parse_fact("busy(a)"))
        inserted, deleted = maintained.apply(
            [parse_literal("not p(a)"), parse_literal("not q(a)")]
        )
        assert not inserted
        assert deleted == {
            parse_fact("p(a)"),
            parse_fact("q(a)"),
            parse_fact("busy(a)"),
        }
        assert not maintained.holds(parse_fact("busy(a)"))

    def test_both_negated_atoms_inserted_at_once(self):
        # The insert-side dual: h(a) is supported by two negative
        # literals whose atoms are both inserted in one transaction.
        # The old derivation is only visible if the join treats the
        # freshly inserted facts as absent (pre-update state).
        prog = program("h(X) :- r(X), not p(X), not q(X)")
        facts = store("r(a)")
        maintained = MaintainedModel(facts, prog)
        assert maintained.holds(parse_fact("h(a)"))
        inserted, deleted = maintained.apply(
            [parse_literal("p(a)"), parse_literal("q(a)")]
        )
        assert parse_fact("h(a)") in deleted
        assert not maintained.holds(parse_fact("h(a)"))
        expected = compute_model(maintained.edb.copy(), prog)
        assert set(maintained.snapshot()) == set(expected)

    def test_cascade_through_negation(self):
        # Deleting busy(a) (via simultaneous support loss) must insert
        # idle(a) in the higher stratum.
        prog = program(
            "node(X) :- r(X, Y)",
            "busy(X) :- p(X), q(X)",
            "idle(X) :- node(X), not busy(X)",
        )
        facts = store("p(a)", "q(a)", "r(a, a)")
        maintained = MaintainedModel(facts, prog)
        assert not maintained.holds(parse_fact("idle(a)"))
        inserted, deleted = maintained.apply(
            [parse_literal("not p(a)"), parse_literal("not q(a)")]
        )
        assert parse_fact("idle(a)") in inserted
        assert parse_fact("busy(a)") in deleted
        expected = compute_model(maintained.edb.copy(), prog)
        assert set(maintained.snapshot()) == set(expected)


class TestDRedEqualsRecomputation:
    @given(maintenance_case())
    @settings(max_examples=80, deadline=None)
    def test_maintained_model_equals_recomputed(self, case):
        prog, facts, updates = case
        maintained = MaintainedModel(facts, prog)
        maintained.apply(updates)
        expected = compute_model(maintained.edb.copy(), prog)
        assert set(maintained.snapshot()) == set(expected)

    @given(maintenance_case())
    @settings(max_examples=40, deadline=None)
    def test_reported_changes_are_the_model_diff(self, case):
        prog, facts, updates = case
        before = compute_model(facts.copy(), prog)
        maintained = MaintainedModel(facts, prog)
        inserted, deleted = maintained.apply(updates)
        after = compute_model(maintained.edb.copy(), prog)
        expected_inserted = {a for a in after if not before.contains(a)}
        expected_deleted = {a for a in before if not after.contains(a)}
        assert inserted == expected_inserted
        assert deleted == expected_deleted


class TestPredicateIndexedSet:
    """The DRed overlays are bucketed by predicate so join probes touch
    only same-predicate facts."""

    def test_add_update_contains_len(self):
        from repro.datalog.incremental import PredicateIndexedSet

        overlay = PredicateIndexedSet([parse_fact("p(a)")])
        overlay.add(parse_fact("q(a, b)"))
        overlay.add(parse_fact("q(a, b)"))  # duplicate is a no-op
        overlay.update([parse_fact("p(b)"), parse_fact("r(c)")])
        assert len(overlay) == 4
        assert parse_fact("q(a, b)") in overlay
        assert parse_fact("q(b, a)") not in overlay
        assert set(overlay) == {
            parse_fact("p(a)"),
            parse_fact("p(b)"),
            parse_fact("q(a, b)"),
            parse_fact("r(c)"),
        }

    def test_matching_returns_only_same_predicate(self):
        from repro.datalog.incremental import PredicateIndexedSet

        overlay = PredicateIndexedSet(
            [parse_fact("p(a)"), parse_fact("p(b)"), parse_fact("q(a, b)")]
        )
        assert overlay.matching("p") == {parse_fact("p(a)"), parse_fact("p(b)")}
        assert overlay.matching("missing") == frozenset()

    def test_rebuild_from_existing_overlay(self):
        from repro.datalog.incremental import PredicateIndexedSet

        base = PredicateIndexedSet([parse_fact("p(a)"), parse_fact("q(a, b)")])
        clone = PredicateIndexedSet(base)
        clone.add(parse_fact("p(z)"))
        assert parse_fact("p(z)") not in base
        assert len(clone) == 3


class _CountingStore(FactStore):
    """A FactStore counting batched (bucket) and scanning (match)
    probes — the instrument for the pre-update-view regression."""

    def __init__(self, facts=()):
        self.bucket_probes = 0
        self.match_calls = 0
        super().__init__(facts)

    def bucket(self, pred, positions, key):
        self.bucket_probes += 1
        return super().bucket(pred, positions, key)

    def match(self, pattern):
        self.match_calls += 1
        return super().match(pattern)


class TestPreUpdateViewBatching:
    """DRed's over-deletion joins must hit the store group indexes
    directly: the pre-update composite view (model ∪ removed −
    inserted) has a real ``bucket()``, so deletion cascades no longer
    batch through the generic ``probe_from_matcher`` adapter."""

    @staticmethod
    def chain_model(n=12):
        prog = program(
            "reach(X, Y) :- edge(X, Y)",
            "reach(X, Y) :- edge(X, Z), reach(Z, Y)",
        )
        edb = FactStore(
            parse_fact(f"edge(n{i}, n{i + 1})") for i in range(n)
        )
        maintained = MaintainedModel(edb, prog, "greedy", "batch")
        counting = _CountingStore(maintained.model)
        maintained.model = counting
        return maintained, counting, prog

    def test_deletion_cascade_probes_group_indexes(self):
        maintained, counting, prog = self.chain_model()
        _, deleted = maintained.apply([parse_literal("not edge(n3, n4)")])
        assert len(deleted) > 10  # a real cascade ran
        # Every over-deletion / re-derivation / insertion join probed
        # the composite hash indexes, never the match() scan path.
        assert counting.bucket_probes > 0
        assert counting.match_calls == 0

    def test_cascade_end_state_matches_recomputation(self):
        maintained, _, prog = self.chain_model()
        maintained.apply(
            [parse_literal("not edge(n3, n4)"), parse_literal("edge(n3, n0)")]
        )
        assert set(maintained.model) == set(
            compute_model(maintained.edb, prog)
        )

    def test_group_builds_counted_once_per_pattern(self):
        """The removed overlay's group index is built once and then
        maintained incrementally while the cascade grows it."""
        from repro.datalog.incremental import PredicateIndexedSet

        overlay = PredicateIndexedSet(
            [parse_fact("p(a, b)"), parse_fact("p(a, c)")]
        )
        first = overlay.bucket("p", (0,), (Constant("a"),))
        assert len(first) == 2
        assert overlay.group_builds == 1
        # Mid-cascade growth must land in the existing index, not force
        # a rebuild (and must be visible to the next probe).
        overlay.add(parse_fact("p(a, d)"))
        again = overlay.bucket("p", (0,), (Constant("a"),))
        assert parse_fact("p(a, d)") in again
        assert overlay.group_builds == 1
        assert overlay.bucket("p", (0,), (Constant("z"),)) == frozenset()
        # Empty positions fall back to the whole predicate bucket.
        assert len(overlay.bucket("p", (), ())) == 3


class TestPreUpdateViewSemantics:
    def test_bucket_matches_match_under_overlays(self):
        from repro.datalog.incremental import (
            PredicateIndexedSet,
            _PreUpdateView,
        )

        model = FactStore(
            parse_fact(f)
            for f in ("p(a, b)", "p(a, c)", "p(d, e)", "q(a)")
        )
        removed = PredicateIndexedSet(
            [parse_fact("p(a, z)"), parse_fact("p(a, b)")]
        )
        inserted = PredicateIndexedSet(
            [parse_fact("p(a, c)"), parse_fact("q(a)")]
        )
        from repro.logic.terms import Variable

        view = _PreUpdateView(model, removed, inserted)
        pattern = Atom("p", (Constant("a"), Variable("Y")))
        via_match = set(view.match(pattern))
        via_bucket = {
            fact
            for fact in view.bucket("p", (0,), (Constant("a"),))
            if len(fact.args) == 2
        }
        # p(a, b): in model and removed -> part of the old state;
        # p(a, c): inserted, not removed -> excluded;
        # p(a, z): removed only -> included.
        assert via_match == via_bucket == {
            parse_fact("p(a, b)"),
            parse_fact("p(a, z)"),
        }
        # removed wins over inserted; inserted facts are not old state.
        assert view.contains(parse_fact("p(a, b)"))
        assert view.contains(parse_fact("p(a, z)"))
        assert not view.contains(parse_fact("p(a, c)"))
        assert not view.contains(parse_fact("q(a)"))
        assert view.contains(parse_fact("p(d, e)"))

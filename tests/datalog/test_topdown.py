"""Unit tests for the tabled top-down evaluator, including agreement
with bottom-up evaluation on shared programs."""

import pytest

from repro.datalog.bottomup import compute_model
from repro.datalog.facts import FactStore
from repro.datalog.program import Program, Rule
from repro.datalog.topdown import TabledEvaluator
from repro.logic.formulas import Atom
from repro.logic.parser import parse_atom, parse_fact, parse_rule
from repro.logic.terms import Constant, Variable

X, Y = Variable("X"), Variable("Y")


def program(*texts):
    return Program([Rule.from_parsed(parse_rule(t)) for t in texts])


def store(*facts):
    return FactStore(parse_fact(f) for f in facts)


def chain_store(n):
    s = FactStore()
    for i in range(n):
        s.add(Atom("par", (Constant(f"c{i}"), Constant(f"c{i+1}"))))
    return s


ANCESTOR = program(
    "anc(X, Y) :- par(X, Y)",
    "anc(X, Y) :- par(X, Z), anc(Z, Y)",
)


class TestBasics:
    def test_edb_query(self):
        ev = TabledEvaluator(store("p(a)", "p(b)"), Program())
        assert set(ev.solve(parse_atom("p(X)"))) == {
            parse_fact("p(a)"),
            parse_fact("p(b)"),
        }

    def test_single_rule(self):
        ev = TabledEvaluator(
            store("leads(ann, sales)"),
            program("member(X, Y) :- leads(X, Y)"),
        )
        assert ev.holds(parse_fact("member(ann, sales)"))
        assert not ev.holds(parse_fact("member(bob, sales)"))

    def test_answers_substitutions(self):
        ev = TabledEvaluator(
            store("leads(ann, sales)", "leads(bob, hr)"),
            program("member(X, Y) :- leads(X, Y)"),
        )
        answers = {
            s.apply_term(X) for s in ev.answers(parse_atom("member(X, hr)"))
        }
        assert answers == {Constant("bob")}

    def test_holds_requires_ground(self):
        ev = TabledEvaluator(store(), Program())
        with pytest.raises(ValueError):
            ev.holds(parse_atom("p(X)"))


class TestRecursion:
    def test_transitive_closure_bound_query(self):
        ev = TabledEvaluator(chain_store(6), ANCESTOR)
        assert ev.holds(parse_fact("anc(c0, c6)"))
        assert not ev.holds(parse_fact("anc(c6, c0)"))

    def test_transitive_closure_open_query(self):
        ev = TabledEvaluator(chain_store(4), ANCESTOR)
        answers = set(ev.solve(parse_atom("anc(c1, X)")))
        assert answers == {
            parse_fact("anc(c1, c2)"),
            parse_fact("anc(c1, c3)"),
            parse_fact("anc(c1, c4)"),
        }

    def test_cyclic_data_terminates(self):
        ev = TabledEvaluator(store("par(a, b)", "par(b, a)"), ANCESTOR)
        assert ev.holds(parse_fact("anc(a, a)"))

    def test_left_recursion_terminates(self):
        left = program(
            "path(X, Y) :- path(X, Z), edge(Z, Y)",
            "path(X, Y) :- edge(X, Y)",
        )
        ev = TabledEvaluator(store("edge(a, b)", "edge(b, c)"), left)
        assert ev.holds(parse_fact("path(a, c)"))

    def test_tables_are_reused(self):
        ev = TabledEvaluator(chain_store(8), ANCESTOR)
        ev.holds(parse_fact("anc(c0, c8)"))
        tables_after_first = len(ev._tables)
        ev.holds(parse_fact("anc(c0, c8)"))
        assert len(ev._tables) == tables_after_first


class TestNegation:
    def test_stratified_negation(self):
        prog = program(
            "attends(X, ddb) :- student(X), keen(X)",
            "missing(X) :- student(X), not attends(X, ddb)",
        )
        ev = TabledEvaluator(
            store("student(jack)", "student(jill)", "keen(jill)"), prog
        )
        assert ev.holds(parse_fact("missing(jack)"))
        assert not ev.holds(parse_fact("missing(jill)"))

    def test_negation_of_recursive_predicate(self):
        prog = program(
            "anc(X, Y) :- par(X, Y)",
            "anc(X, Y) :- par(X, Z), anc(Z, Y)",
            "stranger(X, Y) :- person(X), person(Y), not anc(X, Y)",
        )
        ev = TabledEvaluator(
            store("par(a, b)", "person(a)", "person(b)"), prog
        )
        assert not ev.holds(parse_fact("stranger(a, b)"))
        assert ev.holds(parse_fact("stranger(b, a)"))


class TestAgreementWithBottomUp:
    @pytest.mark.parametrize(
        "facts, rules, queries",
        [
            (
                ("par(a, b)", "par(b, c)", "par(c, d)"),
                (
                    "anc(X, Y) :- par(X, Y)",
                    "anc(X, Y) :- par(X, Z), anc(Z, Y)",
                ),
                ("anc(X, Y)", "anc(a, X)", "anc(X, d)"),
            ),
            (
                ("up(a, b)", "up(c, d)", "flat(b, d)", "down(d, e)", "down(b, f)"),
                (
                    "sg(X, Y) :- flat(X, Y)",
                    "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y)",
                ),
                ("sg(X, Y)", "sg(a, X)"),
            ),
            (
                ("zero(0)", "succ(0, 1)", "succ(1, 2)", "succ(2, 3)"),
                (
                    "even(X) :- zero(X)",
                    "even(X) :- succ(Y, X), odd(Y)",
                    "odd(X) :- succ(Y, X), even(Y)",
                ),
                ("even(X)", "odd(X)"),
            ),
        ],
    )
    def test_same_answers(self, facts, rules, queries):
        edb = store(*facts)
        prog = program(*rules)
        model = compute_model(edb, prog)
        ev = TabledEvaluator(edb, prog)
        for query in queries:
            pattern = parse_atom(query)
            expected = set(model.match(pattern))
            assert set(ev.solve(pattern)) == expected


class TestRelationalJoins:
    """Tabled evaluation standardizes the head unifier apart before
    joining, so batch execution never falls back to tuple joins — even
    on recursive rules, whose unifiers bind variables to variables."""

    def drive(self, facts, prog, queries):
        from repro.datalog.joins import JOIN_COUNTERS

        JOIN_COUNTERS.reset()
        ev = TabledEvaluator(facts, prog, exec_mode="batch")
        model = compute_model(facts, prog)
        for query in queries:
            pattern = parse_atom(query)
            assert set(ev.solve(pattern)) == set(model.match(pattern))
        return JOIN_COUNTERS.tuple_fallbacks

    def test_no_fallback_on_transitive_closure(self):
        assert self.drive(
            chain_store(8), ANCESTOR, ["anc(c0, X)", "anc(X, c8)", "anc(X, Y)"]
        ) == 0

    def test_no_fallback_on_left_recursion(self):
        left = program(
            "path(X, Y) :- path(X, Z), edge(Z, Y)",
            "path(X, Y) :- edge(X, Y)",
        )
        assert self.drive(
            store("edge(a, b)", "edge(b, c)", "edge(c, d)"),
            left,
            ["path(a, X)", "path(X, d)"],
        ) == 0

    def test_no_fallback_on_same_generation(self):
        sg = program(
            "sg(X, Y) :- flat(X, Y)",
            "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y)",
        )
        assert self.drive(
            store(
                "up(a, b)", "up(c, d)", "flat(b, d)",
                "down(d, e)", "down(b, f)",
            ),
            sg,
            ["sg(X, Y)", "sg(a, X)"],
        ) == 0

    def test_no_fallback_with_negation(self):
        prog = program(
            "anc(X, Y) :- par(X, Y)",
            "anc(X, Y) :- par(X, Z), anc(Z, Y)",
            "stranger(X, Y) :- person(X), person(Y), not anc(X, Y)",
        )
        assert self.drive(
            store("par(a, b)", "person(a)", "person(b)"),
            prog,
            ["stranger(X, Y)"],
        ) == 0

    def test_counter_does_count_variable_bindings(self):
        """The pin above is only meaningful if the counter fires when a
        binding really does map variables to variables."""
        from repro.datalog.joins import JOIN_COUNTERS, join_body
        from repro.logic.formulas import Literal
        from repro.logic.substitution import Substitution

        facts = store("p(a)", "p(b)")
        JOIN_COUNTERS.reset()
        answers = list(
            join_body(
                [Literal(parse_atom("p(X)"))],
                Substitution({Variable("H"): Variable("X")}),
                lambda index, pattern: facts.match_substitutions(pattern),
                facts.contains,
                exec_mode="batch",
            )
        )
        assert len(answers) == 2
        assert JOIN_COUNTERS.tuple_fallbacks == 1

"""Unit tests for rules, programs and stratification."""

import pytest

from repro.datalog.program import Program, Rule, StratificationError
from repro.logic.parser import parse_rule
from repro.logic.safety import SafetyError
from repro.logic.terms import Variable


def rule(text):
    return Rule.from_parsed(parse_rule(text))


class TestRule:
    def test_construction(self):
        r = rule("member(X, Y) :- leads(X, Y)")
        assert r.head.pred == "member"
        assert len(r.body) == 1

    def test_range_restriction_enforced(self):
        with pytest.raises(SafetyError):
            rule("p(X, Y) :- q(X)")

    def test_empty_body_rejected(self):
        from repro.logic.formulas import Atom
        from repro.logic.terms import Constant

        with pytest.raises(ValueError):
            Rule(Atom("p", (Constant("a"),)), ())

    def test_positive_negative_split(self):
        r = rule("p(X) :- q(X, Y), not r(Y), s(Y)")
        assert len(r.positive_body()) == 2
        assert len(r.negative_body()) == 1

    def test_body_without(self):
        r = rule("p(X) :- q(X), r(X)")
        assert len(r.body_without(0)) == 1
        assert r.body_without(0)[0].atom.pred == "r"

    def test_rename_apart(self):
        r = rule("p(X) :- q(X, Y)")
        renamed = r.rename_apart([Variable("X")])
        assert renamed.head.args[0] != Variable("X")
        # The renaming is consistent between head and body.
        assert renamed.head.args[0] == renamed.body[0].atom.args[0]

    def test_str_roundtrip_shape(self):
        r = rule("p(X) :- q(X), not r(X)")
        assert str(r) == "p(X) :- q(X), not r(X)"


class TestStratification:
    def test_nonrecursive_single_stratum(self):
        program = Program([rule("member(X, Y) :- leads(X, Y)")])
        assert program.stratum_of("member") == 0
        assert not program.is_recursive()

    def test_negation_introduces_stratum(self):
        program = Program(
            [
                rule("q(X) :- base(X)"),
                rule("p(X) :- base(X), not q(X)"),
            ]
        )
        assert program.stratum_of("p") == program.stratum_of("q") + 1

    def test_positive_recursion_allowed(self):
        program = Program(
            [
                rule("anc(X, Y) :- par(X, Y)"),
                rule("anc(X, Y) :- par(X, Z), anc(Z, Y)"),
            ]
        )
        assert program.recursive_predicates == {"anc"}

    def test_mutual_recursion_detected(self):
        program = Program(
            [
                rule("even(X) :- zero(X)"),
                rule("even(X) :- succ(Y, X), odd(Y)"),
                rule("odd(X) :- succ(Y, X), even(Y)"),
            ]
        )
        assert {"even", "odd"} <= program.recursive_predicates

    def test_negative_recursion_rejected(self):
        with pytest.raises(StratificationError):
            Program(
                [
                    rule("win(X) :- move(X, Y), not win(Y)"),
                    rule("move(X, Y) :- win(X), edge(X, Y)"),
                ]
            )

    def test_direct_negative_self_loop_rejected(self):
        with pytest.raises(StratificationError):
            Program([rule("p(X) :- q(X), not p(X)")])

    def test_stratified_negation_on_recursion_ok(self):
        program = Program(
            [
                rule("anc(X, Y) :- par(X, Y)"),
                rule("anc(X, Y) :- par(X, Z), anc(Z, Y)"),
                rule("unrelated(X, Y) :- person(X), person(Y), not anc(X, Y)"),
            ]
        )
        assert program.stratum_of("unrelated") > program.stratum_of("anc")


class TestProgramQueries:
    def setup_method(self):
        self.program = Program(
            [
                rule("anc(X, Y) :- par(X, Y)"),
                rule("anc(X, Y) :- par(X, Z), anc(Z, Y)"),
                rule("rich(X) :- owns(X, Y), gold(Y)"),
            ]
        )

    def test_rules_for(self):
        assert len(self.program.rules_for("anc")) == 2
        assert len(self.program.rules_for("missing")) == 0

    def test_idb_predicates(self):
        assert self.program.idb_predicates == {"anc", "rich"}

    def test_is_idb(self):
        assert self.program.is_idb("anc")
        assert not self.program.is_idb("par")

    def test_reachable_from(self):
        assert self.program.reachable_from("anc") == {"anc", "par"}
        assert self.program.reachable_from("rich") == {"rich", "owns", "gold"}
        assert self.program.reachable_from("par") == {"par"}

    def test_extended_restratifies(self):
        bigger = self.program.extended(
            [rule("poor(X) :- person(X), not rich(X)")]
        )
        assert bigger.stratum_of("poor") == bigger.stratum_of("rich") + 1
        # The original program is unchanged.
        assert len(self.program) == 3

    def test_all_predicates(self):
        assert "gold" in self.program.all_predicates()
        assert "anc" in self.program.all_predicates()

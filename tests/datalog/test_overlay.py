"""Unit tests for the overlay fact store (simulated U(D))."""

import pytest

from repro.datalog.facts import FactStore
from repro.datalog.overlay import OverlayFactStore
from repro.logic.parser import parse_atom, parse_fact, parse_literal
from repro.logic.terms import Variable

X = Variable("X")


@pytest.fixture
def base():
    s = FactStore()
    s.add(parse_fact("p(a)"))
    s.add(parse_fact("p(b)"))
    s.add(parse_fact("q(a)"))
    return s


class TestInsertion:
    def test_added_fact_visible(self, base):
        view = OverlayFactStore.from_update(base, parse_literal("p(c)"))
        assert view.contains(parse_fact("p(c)"))
        assert set(view.match(parse_atom("p(X)"))) == {
            parse_fact("p(a)"),
            parse_fact("p(b)"),
            parse_fact("p(c)"),
        }

    def test_base_not_mutated(self, base):
        OverlayFactStore.from_update(base, parse_literal("p(c)"))
        assert not base.contains(parse_fact("p(c)"))

    def test_inserting_existing_fact_is_noop(self, base):
        view = OverlayFactStore.from_update(base, parse_literal("p(a)"))
        assert len(view) == len(base)
        assert list(view.match(parse_atom("p(a)"))) == [parse_fact("p(a)")]


class TestDeletion:
    def test_removed_fact_invisible(self, base):
        view = OverlayFactStore.from_update(base, parse_literal("not p(a)"))
        assert not view.contains(parse_fact("p(a)"))
        assert set(view.match(parse_atom("p(X)"))) == {parse_fact("p(b)")}

    def test_deleting_absent_fact_is_noop(self, base):
        view = OverlayFactStore.from_update(base, parse_literal("not p(z)"))
        assert len(view) == len(base)


class TestTransactions:
    def test_insert_then_delete_cancels(self, base):
        view = OverlayFactStore.from_updates(
            base, [parse_literal("p(c)"), parse_literal("not p(c)")]
        )
        assert not view.contains(parse_fact("p(c)"))

    def test_delete_then_insert_restores(self, base):
        view = OverlayFactStore.from_updates(
            base, [parse_literal("not p(a)"), parse_literal("p(a)")]
        )
        assert view.contains(parse_fact("p(a)"))

    def test_mixed_transaction(self, base):
        view = OverlayFactStore.from_updates(
            base,
            [
                parse_literal("p(c)"),
                parse_literal("not q(a)"),
                parse_literal("r(d)"),
            ],
        )
        assert view.contains(parse_fact("p(c)"))
        assert view.contains(parse_fact("r(d)"))
        assert not view.contains(parse_fact("q(a)"))
        assert view.predicates() == {"p", "q", "r"}


class TestReadInterface:
    def test_len(self, base):
        view = OverlayFactStore(
            base,
            added=[parse_fact("p(c)")],
            removed=[parse_fact("q(a)")],
        )
        assert len(view) == 3

    def test_facts_by_predicate(self, base):
        view = OverlayFactStore(base, added=[parse_fact("p(c)")])
        assert view.facts("p") == {
            parse_fact("p(a)"),
            parse_fact("p(b)"),
            parse_fact("p(c)"),
        }

    def test_iteration_no_duplicates(self, base):
        view = OverlayFactStore(base, added=[parse_fact("p(a)")])
        facts = list(view)
        assert len(facts) == len(set(facts)) == 3

    def test_copy_materializes(self, base):
        view = OverlayFactStore(
            base, added=[parse_fact("r(z)")], removed=[parse_fact("p(a)")]
        )
        solid = view.copy()
        assert solid.contains(parse_fact("r(z)"))
        assert not solid.contains(parse_fact("p(a)"))

    def test_nonground_update_rejected(self, base):
        with pytest.raises(ValueError):
            OverlayFactStore(base, added=[parse_atom("p(X)")])

    def test_constants_include_added(self, base):
        view = OverlayFactStore(base, added=[parse_fact("r(z)")])
        from repro.logic.terms import Constant

        assert Constant("z") in view.constants()

"""Unit tests for the indexed fact store."""

import pytest

from repro.datalog.facts import FactStore
from repro.logic.formulas import Atom
from repro.logic.terms import Constant, Variable

X, Y = Variable("X"), Variable("Y")
a, b, c = Constant("a"), Constant("b"), Constant("c")


def atom(pred, *args):
    return Atom(pred, args)


@pytest.fixture
def store():
    s = FactStore()
    s.add(atom("p", a, b))
    s.add(atom("p", a, c))
    s.add(atom("p", b, c))
    s.add(atom("q", a))
    return s


class TestMutation:
    def test_add_new(self, store):
        assert store.add(atom("q", b))
        assert store.contains(atom("q", b))

    def test_add_duplicate(self, store):
        assert not store.add(atom("q", a))
        assert store.count("q") == 1

    def test_add_nonground_rejected(self):
        with pytest.raises(ValueError):
            FactStore().add(atom("p", X))

    def test_remove_present(self, store):
        assert store.remove(atom("p", a, b))
        assert not store.contains(atom("p", a, b))

    def test_remove_absent(self, store):
        assert not store.remove(atom("p", c, c))

    def test_remove_updates_index(self, store):
        store.remove(atom("p", a, b))
        assert list(store.match(atom("p", a, Y))) == [atom("p", a, c)]

    def test_clear(self, store):
        store.clear()
        assert len(store) == 0
        assert list(store.match(atom("p", X, Y))) == []


class TestMatching:
    def test_match_all_of_predicate(self, store):
        assert set(store.match(atom("p", X, Y))) == {
            atom("p", a, b),
            atom("p", a, c),
            atom("p", b, c),
        }

    def test_match_first_position_bound(self, store):
        assert set(store.match(atom("p", a, Y))) == {
            atom("p", a, b),
            atom("p", a, c),
        }

    def test_match_second_position_bound(self, store):
        assert set(store.match(atom("p", X, c))) == {
            atom("p", a, c),
            atom("p", b, c),
        }

    def test_match_ground(self, store):
        assert list(store.match(atom("p", a, b))) == [atom("p", a, b)]
        assert list(store.match(atom("p", c, a))) == []

    def test_match_repeated_variable(self, store):
        store.add(atom("p", c, c))
        assert set(store.match(atom("p", X, X))) == {atom("p", c, c)}

    def test_match_unknown_predicate(self, store):
        assert list(store.match(atom("r", X))) == []

    def test_match_unknown_constant_short_circuits(self, store):
        assert list(store.match(atom("p", Constant("zz"), Y))) == []

    def test_match_substitutions(self, store):
        answers = set()
        for subst in store.match_substitutions(atom("p", a, Y)):
            answers.add(subst.apply_term(Y))
        assert answers == {b, c}


class TestInspection:
    def test_len(self, store):
        assert len(store) == 4

    def test_predicates(self, store):
        assert store.predicates() == {"p", "q"}

    def test_count(self, store):
        assert store.count("p") == 3
        assert store.count("missing") == 0

    def test_iteration(self, store):
        assert len(list(store)) == 4

    def test_copy_is_independent(self, store):
        clone = store.copy()
        clone.add(atom("q", c))
        assert not store.contains(atom("q", c))
        store.remove(atom("q", a))
        assert clone.contains(atom("q", a))

    def test_constants(self, store):
        assert store.constants() == {a, b, c}

"""The worst-case-optimal join kernel, pinned layer by layer.

Bottom up: the trie iterator's open/up/next/seek navigation, the
unary leapfrog intersection, the GYO acyclicity planner test, the
columnar relation container (including the width-0 unit-row subtlety),
the full leapfrog enumeration against a nested-loop reference — then
the dispatcher: eligibility pinned through the ``join.wcoj_joins`` /
``join.wcoj_fallbacks`` registry counters, mid-saturation delta
seeding against the hash oracle, and ``join_algo`` validation at
every seam with one line naming the choices.
"""

import pytest

from repro.config import EngineConfig
from repro.datalog.columnar import ColumnarRelation
from repro.datalog.database import DeductiveDatabase
from repro.datalog.facts import FactStore
from repro.datalog.joins import (
    JOIN_ALGOS,
    join_body,
    join_literals_rows,
    probe_from_source,
    validate_join_algo,
)
from repro.datalog.program import Program, Rule
from repro.datalog.wcoj import (
    Leapfrog,
    TrieIterator,
    is_acyclic,
    leapfrog_rows,
    variable_order,
)
from repro.logic.formulas import Atom, Literal
from repro.logic.parser import parse_rule
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.obs.metrics import default_registry

W, X, Y, Z = Variable("W"), Variable("X"), Variable("Y"), Variable("Z")


def atom(pred, *names):
    return Atom(pred, tuple(Constant(name) for name in names))


def const_rows(rows):
    return [tuple(Constant(v) for v in row) for row in rows]


def wcoj_counts():
    registry = default_registry()
    return (
        registry.counter("join.wcoj_joins").value,
        registry.counter("join.wcoj_fallbacks").value,
    )


class TestTrieIterator:
    def test_navigation_over_two_columns(self):
        trie = TrieIterator([(1, 4), (1, 5), (2, 6), (4, 4)])
        assert not trie.at_end
        trie.open()  # level 0: keys 1, 2, 4
        assert trie.key() == 1
        trie.open()  # level 1 under 1: keys 4, 5
        assert trie.key() == 4
        trie.next()
        assert trie.key() == 5
        trie.next()
        assert trie.at_end
        trie.up()
        assert trie.key() == 1
        trie.next()
        assert trie.key() == 2
        trie.open()  # level 1 under 2: key 6 only
        assert trie.key() == 6
        trie.next()
        assert trie.at_end
        trie.up()
        trie.seek(3)  # least level-0 key >= 3 is 4
        assert trie.key() == 4
        trie.next()
        assert trie.at_end

    def test_seek_to_missing_key_lands_on_successor(self):
        trie = TrieIterator([(10,), (20,), (30,)])
        trie.open()
        trie.seek(15)
        assert trie.key() == 20
        trie.seek(31)
        assert trie.at_end

    def test_duplicates_collapse(self):
        trie = TrieIterator([(1, 2), (1, 2), (1, 2)])
        trie.open()
        assert trie.key() == 1
        trie.open()
        assert trie.key() == 2
        trie.next()
        assert trie.at_end

    def test_empty_relation_starts_at_end(self):
        assert TrieIterator([]).at_end

    def test_up_restores_position(self):
        trie = TrieIterator([(1, 1), (2, 2), (3, 3)])
        trie.open()
        trie.next()  # at 2
        trie.open()
        assert trie.key() == 2
        trie.up()
        assert trie.key() == 2  # back where we were, not rewound


class TestLeapfrog:
    def intersect(self, *relations):
        iters = []
        for rel in relations:
            trie = TrieIterator([(v,) for v in rel])
            trie.open()
            iters.append(trie)
        frog = Leapfrog(iters)
        frog.init()
        out = []
        while not frog.at_end:
            out.append(frog.key)
            frog.next()
        return out

    def test_three_way_intersection(self):
        assert self.intersect(
            [0, 1, 3, 4, 5, 6, 7, 8, 9, 11],
            [0, 2, 6, 7, 8, 9],
            [2, 4, 5, 8, 10],
        ) == [8]  # the worked example of Veldhuizen 2014, Fig. 1

    def test_disjoint_inputs_intersect_empty(self):
        assert self.intersect([1, 3], [2, 4]) == []

    def test_single_iterator_enumerates_all(self):
        assert self.intersect([3, 1, 2]) == [1, 2, 3]

    def test_empty_input_is_at_end(self):
        assert self.intersect([1, 2], []) == []


class TestVariableOrder:
    def test_most_shared_first(self):
        # Y occurs in both atoms, X and Z once each.
        order = variable_order([(X, Y), (Y, Z)])
        assert order[0] == Y
        assert set(order) == {X, Y, Z}

    def test_ties_break_by_first_occurrence(self):
        assert variable_order([(X, Y), (Y, X)]) == (X, Y)
        assert variable_order([(Y, X), (X, Y)]) == (Y, X)


class TestIsAcyclic:
    def test_triangle_is_cyclic(self):
        assert not is_acyclic([(X, Y), (Y, Z), (X, Z)])

    def test_path_is_acyclic(self):
        assert is_acyclic([(X, Y), (Y, Z)])

    def test_star_is_acyclic(self):
        # E13's shape: many relations sharing one variable.
        assert is_acyclic([(X,), (X, Y), (X, Z), (X, W)])

    def test_four_cycle_is_cyclic(self):
        assert not is_acyclic([(W, X), (X, Y), (Y, Z), (Z, W)])

    def test_triangle_with_pendant_stays_cyclic(self):
        assert not is_acyclic([(X, Y), (Y, Z), (X, Z), (Z, W)])

    def test_duplicate_edges_are_acyclic(self):
        assert is_acyclic([(X, Y), (X, Y)])

    def test_empty_body_is_acyclic(self):
        assert is_acyclic([])


class TestColumnarRelation:
    def test_round_trip(self):
        rows = const_rows([("a", "b"), ("c", "d")])
        rel = ColumnarRelation.from_rows((X, Y), rows)
        assert len(rel) == 2
        assert list(rel.rows()) == rows
        assert rel.column(Y) == [rows[0][1], rows[1][1]]

    def test_width_zero_keeps_row_count(self):
        # A ground body's seed: one empty row means "satisfied", no
        # rows means "failed". The pivot must not conflate them.
        unit = ColumnarRelation.from_rows((), [()])
        assert len(unit) == 1 and bool(unit)
        assert list(unit.rows()) == [()]
        empty = ColumnarRelation.from_rows((), [])
        assert len(empty) == 0 and not bool(empty)
        assert list(empty.rows()) == []

    def test_project_shares_columns(self):
        rel = ColumnarRelation.from_rows(
            (X, Y), const_rows([("a", "b"), ("c", "d")])
        )
        projected = rel.project((Y,))
        assert projected.schema == (Y,)
        assert projected.columns[0] is rel.columns[1]
        assert len(projected) == 2

    def test_key_of_empty_positions(self):
        rel = ColumnarRelation.from_rows((X,), const_rows([("a",), ("b",)]))
        assert rel.key_of(()) == [(), ()]

    def test_distinct_returns_self_when_already_distinct(self):
        rel = ColumnarRelation.from_rows(
            (X,), const_rows([("a",), ("b",)])
        )
        assert rel.distinct() is rel

    def test_distinct_dedups(self):
        rel = ColumnarRelation.from_rows(
            (X,), const_rows([("a",), ("a",), ("b",)])
        )
        deduped = rel.distinct()
        assert deduped is not rel
        assert sorted(c.value for (c,) in deduped.rows()) == ["a", "b"]

    def test_distinct_width_zero(self):
        many = ColumnarRelation.from_rows((), [(), (), ()])
        assert len(many) == 3
        assert len(many.distinct()) == 1
        unit = ColumnarRelation.from_rows((), [()])
        assert unit.distinct() is unit

    def test_schema_column_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema/column mismatch"):
            ColumnarRelation((X, Y), [[]])


def reference_triangle(r_rows, s_rows, t_rows):
    """Nested-loop triangle join — the oracle for leapfrog_rows."""
    out = set()
    for x, y in r_rows:
        for y2, z in s_rows:
            if y2 != y:
                continue
            for x2, z2 in t_rows:
                if x2 == x and z2 == z:
                    out.add((x, y, z))
    return out


class TestLeapfrogRows:
    def run(self, order, relations):
        return set(leapfrog_rows(order, relations))

    def test_triangle_matches_nested_loop(self):
        r = [("a", "b"), ("a", "c"), ("b", "c"), ("c", "a")]
        s = [("b", "c"), ("c", "a"), ("a", "b"), ("b", "b")]
        t = [("a", "c"), ("b", "a"), ("a", "b"), ("c", "c")]
        relations = [
            ColumnarRelation.from_rows((X, Y), const_rows(r)),
            ColumnarRelation.from_rows((Y, Z), const_rows(s)),
            ColumnarRelation.from_rows((X, Z), const_rows(t)),
        ]
        order = variable_order([rel.schema for rel in relations])
        got = {
            tuple(c.value for c in row)
            for row in leapfrog_rows(order, relations)
        }
        expected = reference_triangle(r, s, t)
        reorder = [(X, Y, Z).index(v) for v in order]
        assert got == {tuple(row[i] for i in reorder) for row in expected}
        assert got  # the fixture is chosen to have matches

    def test_empty_relation_empties_join(self):
        relations = [
            ColumnarRelation.from_rows((X, Y), const_rows([("a", "b")])),
            ColumnarRelation.from_rows((Y, Z), []),
            ColumnarRelation.from_rows((X, Z), const_rows([("a", "c")])),
        ]
        assert self.run((X, Y, Z), relations) == set()

    def test_width_zero_unit_row_is_a_satisfied_filter(self):
        relations = [
            ColumnarRelation.from_rows((), [()]),
            ColumnarRelation.from_rows((X,), const_rows([("a",), ("b",)])),
            ColumnarRelation.from_rows((X,), const_rows([("b",), ("c",)])),
        ]
        got = self.run((X,), relations)
        assert {c.value for (c,) in got} == {"b"}

    def test_width_zero_empty_is_a_failed_filter(self):
        relations = [
            ColumnarRelation.from_rows((), []),
            ColumnarRelation.from_rows((X,), const_rows([("a",)])),
        ]
        assert self.run((X,), relations) == set()

    def test_no_variables_yields_unit_row(self):
        assert self.run((), [ColumnarRelation.from_rows((), [()])]) == {()}

    def test_mixed_value_types_join(self):
        # Constants wrap unorderable value mixes; the surrogate sort
        # key must still produce a usable (deterministic) order.
        rows = [(1, "one"), (2, "two"), ("x", 3)]
        relations = [
            ColumnarRelation.from_rows((X, Y), const_rows(rows)),
            ColumnarRelation.from_rows((X,), const_rows([(1,), ("x",)])),
            ColumnarRelation.from_rows((Y,), const_rows([("one",), (3,)])),
        ]
        order = variable_order([rel.schema for rel in relations])
        got = {
            tuple(c.value for c in row)
            for row in leapfrog_rows(order, relations)
        }
        reorder = [(X, Y).index(v) for v in order]
        assert got == {
            tuple(row[i] for i in reorder)
            for row in [(1, "one"), ("x", 3)]
        }


def triangle_store(n=6):
    """A dense-ish directed graph in r, plus markers."""
    store = FactStore()
    for i in range(n):
        for j in range(n):
            if i != j and (i + j) % 3 != 0:
                store.add(atom("r", f"v{i}", f"v{j}"))
    store.add(atom("q", "v0"))
    return store


def triangle_literals():
    return [
        Literal(Atom("r", (X, Y))),
        Literal(Atom("r", (Y, Z))),
        Literal(Atom("r", (X, Z))),
    ]


def rows_of(runner):
    out = set()
    for schema, rows in runner:
        for row in rows:
            out.add(
                frozenset(
                    (variable.name, str(value))
                    for variable, value in zip(schema, row)
                )
            )
    return out


class TestDispatcherCounters:
    """Eligibility pinned through the registry counters: a triangle
    or clique body under ``wcoj`` never falls back; a negated body
    never runs the leapfrog."""

    def join(self, literals, store, algo):
        return rows_of(
            join_literals_rows(
                literals,
                Substitution.empty(),
                probe_from_source(store),
                store.contains,
                join_algo=algo,
            )
        )

    def test_triangle_runs_wcoj_without_fallback(self):
        store = triangle_store()
        joins0, falls0 = wcoj_counts()
        wcoj = self.join(triangle_literals(), store, "wcoj")
        joins1, falls1 = wcoj_counts()
        assert joins1 == joins0 + 1
        assert falls1 == falls0  # pinned: no fallback on the triangle
        assert wcoj == self.join(triangle_literals(), store, "hash")

    def test_clique_runs_wcoj_without_fallback(self):
        store = triangle_store()
        clique = [
            Literal(Atom("r", pair))
            for pair in [(W, X), (W, Y), (W, Z), (X, Y), (X, Z), (Y, Z)]
        ]
        joins0, falls0 = wcoj_counts()
        wcoj = self.join(clique, store, "wcoj")
        joins1, falls1 = wcoj_counts()
        assert (joins1, falls1) == (joins0 + 1, falls0)
        assert wcoj == self.join(clique, store, "hash")

    def test_negative_literal_forces_fallback(self):
        store = triangle_store()
        literals = triangle_literals() + [
            Literal(Atom("q", (X,)), positive=False)
        ]
        joins0, falls0 = wcoj_counts()
        wcoj = self.join(literals, store, "wcoj")
        joins1, falls1 = wcoj_counts()
        assert joins1 == joins0  # pinned: the leapfrog never ran
        assert falls1 == falls0 + 1
        assert wcoj == self.join(literals, store, "hash")

    def test_two_literal_body_falls_back(self):
        store = triangle_store()
        literals = triangle_literals()[:2]
        joins0, falls0 = wcoj_counts()
        self.join(literals, store, "wcoj")
        joins1, falls1 = wcoj_counts()
        assert (joins1, falls1) == (joins0, falls0 + 1)

    def test_auto_takes_triangle_but_not_star(self):
        store = triangle_store()
        joins0, falls0 = wcoj_counts()
        self.join(triangle_literals(), store, "auto")
        joins1, falls1 = wcoj_counts()
        assert (joins1, falls1) == (joins0 + 1, falls0)
        star = [
            Literal(Atom("r", (X, Y))),
            Literal(Atom("r", (X, Z))),
            Literal(Atom("r", (X, W))),
        ]
        self.join(star, store, "auto")
        joins2, falls2 = wcoj_counts()
        # auto choosing hash for an acyclic body is a plan, not a
        # fallback: neither counter moves.
        assert (joins2, falls2) == (joins1, falls1)

    def test_hash_never_dispatches(self):
        store = triangle_store()
        joins0, falls0 = wcoj_counts()
        self.join(triangle_literals(), store, "hash")
        assert wcoj_counts() == (joins0, falls0)

    def test_repeated_variable_atom_agrees(self):
        store = triangle_store()
        store.add(atom("r", "v1", "v1"))
        store.add(atom("r", "v4", "v4"))
        literals = [
            Literal(Atom("r", (X, X))),
            Literal(Atom("r", (X, Y))),
            Literal(Atom("r", (Y, X))),
        ]
        assert self.join(literals, store, "wcoj") == self.join(
            literals, store, "hash"
        )


TRIANGLE_PROGRAM = [
    "tri(X, Y, Z) :- r(X, Y), r(Y, Z), r(X, Z)",
    # Recursive consumer of the triangle relation: its delta rounds
    # seed the eligible body mid-saturation.
    "reach(X, Y) :- tri(X, Y, Z)",
    "reach(X, Z) :- reach(X, Y), r(Y, Z), r(X, Z)",
]


class TestDeltaSeeding:
    """Semi-naive rounds seed the leapfrog from the delta relation;
    the fixpoint must equal the hash pipeline's."""

    def models(self, algo):
        from repro.datalog.bottomup import compute_model

        program = Program(
            [Rule.from_parsed(parse_rule(t)) for t in TRIANGLE_PROGRAM]
        )
        # The leapfrog is a batch-kernel path: pin exec_mode so the
        # counter assertions hold under the tuple CI leg too.
        return frozenset(
            compute_model(
                triangle_store(), program,
                exec_mode="batch", join_algo=algo,
            )
        )

    def test_fixpoints_agree_across_kernels(self):
        hash_model = self.models("hash")
        assert self.models("wcoj") == hash_model
        assert self.models("auto") == hash_model
        assert any(fact.pred == "reach" for fact in hash_model)

    def test_recursive_rounds_run_the_leapfrog(self):
        joins0, _ = wcoj_counts()
        self.models("wcoj")
        joins1, _ = wcoj_counts()
        # Round zero of each eligible rule plus at least one seeded
        # differential round.
        assert joins1 - joins0 >= 3


class TestJoinAlgoSeamValidation:
    """Unknown join algorithms fail at the seam with one line naming
    the choices — never by silently running the wrong kernel."""

    def test_validate_join_algo(self):
        for algo in JOIN_ALGOS:
            assert validate_join_algo(algo) == algo
        with pytest.raises(ValueError, match="unknown join algo"):
            validate_join_algo("leapfrog")

    def test_join_literals_rows_rejects_unknown_algo(self):
        store = triangle_store()
        with pytest.raises(ValueError, match="unknown join algo"):
            list(
                join_literals_rows(
                    triangle_literals(),
                    Substitution.empty(),
                    probe_from_source(store),
                    store.contains,
                    join_algo="bogus",
                )
            )

    def test_join_body_rejects_unknown_algo(self):
        store = triangle_store()
        with pytest.raises(ValueError, match="unknown join algo"):
            join_body(
                triangle_literals(),
                Substitution.empty(),
                lambda index, pattern: store.match_substitutions(pattern),
                store.contains,
                join_algo="bogus",
            )

    def test_engine_config_rejects_unknown_algo(self):
        with pytest.raises(ValueError, match="unknown join algo"):
            EngineConfig(join_algo="bogus")

    def test_compute_model_rejects_unknown_algo(self):
        from repro.datalog.bottomup import compute_model

        with pytest.raises(ValueError, match="unknown join algo"):
            compute_model(FactStore(), Program(), join_algo="bogus")

    def test_evaluate_stratum_rejects_unknown_algo(self):
        from repro.datalog.bottomup import evaluate_stratum

        with pytest.raises(ValueError, match="unknown join algo"):
            evaluate_stratum(FactStore(), [], set(), join_algo="bogus")

    def test_maintained_model_rejects_unknown_algo(self):
        from repro.datalog.incremental import MaintainedModel

        with pytest.raises(ValueError, match="unknown join algo"):
            MaintainedModel(FactStore(), Program(), join_algo="bogus")
        with pytest.raises(ValueError, match="unknown join algo"):
            MaintainedModel.from_snapshot(
                FactStore(), Program(), FactStore(), join_algo="bogus"
            )

    def test_engine_rejects_unknown_algo(self):
        db = DeductiveDatabase(FactStore())
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown join algo"):
                db.engine(join_algo="bogus")

    def test_cli_rejects_unknown_algo(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["model", "nosuch.dl", "--join-algo", "bogus"]
            )
        assert excinfo.value.code == 2
        assert "--join-algo" in capsys.readouterr().err

    def test_cli_accepts_every_algo(self):
        from repro.cli import build_parser

        for algo in JOIN_ALGOS:
            args = build_parser().parse_args(
                ["model", "nosuch.dl", "--join-algo", algo]
            )
            assert args.join_algo == algo


class TestEngineConfigJoinAlgo:
    def test_key_includes_join_algo(self):
        assert (
            EngineConfig(join_algo="wcoj").key()
            != EngineConfig(join_algo="hash").key()
        )

    def test_default_is_valid(self):
        assert EngineConfig().join_algo in JOIN_ALGOS


class TestEndToEndAgreement:
    def test_query_engine_agrees_on_triangles(self):
        db = DeductiveDatabase(triangle_store())
        db.add_rule(TRIANGLE_PROGRAM[0])
        answers = {}
        for algo in JOIN_ALGOS:
            engine = db.engine(config=EngineConfig(join_algo=algo))
            answers[algo] = {
                frozenset((v.name, str(t)) for v, t in s.items())
                for s in engine.match_atom(Atom("tri", (X, Y, Z)))
            }
        assert answers["auto"] == answers["wcoj"] == answers["hash"]
        assert answers["hash"]

"""Unit tests for the formula-level query engine, across strategies."""

import pytest

from repro.config import EngineConfig
from repro.datalog.facts import FactStore
from repro.datalog.program import Program, Rule
from repro.datalog.query import QueryEngine
from repro.logic.normalize import normalize_constraint
from repro.logic.parser import parse_atom, parse_fact, parse_formula, parse_rule
from repro.logic.terms import Constant, Variable

STRATEGIES = ["lazy", "topdown", "model"]

X, Y = Variable("X"), Variable("Y")


def program(*texts):
    return Program([Rule.from_parsed(parse_rule(t)) for t in texts])


def store(*facts):
    return FactStore(parse_fact(f) for f in facts)


def constraint(text):
    return normalize_constraint(parse_formula(text))


@pytest.fixture(params=STRATEGIES)
def university(request):
    facts = store(
        "student(jack)",
        "student(jill)",
        "attends(jack, ddb)",
        "keen(jack)",
    )
    prog = program("enrolled(X, cs) :- student(X)")
    return QueryEngine(
        facts, prog, config=EngineConfig(strategy=request.param)
    )


class TestAtomAccess:
    def test_holds_edb(self, university):
        assert university.holds(parse_fact("student(jack)"))
        assert not university.holds(parse_fact("student(joe)"))

    def test_holds_derived(self, university):
        assert university.holds(parse_fact("enrolled(jack, cs)"))
        assert university.holds(parse_fact("enrolled(jill, cs)"))
        assert not university.holds(parse_fact("enrolled(joe, cs)"))

    def test_match_atom_mixes_edb_and_idb(self, university):
        answers = {
            s.apply_term(X)
            for s in university.match_atom(parse_atom("enrolled(X, cs)"))
        }
        assert answers == {Constant("jack"), Constant("jill")}

    def test_holds_requires_ground(self, university):
        with pytest.raises(ValueError):
            university.holds(parse_atom("student(X)"))


class TestFormulaEvaluation:
    def test_universal_true(self, university):
        formula = constraint("forall X: student(X) -> enrolled(X, cs)")
        assert university.evaluate(formula)

    def test_universal_false(self, university):
        formula = constraint("forall X: student(X) -> attends(X, ddb)")
        assert not university.evaluate(formula)

    def test_existential_true(self, university):
        formula = constraint("exists X: student(X) and attends(X, ddb)")
        assert university.evaluate(formula)

    def test_existential_false(self, university):
        formula = constraint("exists X: student(X) and attends(X, logic)")
        assert not university.evaluate(formula)

    def test_nested_quantifiers(self, university):
        formula = constraint(
            "forall X: keen(X) -> exists Y: attends(X, Y)"
        )
        assert university.evaluate(formula)

    def test_ground_formula(self, university):
        assert university.evaluate(constraint("student(jack) and keen(jack)"))
        assert not university.evaluate(constraint("student(jack) and keen(jill)"))

    def test_negative_literal(self, university):
        formula = constraint("forall X: student(X) -> not failed(X)")
        assert university.evaluate(formula)

    def test_true_false_constants(self, university):
        from repro.logic.formulas import FALSE, TRUE

        assert university.evaluate(TRUE)
        assert not university.evaluate(FALSE)


class TestViolations:
    def test_universal_violations_report_witnesses(self, university):
        formula = constraint("forall X: student(X) -> attends(X, ddb)")
        witnesses = list(university.violations(formula))
        assert len(witnesses) == 1
        (witness,) = witnesses
        bound = {t for _, t in witness.items()}
        assert Constant("jill") in bound

    def test_satisfied_formula_has_no_violations(self, university):
        formula = constraint("forall X: student(X) -> enrolled(X, cs)")
        assert list(university.violations(formula)) == []

    def test_false_ground_formula_yields_binding(self, university):
        formula = constraint("student(joe)")
        assert len(list(university.violations(formula))) == 1


class TestLazyMaterialization:
    def test_edb_only_queries_do_not_materialize(self):
        facts = store("base(a)")
        prog = program(
            "derived(X) :- base(X)",
            "other(X) :- heavy(X)",
        )
        engine = QueryEngine(facts, prog, config=EngineConfig(strategy="lazy"))
        engine.holds(parse_fact("base(a)"))
        assert engine._materialized == set()

    def test_materialization_is_per_closure(self):
        facts = store("base(a)", "heavy(b)")
        prog = program(
            "derived(X) :- base(X)",
            "other(X) :- heavy(X)",
        )
        engine = QueryEngine(facts, prog, config=EngineConfig(strategy="lazy"))
        engine.holds(parse_fact("derived(a)"))
        assert "derived" in engine._materialized
        assert "other" not in engine._materialized

    def test_model_strategy_materializes_everything(self):
        facts = store("base(a)", "heavy(b)")
        prog = program(
            "derived(X) :- base(X)",
            "other(X) :- heavy(X)",
        )
        engine = QueryEngine(facts, prog, config=EngineConfig(strategy="model"))
        assert engine._materialized == {"derived", "other"}

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            QueryEngine(
                store(), Program(), config=EngineConfig(strategy="psychic")
            )
        # The legacy positional seam still validates (and warns).
        with pytest.warns(DeprecationWarning), pytest.raises(ValueError):
            QueryEngine(store(), Program(), "psychic")


class TestRecursionThroughEngine:
    @pytest.fixture(params=STRATEGIES)
    def engine(self, request):
        facts = store("par(a, b)", "par(b, c)", "par(c, d)")
        prog = program(
            "anc(X, Y) :- par(X, Y)",
            "anc(X, Y) :- par(X, Z), anc(Z, Y)",
        )
        return QueryEngine(
            facts, prog, config=EngineConfig(strategy=request.param)
        )

    def test_recursive_holds(self, engine):
        assert engine.holds(parse_fact("anc(a, d)"))
        assert not engine.holds(parse_fact("anc(d, a)"))

    def test_recursive_constraint(self, engine):
        assert engine.evaluate(
            constraint("forall X, Y: par(X, Y) -> anc(X, Y)")
        )
        assert not engine.evaluate(
            constraint("forall X, Y: anc(X, Y) -> par(X, Y)")
        )

"""Unit tests for the magic-sets demand transformation."""

import pytest

from repro.config import EngineConfig
from repro.datalog.database import DeductiveDatabase
from repro.datalog.facts import FactStore
from repro.datalog.magic import (
    MagicEvaluator,
    MagicFallbackWarning,
    MagicRewriteError,
    adorned_name,
    adornment_for,
    bound_args,
    magic_name,
    magic_rewrite,
)
from repro.datalog.program import Program, Rule
from repro.datalog.query import validate_strategy
from repro.logic.parser import parse_atom, parse_rule
from repro.logic.terms import Constant, Variable


def program_of(*texts):
    return Program([Rule.from_parsed(parse_rule(t)) for t in texts])


ANCESTOR = program_of(
    "anc(X, Y) :- par(X, Y)",
    "anc(X, Y) :- par(X, Z), anc(Z, Y)",
)


class TestAdornments:
    def test_constants_are_bound(self):
        atom = parse_atom("p(a, X, b)")
        assert adornment_for(atom.args, set()) == "bfb"

    def test_bound_variables_are_bound(self):
        atom = parse_atom("p(X, Y)")
        assert adornment_for(atom.args, {Variable("X")}) == "bf"

    def test_names_cannot_clash_with_parsed_predicates(self):
        assert "@" in adorned_name("p", "bf")
        assert "@" in magic_name("p", "bf")

    def test_bound_args_selects_bound_positions(self):
        atom = parse_atom("p(a, X, b)")
        assert bound_args(atom, "bfb") == (Constant("a"), Constant("b"))


class TestRewrite:
    def test_declines_extensional_query(self):
        with pytest.raises(MagicRewriteError, match="extensional"):
            magic_rewrite(ANCESTOR, parse_atom("par(a, X)"))

    def test_declines_unbound_query(self):
        with pytest.raises(MagicRewriteError, match="binds no argument"):
            magic_rewrite(ANCESTOR, parse_atom("anc(X, Y)"))

    def test_ancestor_bound_first(self):
        # The classic (non-supplementary) rewrite — the oracle shape.
        rewrite = magic_rewrite(
            ANCESTOR, parse_atom("anc(a, Y)"), supplementary=False
        )
        assert rewrite.answer_pred == "anc@bf"
        assert rewrite.magic_pred == "magic@anc@bf"
        assert not rewrite.supplementary
        assert not rewrite.sup_predicates()
        from repro.logic.formulas import Atom

        assert rewrite.seed_for(parse_atom("anc(a, Y)")) == Atom(
            "magic@anc@bf", (Constant("a"),)
        )
        heads = {rule.head.pred for rule in rewrite.program}
        assert heads == {"anc@bf", "magic@anc@bf"}
        # Demand flows through the recursive rule: magic(Z) :- magic(X), par(X, Z).
        magic_rules = [
            r for r in rewrite.program if r.head.pred == "magic@anc@bf"
        ]
        assert len(magic_rules) == 1
        assert {l.atom.pred for l in magic_rules[0].body} == {
            "magic@anc@bf",
            "par",
        }

    def test_rewritten_rules_are_guarded(self):
        rewrite = magic_rewrite(
            ANCESTOR, parse_atom("anc(a, Y)"), supplementary=False
        )
        for rule in rewrite.program:
            if rule.head.pred == rewrite.answer_pred:
                assert rule.body[0].atom.pred == rewrite.magic_pred

    def test_seed_rejects_mismatched_pattern(self):
        rewrite = magic_rewrite(ANCESTOR, parse_atom("anc(a, Y)"))
        with pytest.raises(ValueError):
            rewrite.seed_for(parse_atom("par(a, Y)"))
        with pytest.raises(ValueError):
            rewrite.seed_for(parse_atom("anc(X, b)"))

    def test_negation_on_edb_passes_through(self):
        program = program_of("open(O) :- order(O, C), not done(O)")
        rewrite = magic_rewrite(program, parse_atom("open(o1)"))
        guarded = [r for r in rewrite.program if r.head.pred == "open@b"]
        assert any(
            not l.positive and l.atom.pred == "done"
            for rule in guarded
            for l in rule.body
        )

    def test_negation_on_idb_is_demanded(self):
        program = program_of(
            "node(X) :- r(X, Y)",
            "target(Y) :- r(X, Y)",
            "lonely(X) :- node(X), not target(X)",
        )
        rewrite = magic_rewrite(program, parse_atom("lonely(a)"))
        assert ("target", "b") in rewrite.adornments

    def test_declines_when_rewrite_breaks_stratification(self):
        # Stratified source program whose demand propagation creates
        # recursion through negation: b's magic set depends on a, and a
        # depends negatively on b.
        program = program_of(
            "p(X) :- a(X, Y), b(Y)",
            "a(X, Y) :- e(X, Y), not b(X)",
            "b(X) :- f(X)",
        )
        with pytest.raises(MagicRewriteError, match="not stratified"):
            magic_rewrite(program, parse_atom("p(c)"))


class TestSupplementaryRewrite:
    """The supplementary (default) rewrite: rule prefixes are
    materialized once per split point as ``sup@…`` predicates shared by
    the magic rule they seed and the rest of the body."""

    def test_prefix_is_shared_not_rederived(self):
        rewrite = magic_rewrite(ANCESTOR, parse_atom("anc(a, Y)"))
        assert rewrite.supplementary
        sup_preds = rewrite.sup_predicates()
        assert len(sup_preds) == 1
        (sup,) = sup_preds
        # The recursive rule's prefix magic@anc@bf(X), par(X, Z) is
        # joined in exactly one rule body — the supplementary
        # definition; both consumers (the magic rule and the guarded
        # recursive rule) read the sup relation instead of re-deriving
        # it. (The base rule anc@bf :- guard, par(X, Y) keeps its own
        # body: it has no intensional subgoal, hence no split.)
        sup_rules = [r for r in rewrite.program if r.head.pred == sup]
        assert len(sup_rules) == 1
        assert [l.atom.pred for l in sup_rules[0].body] == [
            "magic@anc@bf", "par",
        ]
        magic_rules = [
            r for r in rewrite.program if r.head.pred == "magic@anc@bf"
        ]
        assert len(magic_rules) == 1
        assert [l.atom.pred for l in magic_rules[0].body] == [sup]
        recursive = [
            r
            for r in rewrite.program
            if r.head.pred == "anc@bf"
            and any(l.atom.pred == "anc@bf" for l in r.body)
        ]
        assert len(recursive) == 1
        assert recursive[0].body[0].atom.pred == sup

    def test_sup_names_cannot_clash_with_parsed_predicates(self):
        rewrite = magic_rewrite(ANCESTOR, parse_atom("anc(a, Y)"))
        for sup in rewrite.sup_predicates():
            assert "@" in sup

    def test_no_sup_without_prefix(self):
        # A rule whose intensional subgoal sits first has only the
        # guard before it — nothing worth materializing.
        program = program_of(
            "p(X) :- q(X)",
            "q(X) :- e(X)",
        )
        rewrite = magic_rewrite(program, parse_atom("p(a)"))
        assert rewrite.sup_predicates() == frozenset()

    def test_multiple_splits_chain_supplementaries(self):
        # Two intensional subgoals behind a shared extensional prefix:
        # sup_0 materializes the prefix, sup_1 extends sup_0 — the
        # prefix join itself happens exactly once.
        program = program_of(
            "res(X, Y) :- e1(X, A), e2(A, B), q(B, M), q(M, Y)",
            "q(X, Y) :- f(X, Y)",
        )
        rewrite = magic_rewrite(program, parse_atom("res(a, Y)"), None)
        sups = sorted(rewrite.sup_predicates())
        assert len(sups) == 2
        by_head = {}
        for rule in rewrite.program:
            by_head.setdefault(rule.head.pred, []).append(rule)
        # sup_0 :- guard, e1, e2 ; sup_1 :- sup_0, q@ ; and e1/e2 appear
        # in no other rule body of the res rewrite.
        [sup0_rule] = by_head[sups[0]]
        assert {l.atom.pred for l in sup0_rule.body} == {
            "magic@res@bf", "e1", "e2",
        }
        [sup1_rule] = by_head[sups[1]]
        assert sup1_rule.body[0].atom.pred == sups[0]
        prefix_consumers = [
            rule
            for rule in rewrite.program
            if any(l.atom.pred in ("e1", "e2") for l in rule.body)
        ]
        assert prefix_consumers == [sup0_rule]

    def test_carried_negative_keeps_its_variables(self):
        # A negative before the split whose variable nothing after the
        # split mentions: the sup projection must keep Y alive for the
        # carried ``not f(Y)`` filter in the guarded rule.
        program = program_of(
            "p(X) :- e(X, Y), not f(Y), q(X)",
            "q(X) :- g(X)",
        )
        rewrite = magic_rewrite(program, parse_atom("p(a)"), None)
        (sup,) = rewrite.sup_predicates()
        sup_rules = [r for r in rewrite.program if r.head.pred == sup]
        assert len(sup_rules) == 1
        # The sup body holds the positive prefix only; the negative is
        # carried to the guarded rule, which still sees Y via the sup.
        assert all(l.positive for l in sup_rules[0].body)
        guarded = [
            r
            for r in rewrite.program
            if r.head.pred == "p@b"
            and any(not l.positive for l in r.body)
        ]
        assert len(guarded) == 1
        sup_vars = set(sup_rules[0].head.variables())
        for literal in guarded[0].body:
            if not literal.positive:
                assert literal.atom.variables() <= sup_vars

    def test_supplementary_answers_match_oracle(self):
        facts = FactStore()
        for i in range(12):
            facts.add(parse_atom(f"par(g{i}, g{i + 1})"))
        for pattern_text in ("anc(g3, Y)", "anc(X, g7)", "anc(g0, g5)"):
            pattern = parse_atom(pattern_text)
            sup = MagicEvaluator(facts, ANCESTOR, supplementary=True)
            oracle = MagicEvaluator(facts, ANCESTOR, supplementary=False)
            assert sorted(map(str, sup.answers(pattern))) == sorted(
                map(str, oracle.answers(pattern))
            )

    def test_supplementary_with_negation_matches_oracle(self):
        program = program_of(
            "p(X) :- e(X, Y), not f(Y), q(X)",
            "q(X) :- g(X)",
        )
        facts = FactStore(
            parse_atom(text)
            for text in (
                "e(a, m)", "e(b, n)", "e(c, m)", "f(n)", "g(a)", "g(b)",
            )
        )
        for constant in "abcd":
            pattern = parse_atom(f"p({constant})")
            sup = MagicEvaluator(facts, program, supplementary=True)
            oracle = MagicEvaluator(facts, program, supplementary=False)
            assert sup.holds(pattern) == oracle.holds(pattern)

    def test_evaluator_records_mode_in_stats(self):
        evaluator = MagicEvaluator(FactStore(), ANCESTOR)
        assert evaluator.stats()["magic.supplementary"] == 1
        oracle = MagicEvaluator(FactStore(), ANCESTOR, supplementary=False)
        assert oracle.stats()["magic.supplementary"] == 0


class TestMagicEvaluator:
    def build_chain(self, n):
        facts = FactStore()
        for i in range(n):
            facts.add(parse_atom(f"par(g{i}, g{i + 1})"))
        return facts

    def test_answers_match_full_model(self):
        facts = self.build_chain(10)
        evaluator = MagicEvaluator(facts, ANCESTOR)
        pattern = parse_atom("anc(g0, Y)")
        assert evaluator.supports(pattern)
        answers = {
            str(s.apply_term(Variable("Y"))) for s in evaluator.answers(pattern)
        }
        assert answers == {f"g{i}" for i in range(1, 11)}

    def test_only_demanded_tuples_materialize(self):
        facts = self.build_chain(40)
        evaluator = MagicEvaluator(facts, ANCESTOR)
        list(evaluator.answers(parse_atom("anc(X, g3)")))
        # Full materialization would derive 40*41/2 = 820 anc facts;
        # the demanded slice is the 3 ancestors of g3 plus bookkeeping.
        assert evaluator.derived_fact_count() < 20

    def test_seeds_accumulate_soundly(self):
        facts = self.build_chain(10)
        evaluator = MagicEvaluator(facts, ANCESTOR)
        first = set(
            str(s.apply_term(Variable("Y")))
            for s in evaluator.answers(parse_atom("anc(g7, Y)"))
        )
        second = set(
            str(s.apply_term(Variable("Y")))
            for s in evaluator.answers(parse_atom("anc(g2, Y)"))
        )
        assert first == {"g8", "g9", "g10"}
        assert second == {f"g{i}" for i in range(3, 11)}

    def test_resaturation_is_incremental(self):
        facts = self.build_chain(30)
        evaluator = MagicEvaluator(facts, ANCESTOR)
        list(evaluator.answers(parse_atom("anc(g9, Y)")))
        after_first = evaluator.derived_fact_count()
        # Answering anc(g9, Y) propagated demand down the chain, so
        # g12's slice is already materialized: the later query must
        # not add a single fact.
        answers = list(evaluator.answers(parse_atom("anc(g12, Y)")))
        assert len(answers) == 30 - 12  # g13 .. g30
        assert evaluator.derived_fact_count() == after_first
        # A genuinely new slice (g5 sits above g9) pays only for
        # itself, never re-deriving what is already demanded.
        list(evaluator.answers(parse_atom("anc(g5, Y)")))
        grown = evaluator.derived_fact_count() - after_first
        assert 0 < grown < after_first

    def test_holds_ground_atom(self):
        facts = self.build_chain(6)
        evaluator = MagicEvaluator(facts, ANCESTOR)
        assert evaluator.holds(parse_atom("anc(g1, g5)"))
        assert not evaluator.holds(parse_atom("anc(g5, g1)"))

    def test_mixed_edb_idb_predicate_keeps_facts(self):
        program = program_of("anc(X, Y) :- par(X, Y)")
        facts = FactStore(
            [parse_atom("par(a, b)"), parse_atom("anc(a, zz)")]
        )
        evaluator = MagicEvaluator(facts, program)
        answers = {
            str(s.apply_term(Variable("Y")))
            for s in evaluator.answers(parse_atom("anc(a, Y)"))
        }
        assert answers == {"b", "zz"}

    def test_decline_is_recorded_and_warned_once(self):
        program = program_of(
            "p(X) :- a(X, Y), b(Y)",
            "a(X, Y) :- e(X, Y), not b(X)",
            "b(X) :- f(X)",
        )
        evaluator = MagicEvaluator(FactStore(), program)
        with pytest.warns(MagicFallbackWarning, match="not stratified"):
            assert not evaluator.supports(parse_atom("p(c)"))
        assert ("p", "b") in evaluator.declined
        # Second probe answers from the cache without re-warning.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not evaluator.supports(parse_atom("p(c)"))


class TestEngineIntegration:
    SOURCE = """
    par(a, b). par(b, c). par(c, d).
    person(a). person(b). person(c). person(d).
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
    """

    def test_strategy_validation_lists_choices(self):
        with pytest.raises(ValueError, match="magic"):
            validate_strategy("bogus")

    def test_engine_answers_agree_with_lazy(self):
        db = DeductiveDatabase.from_source(self.SOURCE)
        pattern = parse_atom("anc(b, Y)")
        lazy = {str(s) for s in db.engine(config=EngineConfig(strategy="lazy")).match_atom(pattern)}
        magic = {str(s) for s in db.engine(config=EngineConfig(strategy="magic")).match_atom(pattern)}
        assert magic == lazy

    def test_engine_falls_back_on_unbound_pattern(self):
        db = DeductiveDatabase.from_source(self.SOURCE)
        pattern = parse_atom("anc(X, Y)")
        lazy = {str(s) for s in db.engine(config=EngineConfig(strategy="lazy")).match_atom(pattern)}
        magic = {str(s) for s in db.engine(config=EngineConfig(strategy="magic")).match_atom(pattern)}
        assert magic == lazy
        assert ("anc", "ff") in db.engine(config=EngineConfig(strategy="magic")).magic.declined

    def test_engine_evaluates_constraints(self):
        db = DeductiveDatabase.from_source(
            self.SOURCE + "forall X, Y: anc(X, Y) -> person(Y).\n"
        )
        engine = db.engine(config=EngineConfig(strategy="magic"))
        assert engine.evaluate(db.constraints[0].formula)

    def test_checker_accepts_magic_strategy(self):
        from repro.integrity.checker import IntegrityChecker

        db = DeductiveDatabase.from_source(
            self.SOURCE + "forall X, Y: anc(X, Y) -> person(Y).\n"
        )
        checker = IntegrityChecker(db, config=EngineConfig(strategy="magic"))
        assert checker.check_bdm("par(d, a)").ok
        assert not checker.check_bdm("par(d, e)").ok

    def test_checker_validates_knobs_up_front(self):
        from repro.integrity.checker import IntegrityChecker

        db = DeductiveDatabase.from_source(self.SOURCE)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="strategy"):
                IntegrityChecker(db, strategy="bogus")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="plan"):
                IntegrityChecker(db, plan="bogus")


class TestIncrementalDemandMaintenance:
    """Repeat queries of an already-seen adornment must not re-saturate
    from round zero: the semi-naive delta is seeded with just the new
    magic fact, so the work (``derivations`` — facts produced by derive
    rounds *before* deduplication, which a round-zero restart would
    inflate even when nothing new is added) is O(new slice)."""

    @staticmethod
    def chain_store(n):
        store = FactStore()
        for i in range(n - 1):
            store.add(parse_atom(f"edge(g{i}, g{i + 1})"))
        return store

    @staticmethod
    def chain_program():
        return program_of(
            "reach(X, Y) :- edge(X, Y)",
            "reach(X, Y) :- edge(X, Z), reach(Z, Y)",
        )

    def test_repeat_query_does_zero_work(self):
        evaluator = MagicEvaluator(self.chain_store(40), self.chain_program())
        pattern = parse_atom("reach(g0, Y)")
        first = sorted(map(str, evaluator.answers(pattern)))
        work_after_first = evaluator.derivations
        assert work_after_first > 0
        again = sorted(map(str, evaluator.answers(pattern)))
        assert again == first
        assert evaluator.derivations == work_after_first
        # The repeat did not even start a saturation pass.
        assert evaluator.saturation_passes == 1

    def test_subsumed_seed_does_zero_work(self):
        """A seed already demanded as a sub-demand of an earlier query
        is recognized before any propagation happens."""
        evaluator = MagicEvaluator(self.chain_store(40), self.chain_program())
        list(evaluator.answers(parse_atom("reach(g0, Y)")))
        work = evaluator.derivations
        # g20's demand was created while answering g0 (the recursive
        # rule demands every suffix), so this query is fully covered.
        mid = sorted(map(str, evaluator.answers(parse_atom("reach(g20, Y)"))))
        assert len(mid) == 19
        assert evaluator.derivations == work
        assert evaluator.saturation_passes == 1

    def test_new_seed_pays_only_for_the_new_slice(self):
        """Extending demand by one chain node must cost O(1) rounds,
        not a re-saturation of the 60-node suffix already derived."""
        store = self.chain_store(60)
        program = self.chain_program()
        evaluator = MagicEvaluator(store, program)
        # Saturate the suffix below g1 first.
        list(evaluator.answers(parse_atom("reach(g1, Y)")))
        saturated_work = evaluator.derivations
        # Now demand g0: one new edge joins an already-derived suffix.
        answers = sorted(map(str, evaluator.answers(parse_atom("reach(g0, Y)"))))
        assert len(answers) == 59
        incremental_work = evaluator.derivations - saturated_work
        assert incremental_work > 0
        # A round-zero restart would redo >= the saturated work; the
        # incremental seed touches the new node's slice only. The new
        # slice is the g0 row (59 answers) plus its magic/guard facts,
        # so allow a small constant factor over that, far below the
        # full saturation cost.
        assert incremental_work < saturated_work / 4
        fresh = MagicEvaluator(store, program)
        list(fresh.answers(parse_atom("reach(g0, Y)")))
        from_scratch = fresh.derivations
        assert incremental_work < from_scratch / 4

    def test_answers_agree_with_fresh_evaluator(self):
        """Incremental accumulation never changes answers: interleaved
        queries equal what a fresh evaluator computes per pattern."""
        store = self.chain_store(25)
        program = self.chain_program()
        shared = MagicEvaluator(store, program)
        for start in (20, 5, 12, 0, 12, 20):
            pattern = parse_atom(f"reach(g{start}, Y)")
            fresh = MagicEvaluator(store, program)
            assert sorted(map(str, shared.answers(pattern))) == sorted(
                map(str, fresh.answers(pattern))
            )

    def test_stats_expose_work_counters(self):
        evaluator = MagicEvaluator(self.chain_store(10), self.chain_program())
        list(evaluator.answers(parse_atom("reach(g4, Y)")))
        stats = evaluator.stats()
        assert stats["magic.derivations"] == evaluator.derivations
        assert stats["magic.saturation_passes"] == 1

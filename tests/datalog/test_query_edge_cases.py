"""Edge-case tests for formula evaluation and witnesses."""


from repro.config import EngineConfig
from repro.datalog.facts import FactStore
from repro.datalog.overlay import OverlayFactStore
from repro.datalog.program import Program, Rule
from repro.datalog.query import QueryEngine
from repro.logic.normalize import normalize_constraint
from repro.logic.parser import (
    parse_fact,
    parse_formula,
    parse_literal,
    parse_rule,
)


def engine(facts=(), rules=(), strategy="lazy"):
    store = FactStore(parse_fact(f) for f in facts)
    program = Program([Rule.from_parsed(parse_rule(r)) for r in rules])
    return QueryEngine(store, program, config=EngineConfig(strategy=strategy))


def norm(text):
    return normalize_constraint(parse_formula(text))


class TestEmptyDatabase:
    def test_universals_hold(self):
        e = engine()
        assert e.evaluate(norm("forall X: p(X) -> q(X)"))
        assert e.evaluate(norm("forall X, Y: r(X, Y) -> not r(Y, X)"))

    def test_existentials_fail(self):
        e = engine()
        assert not e.evaluate(norm("exists X: p(X)"))

    def test_ground_negative_holds(self):
        e = engine()
        assert e.evaluate(norm("not p(a)"))


class TestQuantifierCornerCases:
    def test_exists_with_guard_constant(self):
        e = engine(["p(a)", "q(a)"])
        assert e.evaluate(norm("exists X: p(X) and q(X)"))
        e2 = engine(["p(a)", "q(b)"])
        assert not e2.evaluate(norm("exists X: p(X) and q(X)"))

    def test_forall_multiple_restriction_atoms(self):
        e = engine(["p(a)", "q(a)", "ok(a)", "p(b)"])
        # b only matches p, not q: the joint restriction excludes it.
        assert e.evaluate(norm("forall X: p(X) and q(X) -> ok(X)"))

    def test_nested_alternating_quantifiers(self):
        e = engine(
            ["emp(a)", "emp(b)", "dept(d)", "in(a, d)", "in(b, d)"]
        )
        assert e.evaluate(
            norm("forall X: emp(X) -> exists Y: dept(Y) and in(X, Y)")
        )
        e.facts.add(parse_fact("emp(c)"))
        assert not e.evaluate(
            norm("forall X: emp(X) -> exists Y: dept(Y) and in(X, Y)")
        )

    def test_repeated_variable_in_restriction(self):
        e = engine(["r(a, a)", "r(a, b)"])
        assert e.evaluate(norm("exists X: r(X, X)"))
        assert not e.evaluate(norm("forall X, Y: r(X, Y) -> not r(Y, X)"))


class TestViolationWitnesses:
    def test_multiple_witnesses(self):
        e = engine(["p(a)", "p(b)", "p(c)", "q(b)"])
        witnesses = list(e.violations(norm("forall X: p(X) -> q(X)")))
        assert len(witnesses) == 2

    def test_witnesses_over_derived_facts(self):
        e = engine(
            ["leads(ann, sales)"],
            ["member(X, Y) :- leads(X, Y)"],
        )
        witnesses = list(
            e.violations(norm("forall X, Y: member(X, Y) -> badge(X)"))
        )
        assert len(witnesses) == 1


class TestOverlayThroughEngine:
    def test_engine_over_overlay(self):
        base = FactStore([parse_fact("p(a)")])
        view = OverlayFactStore.from_update(base, parse_literal("p(b)"))
        e = QueryEngine(view, Program(), config=EngineConfig(strategy="lazy"))
        assert e.evaluate(norm("exists X: p(X)"))
        assert e.holds(parse_fact("p(b)"))
        assert not e.holds(parse_fact("p(c)"))

    def test_derivation_over_overlay_deletion(self):
        base = FactStore([parse_fact("leads(ann, sales)")])
        view = OverlayFactStore.from_update(
            base, parse_literal("not leads(ann, sales)")
        )
        program = Program(
            [Rule.from_parsed(parse_rule("member(X, Y) :- leads(X, Y)"))]
        )
        e = QueryEngine(view, program, config=EngineConfig(strategy="lazy"))
        assert not e.holds(parse_fact("member(ann, sales)"))


class TestLookupAccounting:
    def test_lookup_count_monotone(self):
        e = engine(["p(a)"])
        before = e.lookup_count
        e.holds(parse_fact("p(a)"))
        mid = e.lookup_count
        e.evaluate(norm("exists X: p(X)"))
        assert before < mid < e.lookup_count

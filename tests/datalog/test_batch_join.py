"""The set-at-a-time join kernel against the tuple-at-a-time oracle,
plus the short-circuit regressions the batch path must preserve.

The batch pipeline carries binding relations in chunks precisely so
that consumers wanting one witness (existence tests, violation search,
the integrity gate's constraint evaluation) never pay for the full
join. The tests here pin that with probe counters: a first-answer
consumer touches at most a chunk's worth of probes, a full enumeration
touches one probe per distinct join key.
"""

import pytest

from repro.config import EngineConfig
from repro.datalog.database import DeductiveDatabase
from repro.datalog.facts import FactStore
from repro.datalog.joins import (
    BATCH_CHUNK,
    join_literals,
    join_literals_batch,
    probe_from_matcher,
    probe_from_source,
    validate_exec,
)
from repro.integrity.checker import IntegrityChecker
from repro.logic.formulas import Atom, Literal
from repro.logic.parser import parse_literal
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable


def atom(pred, *names):
    return Atom(pred, tuple(Constant(name) for name in names))


X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class CountingStore(FactStore):
    """A FactStore counting its batched and scanning probes."""

    def __init__(self, facts=()):
        self.bucket_probes = 0
        self.match_calls = 0
        super().__init__(facts)

    def bucket(self, pred, positions, key):
        self.bucket_probes += 1
        return super().bucket(pred, positions, key)

    def match(self, pattern):
        self.match_calls += 1
        return super().match(pattern)

    @property
    def probes(self):
        return self.bucket_probes + self.match_calls


def small_store():
    store = FactStore()
    for fact in (
        atom("p", "a"),
        atom("p", "b"),
        atom("p", "c"),
        atom("q", "b"),
        atom("r", "a", "b"),
        atom("r", "a", "c"),
        atom("r", "b", "b"),
        atom("r", "c", "c"),
        atom("s", "c", "c"),
        atom("pair", "a", "a"),
        atom("pair", "a", "b"),
    ):
        store.add(fact)
    return store


def both_ways(literals, store, binding=Substitution.empty()):
    def matcher(index, pattern):
        return store.match_substitutions(pattern)

    oracle = sorted(
        str(answer)
        for answer in join_literals(
            literals, binding, matcher, store.contains
        )
    )
    batch = sorted(
        str(answer)
        for answer in join_literals_batch(
            literals, binding, probe_from_source(store), store.contains
        )
    )
    adapted = sorted(
        str(answer)
        for answer in join_literals_batch(
            literals,
            binding,
            probe_from_matcher(matcher),
            store.contains,
        )
    )
    assert batch == adapted
    return oracle, batch


class TestKernelAgreement:
    def test_plain_join(self):
        oracle, batch = both_ways(
            [Literal(Atom("p", (X,))), Literal(Atom("r", (X, Y)))],
            small_store(),
        )
        assert batch == oracle and len(oracle) == 4

    def test_constants_and_repeated_variables(self):
        oracle, batch = both_ways(
            [Literal(Atom("pair", (Constant("a"), X)))], small_store()
        )
        assert batch == oracle and len(oracle) == 2
        oracle, batch = both_ways(
            [Literal(Atom("r", (X, X)))], small_store()
        )
        assert batch == oracle and len(oracle) == 2  # r(b,b), r(c,c)

    def test_negation_interleaved(self):
        literals = [
            Literal(Atom("p", (X,))),
            Literal(Atom("q", (X,)), False),
            Literal(Atom("r", (X, Y))),
            Literal(Atom("s", (X, Y)), False),
        ]
        oracle, batch = both_ways(literals, small_store())
        assert batch == oracle
        # p(b) dies at not q(b); (c, c) dies at not s(c, c).
        assert len(oracle) == 2

    def test_initial_binding(self):
        binding = Substitution({X: Constant("a")})
        oracle, batch = both_ways(
            [Literal(Atom("r", (X, Y)))], small_store(), binding
        )
        assert batch == oracle and len(oracle) == 2

    def test_empty_relation_and_empty_body(self):
        oracle, batch = both_ways(
            [Literal(Atom("nothing", (X,)))], small_store()
        )
        assert batch == oracle == []
        oracle, batch = both_ways([], small_store())
        assert batch == oracle and len(oracle) == 1

    def test_ground_negative_only_body(self):
        store = small_store()
        oracle, batch = both_ways(
            [Literal(atom("q", "a"), False)], store
        )
        assert batch == oracle and len(oracle) == 1
        oracle, batch = both_ways(
            [Literal(atom("q", "b"), False)], store
        )
        assert batch == oracle == []

    def test_range_restriction_error_matches_oracle(self):
        store = small_store()
        literals = [
            Literal(Atom("p", (X,))),
            Literal(Atom("nothing", (Y,)), False),
        ]
        for runner in (
            lambda: list(
                join_literals(
                    literals,
                    Substitution.empty(),
                    lambda i, pattern: store.match_substitutions(pattern),
                    store.contains,
                )
            ),
            lambda: list(
                join_literals_batch(
                    literals,
                    Substitution.empty(),
                    probe_from_source(store),
                    store.contains,
                )
            ),
        ):
            with pytest.raises(ValueError, match="range-restricted"):
                runner()

    def test_chunked_flushing_is_lossless(self):
        store = FactStore()
        for i in range(40):
            store.add(atom("e", f"n{i}", f"n{(i + 1) % 40}"))
        literals = [
            Literal(Atom("e", (X, Y))),
            Literal(Atom("e", (Y, Z))),
        ]
        oracle, _ = both_ways(literals, store)
        tiny_chunks = sorted(
            str(answer)
            for answer in join_literals_batch(
                literals,
                Substitution.empty(),
                probe_from_source(store),
                store.contains,
                chunk_size=3,
            )
        )
        assert tiny_chunks == oracle and len(oracle) == 40

    def test_mixed_arity_predicate_matches_oracle(self):
        # Nothing stops a database from asserting p/1 and p/2 under one
        # name; the group index filters on key positions only, so the
        # row extraction must enforce the pattern's arity the way the
        # tuple path's match() does (regression: IndexError / spurious
        # rows).
        store = FactStore()
        for fact in (
            atom("p", "a"),
            atom("p", "a", "b"),
            atom("p", "c", "b"),
            atom("q", "a"),
            atom("q", "c"),
        ):
            store.add(fact)
        oracle, batch = both_ways(
            [Literal(Atom("p", (Constant("a"), X)))], store
        )
        assert batch == oracle and len(oracle) == 1
        oracle, batch = both_ways(
            [Literal(Atom("p", (Constant("a"),)))], store
        )
        assert batch == oracle and len(oracle) == 1
        oracle, batch = both_ways(
            [Literal(Atom("q", (X,))), Literal(Atom("p", (X, Y)))], store
        )
        assert batch == oracle and len(oracle) == 2

    def test_validate_exec_rejects_typos(self):
        with pytest.raises(ValueError, match="unknown exec mode"):
            validate_exec("vectorized")


def wide_counting_store(n):
    store = CountingStore()
    for i in range(n):
        store.add(atom("p", f"x{i}"))
        store.add(atom("r", f"x{i}", f"y{i}"))
    return store


class TestShortCircuit:
    N = 1000

    def literals(self):
        return [
            Literal(Atom("p", (X,))),
            Literal(Atom("r", (X, Y))),
        ]

    def test_first_answer_stops_after_one_chunk(self):
        store = wide_counting_store(self.N)
        answers = join_literals_batch(
            self.literals(),
            Substitution.empty(),
            probe_from_source(store),
            store.contains,
        )
        next(answers)
        # One probe for p plus at most a chunk's worth of r probes —
        # nowhere near the full join's N probes.
        assert store.probes <= BATCH_CHUNK + 2
        assert store.probes < self.N / 2

    def test_full_enumeration_probes_every_key(self):
        store = wide_counting_store(self.N)
        count = sum(
            1
            for _ in join_literals_batch(
                self.literals(),
                Substitution.empty(),
                probe_from_source(store),
                store.contains,
            )
        )
        assert count == self.N
        assert store.probes >= self.N  # the contrast making the pin real

    def wide_database(self):
        store = wide_counting_store(self.N)
        db = DeductiveDatabase(store)
        db.add_constraint("forall X, Y: p(X) and r(X, Y) -> q(X)")
        return db, store

    def test_engine_witness_search_short_circuits(self):
        db, store = self.wide_database()
        engine = db.engine(
            config=EngineConfig(
                strategy="lazy", plan="greedy", exec_mode="batch"
            )
        )
        constraint = db.constraints[0]
        assert engine.evaluate(constraint.formula) is False
        assert store.probes <= BATCH_CHUNK + 16

    def test_engine_first_violation_short_circuits(self):
        db, store = self.wide_database()
        engine = db.engine(
            config=EngineConfig(
                strategy="lazy", plan="greedy", exec_mode="batch"
            )
        )
        constraint = db.constraints[0]
        next(engine.violations(constraint.formula))
        assert store.probes <= BATCH_CHUNK + 16

    def test_checker_witness_search_short_circuits(self):
        db, store = self.wide_database()
        checker = IntegrityChecker(db, config=EngineConfig(exec_mode="batch"))
        result = checker.check_full(parse_literal("p(x_new)"))
        assert not result.ok
        # The full check still stops at each constraint's first
        # violating restriction answer instead of materializing the
        # whole p ⋈ r join.
        assert store.probes <= BATCH_CHUNK + 32

    def test_full_witness_enumeration_is_the_contrast(self):
        db, store = self.wide_database()
        engine = db.engine(
            config=EngineConfig(
                strategy="lazy", plan="greedy", exec_mode="batch"
            )
        )
        constraint = db.constraints[0]
        witnesses = list(engine.violations(constraint.formula))
        assert len(witnesses) == self.N
        assert store.probes >= self.N


class TestInitialRelation:
    """join_literals_rows can start from a named (schema, rows)
    relation instead of the unit binding — the seam semi-naive
    evaluation uses to flow a delta (e.g. a supplementary predicate's
    new tuples) straight into its consumer joins."""

    def seeded(self, literals, store, schema, rows, chunk_size=None):
        from repro.datalog.joins import join_literals_rows

        kwargs = {} if chunk_size is None else {"chunk_size": chunk_size}
        out = []
        for out_schema, out_rows in join_literals_rows(
            literals,
            Substitution.empty(),
            probe_from_source(store),
            store.contains,
            initial=(schema, rows),
            **kwargs,
        ):
            for row in out_rows:
                out.append(
                    str(Substitution.trusted(dict(zip(out_schema, row))))
                )
        return sorted(out)

    def test_matches_per_row_binding_union(self):
        store = small_store()
        literals = [Literal(Atom("r", (X, Y)))]
        rows = [(Constant("a"),), (Constant("b"),), (Constant("zz"),)]
        expected = sorted(
            str(answer)
            for row in rows
            for answer in join_literals_batch(
                literals,
                Substitution({X: row[0]}),
                probe_from_source(store),
                store.contains,
            )
        )
        assert self.seeded(literals, store, (X,), rows) == expected
        assert len(expected) == 3  # r(a,b), r(a,c), r(b,b)

    def test_negatives_and_chunking(self):
        store = small_store()
        literals = [
            Literal(Atom("r", (X, Y))),
            Literal(Atom("s", (X, Y)), False),
        ]
        rows = [(Constant(c),) for c in "abc"]
        expected = self.seeded(literals, store, (X,), rows)
        tiny = self.seeded(literals, store, (X,), rows, chunk_size=1)
        assert tiny == expected
        assert len(expected) == 3  # (c, c) dies at not s(c, c)

    def test_empty_initial_relation_yields_nothing(self):
        assert self.seeded(
            [Literal(Atom("r", (X, Y)))], small_store(), (X,), []
        ) == []

    def test_initial_excludes_nonempty_binding(self):
        from repro.datalog.joins import join_literals_rows

        store = small_store()
        with pytest.raises(ValueError, match="mutually exclusive"):
            list(
                join_literals_rows(
                    [Literal(Atom("r", (X, Y)))],
                    Substitution({Y: Constant("b")}),
                    probe_from_source(store),
                    store.contains,
                    initial=((X,), [(Constant("a"),)]),
                )
            )


class TestExecSeamValidation:
    """Unknown exec modes fail at the seam with one line naming the
    choices — never by silently running the wrong join path."""

    def test_join_body_rejects_unknown_exec(self):
        from repro.datalog.joins import join_body

        store = small_store()
        with pytest.raises(ValueError, match="unknown exec mode"):
            join_body(
                [Literal(Atom("p", (X,)))],
                Substitution.empty(),
                lambda index, pattern: store.match_substitutions(pattern),
                store.contains,
                exec_mode="vectorized",
            )

    def test_compute_model_rejects_unknown_exec(self):
        from repro.datalog.bottomup import compute_model
        from repro.datalog.program import Program

        with pytest.raises(ValueError, match="unknown exec mode"):
            compute_model(small_store(), Program(), exec_mode="bogus")

    def test_maintained_model_rejects_unknown_exec(self):
        from repro.datalog.incremental import MaintainedModel
        from repro.datalog.program import Program

        with pytest.raises(ValueError, match="unknown exec mode"):
            MaintainedModel(small_store(), Program(), exec_mode="bogus")
        with pytest.raises(ValueError, match="unknown exec mode"):
            MaintainedModel.from_snapshot(
                small_store(), Program(), small_store(), exec_mode="bogus"
            )

    def test_evaluators_reject_unknown_exec(self):
        from repro.datalog.magic import MagicEvaluator
        from repro.datalog.program import Program
        from repro.datalog.topdown import TabledEvaluator

        with pytest.raises(ValueError, match="unknown exec mode"):
            TabledEvaluator(small_store(), Program(), exec_mode="bogus")
        with pytest.raises(ValueError, match="unknown exec mode"):
            MagicEvaluator(small_store(), Program(), exec_mode="bogus")

    def test_engine_rejects_unknown_exec(self):
        db = DeductiveDatabase(small_store())
        with pytest.raises(ValueError, match="unknown exec mode"):
            db.engine(config=EngineConfig(exec_mode="bogus"))
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown exec mode"):
                db.engine("lazy", "greedy", "bogus")

    def test_checker_rejects_unknown_exec(self):
        db = DeductiveDatabase(small_store())
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown exec mode"):
                IntegrityChecker(db, exec_mode="bogus")

"""Unit tests for bottom-up evaluation (naive and semi-naive)."""

import pytest

from repro.datalog.bottomup import compute_model, compute_model_naive
from repro.datalog.facts import FactStore
from repro.datalog.program import Program, Rule
from repro.logic.formulas import Atom
from repro.logic.parser import parse_fact, parse_rule
from repro.logic.terms import Constant


def program(*texts):
    return Program([Rule.from_parsed(parse_rule(t)) for t in texts])


def store(*facts):
    return FactStore(parse_fact(f) for f in facts)


def chain_store(n):
    """A linear par-chain c0 -> c1 -> ... -> cn."""
    s = FactStore()
    for i in range(n):
        s.add(Atom("par", (Constant(f"c{i}"), Constant(f"c{i+1}"))))
    return s


ANCESTOR = program(
    "anc(X, Y) :- par(X, Y)",
    "anc(X, Y) :- par(X, Z), anc(Z, Y)",
)


class TestNonRecursive:
    def test_single_rule(self):
        model = compute_model(
            store("leads(ann, sales)"),
            program("member(X, Y) :- leads(X, Y)"),
        )
        assert model.contains(parse_fact("member(ann, sales)"))
        assert model.contains(parse_fact("leads(ann, sales)"))

    def test_join_two_literals(self):
        model = compute_model(
            store("q(a, b)", "p(b, c)"),
            program("r(X) :- q(X, Y), p(Y, Z)"),
        )
        assert model.contains(parse_fact("r(a)"))

    def test_no_spurious_derivation(self):
        model = compute_model(
            store("q(a, b)", "p(c, d)"),
            program("r(X) :- q(X, Y), p(Y, Z)"),
        )
        assert not model.contains(parse_fact("r(a)"))

    def test_empty_program(self):
        edb = store("p(a)")
        model = compute_model(edb, Program())
        assert set(model) == set(edb)

    def test_input_store_not_mutated(self):
        edb = store("leads(ann, sales)")
        compute_model(edb, program("member(X, Y) :- leads(X, Y)"))
        assert len(edb) == 1


class TestRecursive:
    def test_transitive_closure(self):
        model = compute_model(chain_store(5), ANCESTOR)
        # anc must contain all 15 pairs i < j in 0..5.
        pairs = [f for f in model if f.pred == "anc"]
        assert len(pairs) == 15
        assert model.contains(parse_fact("anc(c0, c5)"))

    def test_cycle_terminates(self):
        edb = store("par(a, b)", "par(b, a)")
        model = compute_model(edb, ANCESTOR)
        assert model.contains(parse_fact("anc(a, a)"))
        assert model.contains(parse_fact("anc(b, b)"))

    def test_same_generation(self):
        sg = program(
            "sg(X, Y) :- flat(X, Y)",
            "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y)",
        )
        edb = store(
            "up(a, b)",
            "up(c, d)",
            "flat(b, d)",
            "flat(d, b)",
            "down(d, e)",
            "down(b, f)",
        )
        model = compute_model(edb, sg)
        assert model.contains(parse_fact("sg(a, e)"))
        assert model.contains(parse_fact("sg(c, f)"))

    def test_mutual_recursion(self):
        parity = program(
            "even(X) :- zero(X)",
            "even(X) :- succ(Y, X), odd(Y)",
            "odd(X) :- succ(Y, X), even(Y)",
        )
        edb = store("zero(0)", "succ(0, 1)", "succ(1, 2)", "succ(2, 3)")
        model = compute_model(edb, parity)
        assert model.contains(parse_fact("even(0)"))
        assert model.contains(parse_fact("odd(1)"))
        assert model.contains(parse_fact("even(2)"))
        assert model.contains(parse_fact("odd(3)"))
        assert not model.contains(parse_fact("odd(0)"))


class TestStratifiedNegation:
    def test_negation_lower_stratum(self):
        prog = program(
            "attends(X, ddb) :- student(X), keen(X)",
            "missing(X) :- student(X), not attends(X, ddb)",
        )
        edb = store("student(jack)", "student(jill)", "keen(jill)")
        model = compute_model(edb, prog)
        assert model.contains(parse_fact("missing(jack)"))
        assert not model.contains(parse_fact("missing(jill)"))

    def test_negation_over_recursion(self):
        prog = program(
            "anc(X, Y) :- par(X, Y)",
            "anc(X, Y) :- par(X, Z), anc(Z, Y)",
            "stranger(X, Y) :- person(X), person(Y), not anc(X, Y)",
        )
        edb = store("par(a, b)", "person(a)", "person(b)")
        model = compute_model(edb, prog)
        assert not model.contains(parse_fact("stranger(a, b)"))
        assert model.contains(parse_fact("stranger(b, a)"))
        assert model.contains(parse_fact("stranger(a, a)"))

    def test_negative_before_positive_in_body(self):
        # Range restriction is satisfied; the join must defer the
        # negative literal until X is bound.
        prog = program("p(X) :- not q(X), base(X)")
        model = compute_model(store("base(a)", "base(b)", "q(a)"), prog)
        assert not model.contains(parse_fact("p(a)"))
        assert model.contains(parse_fact("p(b)"))


class TestSemiNaiveAgainstNaive:
    @pytest.mark.parametrize("n", [1, 3, 7])
    def test_chain_agreement(self, n):
        semi = compute_model(chain_store(n), ANCESTOR)
        naive = compute_model_naive(chain_store(n), ANCESTOR)
        assert set(semi) == set(naive)

    def test_negation_agreement(self):
        prog = program(
            "anc(X, Y) :- par(X, Y)",
            "anc(X, Y) :- par(X, Z), anc(Z, Y)",
            "root(X) :- par(X, Y), not child(X)",
            "child(X) :- par(Y, X)",
        )
        edb = store("par(a, b)", "par(b, c)", "par(c, d)")
        semi = compute_model(edb, prog)
        naive = compute_model_naive(edb, prog)
        assert set(semi) == set(naive)

    def test_fact_and_rule_same_predicate(self):
        # A predicate may be both stored and derived.
        prog = program("member(X, Y) :- leads(X, Y)")
        edb = store("member(bob, hr)", "leads(ann, sales)")
        model = compute_model(edb, prog)
        assert model.contains(parse_fact("member(bob, hr)"))
        assert model.contains(parse_fact("member(ann, sales)"))

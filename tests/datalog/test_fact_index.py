"""The composite hash (group) indexes behind the batch join path.

``FactStore.bucket`` must agree with a match scan, stay correct under
assert/retract, and — the amortization the set-at-a-time engine rests
on — never rescan a predicate whose facts have not changed:
``group_builds`` counts the build scans and is pinned here.
``OverlayFactStore.bucket`` must additionally respect the overlay
shadowing rules (removed facts vanish, added facts appear, added facts
already in the base are not duplicated).
"""

import pytest

from repro.datalog.facts import FactStore
from repro.datalog.overlay import OverlayFactStore
from repro.logic.formulas import Atom
from repro.logic.terms import Constant, Variable


def atom(pred, *names):
    return Atom(pred, tuple(Constant(name) for name in names))


A, B, C, D = (Constant(n) for n in "abcd")


def scan(store, pred, positions, key):
    """Reference semantics: filter the predicate's facts by key."""
    return {
        fact
        for fact in store.facts(pred)
        if len(fact.args) > (max(positions) if positions else -1)
        and tuple(fact.args[p] for p in positions) == key
    }


class TestFactStoreBucket:
    def make(self):
        store = FactStore()
        for fact in (
            atom("p", "a", "b"),
            atom("p", "a", "c"),
            atom("p", "b", "c"),
            atom("q", "a"),
        ):
            store.add(fact)
        return store

    @pytest.mark.parametrize(
        "pred, positions, key",
        [
            ("p", (0,), (A,)),
            ("p", (0,), (B,)),
            ("p", (0,), (D,)),
            ("p", (1,), (C,)),
            ("p", (0, 1), (A, C)),
            ("p", (), ()),
            ("q", (0,), (A,)),
            ("missing", (0,), (A,)),
        ],
    )
    def test_bucket_equals_filtered_scan(self, pred, positions, key):
        store = self.make()
        assert set(store.bucket(pred, positions, key)) == scan(
            store, pred, positions, key
        )

    def test_maintained_under_assert_and_retract(self):
        store = self.make()
        key = (A,)
        assert set(store.bucket("p", (0,), key)) == {
            atom("p", "a", "b"),
            atom("p", "a", "c"),
        }
        builds = store.group_builds
        store.add(atom("p", "a", "d"))
        assert atom("p", "a", "d") in set(store.bucket("p", (0,), key))
        store.remove(atom("p", "a", "b"))
        store.remove(atom("p", "a", "c"))
        store.remove(atom("p", "a", "d"))
        assert set(store.bucket("p", (0,), key)) == set()
        # Maintenance is incremental: no rebuild scans happened.
        assert store.group_builds == builds

    def test_repeated_probes_do_no_rescans(self):
        store = self.make()
        assert store.group_builds == 0
        for _ in range(50):
            for key in ((A,), (B,), (C,), (D,)):
                store.bucket("p", (0,), key)
        # One build scan for the single (pred, positions) pair probed.
        assert store.group_builds == 1
        store.bucket("p", (1,), (C,))
        store.bucket("p", (0, 1), (A, B))
        assert store.group_builds == 3
        # Mutation updates the open indexes in place — further probes
        # of the changed predicate still rescan nothing.
        store.add(atom("p", "d", "d"))
        store.remove(atom("p", "b", "c"))
        for _ in range(50):
            store.bucket("p", (0,), (D,))
            store.bucket("p", (1,), (D,))
            store.bucket("p", (0, 1), (D, D))
        assert store.group_builds == 3

    def test_probe_result_tracks_mutation(self):
        store = self.make()
        assert set(store.bucket("p", (0,), (D,))) == set()
        store.add(atom("p", "d", "a"))
        assert set(store.bucket("p", (0,), (D,))) == {atom("p", "d", "a")}
        store.remove(atom("p", "d", "a"))
        assert set(store.bucket("p", (0,), (D,))) == set()

    def test_mixed_arity_facts_are_skipped_not_fatal(self):
        store = FactStore([atom("p", "a"), atom("p", "a", "b")])
        assert set(store.bucket("p", (1,), (B,))) == {atom("p", "a", "b")}
        store.add(atom("p", "b"))  # arity-1 fact joins the open index
        assert set(store.bucket("p", (1,), (B,))) == {atom("p", "a", "b")}

    def test_copy_indexes_are_independent(self):
        store = self.make()
        store.bucket("p", (0,), (A,))
        clone = store.copy()
        clone.add(atom("p", "a", "d"))
        assert atom("p", "a", "d") in set(clone.bucket("p", (0,), (A,)))
        assert atom("p", "a", "d") not in set(store.bucket("p", (0,), (A,)))


class TestOverlayBucket:
    def make(self):
        base = FactStore(
            [atom("p", "a", "b"), atom("p", "a", "c"), atom("p", "b", "b")]
        )
        overlay = OverlayFactStore(
            base,
            added=[atom("p", "a", "d"), atom("p", "a", "b")],  # one shadow
            removed=[atom("p", "a", "c")],
        )
        return base, overlay

    def test_shadowing(self):
        _, overlay = self.make()
        got = set(overlay.bucket("p", (0,), (A,)))
        assert got == {atom("p", "a", "b"), atom("p", "a", "d")}
        # Exactly the facts the overlay's own match() reports.
        assert got == set(overlay.match(Atom("p", (A, Variable("Y")))))

    def test_removed_fact_never_surfaces(self):
        _, overlay = self.make()
        assert set(overlay.bucket("p", (1,), (C,))) == set()

    def test_added_fact_in_base_is_not_duplicated(self):
        _, overlay = self.make()
        rows = list(overlay.bucket("p", (0, 1), (A, B)))
        assert rows == [atom("p", "a", "b")]

    def test_whole_predicate_bucket(self):
        _, overlay = self.make()
        assert set(overlay.bucket("p", (), ())) == set(overlay.facts("p"))

    def test_base_bucket_probes_are_amortized(self):
        base, overlay = self.make()
        overlay.bucket("p", (0,), (A,))
        builds = base.group_builds
        for _ in range(50):
            overlay.bucket("p", (0,), (A,))
            overlay.bucket("p", (0,), (B,))
        assert base.group_builds == builds

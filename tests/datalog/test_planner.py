"""Unit tests for the selectivity-driven join planner."""

import pytest

from repro.config import EngineConfig
from repro.datalog.bottomup import compute_model
from repro.datalog.database import DeductiveDatabase
from repro.datalog.facts import FactStore
from repro.datalog.joins import join_literals
from repro.datalog.overlay import OverlayFactStore
from repro.datalog.planner import (
    SourcePlanner,
    make_planner,
    source_cardinality,
    validate_plan,
)
from repro.datalog.program import Program, Rule
from repro.datalog.query import QueryEngine
from repro.datalog.topdown import TabledEvaluator
from repro.logic.formulas import Atom, Literal
from repro.logic.parser import parse_rule
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
a, b = Constant("a"), Constant("b")


def lit(pred, *args):
    return Literal(Atom(pred, args), True)


def neg(pred, *args):
    return Literal(Atom(pred, args), False)


def indexed(*literals):
    return list(enumerate(literals))


def store(*facts):
    out = FactStore()
    for pred, args in facts:
        out.add(Atom(pred, tuple(Constant(c) for c in args)))
    return out


class TestGreedyOrdering:
    def test_small_relation_scheduled_first(self):
        facts = store(
            *[("big", (f"x{i}", f"y{i}")) for i in range(50)],
            ("small", ("y0",)),
        )
        planner = make_planner("greedy", facts)
        ordered = planner.order(
            indexed(lit("big", X, Y), lit("small", Y)), set()
        )
        assert [i for i, _ in ordered] == [1, 0]

    def test_cross_product_avoided(self):
        # Whichever unary relation goes first, link(X, Y) — the only
        # literal sharing a variable with it — must come second, even
        # though it is the largest relation: scheduling the other unary
        # relation there would materialize a cross product.
        facts = store(
            *[("p", (f"a{i}",)) for i in range(5)],
            *[("q", (f"b{i}",)) for i in range(3)],
            *[("link", (f"a{i}", f"b{i}")) for i in range(20)],
        )
        planner = make_planner("greedy", facts)
        ordered = planner.order(
            indexed(lit("p", X), lit("q", Y), lit("link", X, Y)), set()
        )
        ordered_preds = [literal.atom.pred for _, literal in ordered]
        assert ordered_preds[0] in {"p", "q"}
        assert ordered_preds[1] == "link"

    def test_small_extent_beats_low_arity(self):
        # A huge unary relation must not be scheduled before a tiny
        # binary one just because it has fewer argument positions:
        # the estimate outranks arity.
        facts = store(
            *[("p", (f"x{i}", f"y{i}")) for i in range(3)],
            *[("q", (f"x{i}",)) for i in range(500)],
        )
        planner = make_planner("greedy", facts)
        ordered = planner.order(
            indexed(lit("p", X, Y), lit("q", X)), set()
        )
        assert [literal.atom.pred for _, literal in ordered] == ["p", "q"]

    def test_bound_argument_count_wins(self):
        # r(a, Y) has a bound position; r-sized s(Z) does not. The
        # half-bound literal is more selective.
        facts = store(
            *[("r", (f"k{i}", f"v{i}")) for i in range(10)],
            ("r", ("a", "v")),
            *[("s", (f"w{i}",)) for i in range(11)],
        )
        planner = make_planner("greedy", facts)
        ordered = planner.order(indexed(lit("r", a, Y), lit("s", Z)), set())
        assert ordered[0][1].atom.pred == "r"

    def test_initial_binding_counts_as_bound(self):
        # With X pre-bound, big(X, Y) is half-bound and indexed; it must
        # beat the disconnected medium-sized relation.
        facts = store(
            *[("big", (f"x{i}", f"y{i}")) for i in range(40)],
            *[("other", (f"o{i}",)) for i in range(5)],
        )
        planner = make_planner("greedy", facts)
        ordered = planner.order(
            indexed(lit("big", X, Y), lit("other", Z)), {X}
        )
        assert ordered[0][1].atom.pred == "big"

    def test_single_literal_untouched(self):
        planner = make_planner("greedy", FactStore())
        positives = indexed(lit("p", X))
        assert planner.order(positives, set()) == positives

    def test_with_cardinality_override(self):
        facts = store(
            *[("big", (f"x{i}", f"y{i}")) for i in range(50)],
            *[("mid", (f"y{i}", f"z{i}")) for i in range(10)],
        )
        planner = make_planner("greedy", facts)
        # Pretend position 0 (big) is a delta occurrence of size 1.
        overridden = planner.with_cardinality(
            lambda index, atom: 1 if index == 0 else 10
        )
        ordered = overridden.order(
            indexed(lit("big", X, Y), lit("mid", Y, Z)), set()
        )
        assert [i for i, _ in ordered] == [0, 1]

    def test_source_planner_is_identity(self):
        planner = SourcePlanner()
        positives = indexed(lit("q", Y), lit("p", X), lit("r", X, Y))
        assert planner.order(positives, set()) == positives
        assert planner.with_cardinality(lambda i, atom: 0) is planner

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown plan"):
            validate_plan("optimal")
        with pytest.raises(ValueError, match="unknown plan"):
            make_planner("optimal", FactStore())
        with pytest.raises(ValueError, match="unknown plan"):
            QueryEngine(
                FactStore(), Program(), config=EngineConfig(plan="optimal")
            )


class TestCardinalityEstimates:
    def test_factstore_estimate_uses_index(self):
        facts = store(
            *[("r", ("hub", f"v{i}")) for i in range(9)],
            ("r", ("leaf", "v0")),
        )
        assert facts.estimate(Atom("r", (X, Y))) == 10
        assert facts.estimate(Atom("r", (Constant("leaf"), Y))) == 1
        assert facts.estimate(Atom("r", (Constant("hub"), Y))) == 9
        assert facts.estimate(Atom("r", (Constant("absent"), Y))) == 0
        assert facts.estimate(Atom("nothere", (X,))) == 0

    def test_overlay_count_stays_exact(self):
        base = store(("p", ("a",)), ("p", ("b",)), ("q", ("c",)))
        overlay = OverlayFactStore(
            base,
            added=[Atom("p", (Constant("c"),)), Atom("p", (Constant("a"),))],
            removed=[Atom("q", (Constant("c"),))],
        )
        # Added "a" already in base (no-op); added "c" is new; q(c) gone.
        assert overlay.count("p") == 3
        assert overlay.count("q") == 0
        # Exact even when the base mutates under the overlay (the
        # estimate snapshot may drift; count must not).
        base.add(Atom("p", (Constant("c"),)))
        assert overlay.count("p") == len(overlay.facts("p")) == 3

    def test_overlay_estimate_covers_additions(self):
        base = store(*[("p", (f"x{i}",)) for i in range(4)])
        overlay = OverlayFactStore(base, added=[Atom("p", (Constant("y"),))])
        assert overlay.estimate(Atom("p", (X,))) >= 5

    def test_source_cardinality_fallbacks(self):
        facts = store(("p", ("a",)))
        est = source_cardinality(facts)
        assert est(0, Atom("p", (X,))) == 1

        class CountOnly:
            def count(self, pred):
                return 7

        assert source_cardinality(CountOnly())(0, Atom("p", (X,))) == 7
        # No statistics at all: pessimistic, never preferred.
        assert source_cardinality(object())(0, Atom("p", (X,))) > 10**6

    def test_tabled_estimate_grows_with_answers(self):
        facts = store(("e", ("a", "b")), ("e", ("b", "c")))
        program = Program([
            Rule.from_parsed(parse_rule("t(X, Y) :- e(X, Y)")),
            Rule.from_parsed(parse_rule("t(X, Y) :- e(X, Z), t(Z, Y)")),
        ])
        evaluator = TabledEvaluator(facts, program)
        pattern = Atom("t", (X, Y))
        # Never solved: unknown extent, costed pessimistically so the
        # planner does not schedule an unbounded recursion first.
        assert evaluator.estimate(pattern) >= 10**6
        answers = evaluator.solve(pattern)
        assert len(answers) == 3
        # Approximate: the same answer may land in several variant
        # tables, so the estimate can slightly overcount — but it is in
        # the extent's ballpark, far from the unknown-cost sentinel.
        assert len(answers) <= evaluator.estimate(pattern) <= 2 * len(answers)
        # Extensional predicates are never double-counted as answers.
        assert evaluator.estimate(Atom("e", (X, Y))) == 2
        # Repeated differently-bound queries must not inflate the
        # estimate: the same facts landing in more variant tables is
        # not a bigger extent.
        before = evaluator.estimate(pattern)
        evaluator.solve(Atom("t", (Constant("a"), Y)))
        evaluator.solve(Atom("t", (Constant("b"), Y)))
        assert evaluator.estimate(pattern) == before
        evaluator.invalidate()
        assert evaluator.estimate(pattern) >= 10**6


class TestJoinWithPlanner:
    def _join(self, facts, literals, planner):
        def matcher(index, pattern):
            return facts.match_substitutions(pattern)

        return list(
            join_literals(
                literals, Substitution.empty(), matcher, facts.contains, planner
            )
        )

    def test_matcher_receives_original_indices(self):
        facts = store(
            *[("big", (f"x{i}", f"y{i}")) for i in range(10)],
            ("small", ("y1",)),
        )
        seen = []

        def matcher(index, pattern):
            seen.append((index, pattern.pred))
            return facts.match_substitutions(pattern)

        literals = [lit("big", X, Y), lit("small", Y)]
        results = list(
            join_literals(
                literals,
                Substitution.empty(),
                matcher,
                facts.contains,
                make_planner("greedy", facts),
            )
        )
        assert len(results) == 1
        # Planned order visits small (original index 1) first, but each
        # call still carries the literal's source position.
        assert seen[0] == (1, "small")
        assert all(index == 0 for index, pred in seen if pred == "big")

    def test_planned_and_source_joins_agree(self):
        facts = store(
            *[("p", (f"a{i}",)) for i in range(4)],
            *[("q", (f"b{i}",)) for i in range(4)],
            *[("link", (f"a{i}", f"b{j}")) for i in range(4) for j in range(2)],
        )
        literals = [lit("p", X), lit("q", Y), lit("link", X, Y)]
        with_plan = self._join(facts, literals, make_planner("greedy", facts))
        without = self._join(facts, literals, None)
        assert sorted(map(repr, with_plan)) == sorted(map(repr, without))

    def test_negative_literal_tested_at_earliest_ground_point(self):
        # Body: big(X, Y), small(Y), not blocked(Y). Greedy solves small
        # first, so the negative test on Y runs before any big(X, Y)
        # match is attempted — far fewer closed-world lookups than in
        # source order, and identical answers.
        facts = store(
            *[("big", (f"x{i}", f"y{i}")) for i in range(30)],
            ("small", ("y0",)),
            ("small", ("y1",)),
            ("blocked", ("y0",)),
        )
        literals = [lit("big", X, Y), lit("small", Y), neg("blocked", Y)]

        def run(planner):
            calls = []

            def matcher(index, pattern):
                return facts.match_substitutions(pattern)

            def holds(atom):
                calls.append(atom)
                return facts.contains(atom)

            answers = list(
                join_literals(
                    literals, Substitution.empty(), matcher, holds, planner
                )
            )
            return answers, calls

        greedy_answers, greedy_calls = run(make_planner("greedy", facts))
        source_answers, source_calls = run(make_planner("source", facts))
        assert len(greedy_answers) == len(source_answers) == 1
        assert greedy_answers[0].get(Y) == Constant("y1")
        # Source order grounds Y only through big: one negation test per
        # big fact reached. Greedy grounds Y through small: two tests.
        assert len(greedy_calls) == 2
        assert len(source_calls) == 30

    def test_unsafe_rule_still_detected_under_planning(self):
        facts = store(("p", ("a",)))
        literals = [lit("p", X), neg("q", X, Y)]
        with pytest.raises(ValueError, match="range-restricted"):
            self._join(facts, literals, make_planner("greedy", facts))


class TestEngineKnob:
    def _database(self):
        db = DeductiveDatabase()
        for i in range(8):
            db.add_fact(Atom("big", (Constant(f"x{i}"), Constant(f"y{i}"))))
        db.add_fact(Atom("small", (Constant("y3"),)))
        db.add_rule("hit(X, Y) :- big(X, Y), small(Y)")
        return db

    def test_engine_cached_per_plan(self):
        db = self._database()
        greedy = EngineConfig(strategy="lazy", plan="greedy")
        source = EngineConfig(strategy="lazy", plan="source")
        assert db.engine(config=greedy) is db.engine(config=greedy)
        assert db.engine(config=greedy) is not db.engine(config=source)

    @pytest.mark.parametrize("strategy", ["lazy", "topdown", "model"])
    def test_plans_agree_across_strategies(self, strategy):
        db = self._database()
        pattern = Atom("hit", (X, Y))
        greedy = set(
            map(repr, db.engine(config=EngineConfig(strategy=strategy, plan="greedy")).match_atom(pattern))
        )
        source = set(
            map(repr, db.engine(config=EngineConfig(strategy=strategy, plan="source")).match_atom(pattern))
        )
        assert greedy == source

    def test_compute_model_plans_agree(self):
        db = self._database()
        greedy = compute_model(db.facts, db.program, "greedy")
        source = compute_model(db.facts, db.program, "source")
        assert set(greedy) == set(source)

    def test_answers_conjunction_is_order_independent(self):
        db = self._database()
        atoms = [Atom("big", (X, Y)), Atom("small", (Y,))]
        greedy = set(
            map(repr, db.engine(
                config=EngineConfig(strategy="lazy", plan="greedy")
            ).answers_conjunction(atoms))
        )
        source = set(
            map(repr, db.engine(
                config=EngineConfig(strategy="lazy", plan="source")
            ).answers_conjunction(atoms))
        )
        assert greedy == source
        assert len(greedy) == 1

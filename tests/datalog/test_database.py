"""Unit tests for the DeductiveDatabase façade."""

import pytest

from repro.datalog.database import DeductiveDatabase
from repro.logic.normalize import NormalizationError
from repro.logic.parser import parse_fact

SECTION5 = """
member(X, Y) :- leads(X, Y).

forall X: employee(X) -> exists Y: department(Y) and member(X, Y).
forall X: department(X) -> exists Y: employee(Y) and leads(Y, X).
forall X, Y: member(X, Y) -> (forall Z: leads(Z, Y) -> subordinate(X, Z)).
forall X: not subordinate(X, X).
exists X: employee(X).
"""


class TestConstruction:
    def test_from_source(self):
        db = DeductiveDatabase.from_source(SECTION5)
        assert len(db.program) == 1
        assert len(db.constraints) == 5
        assert len(db.facts) == 0

    def test_constraint_ids_assigned(self):
        db = DeductiveDatabase.from_source(SECTION5)
        ids = [c.id for c in db.constraints]
        assert len(set(ids)) == 5

    def test_add_constraint_normalizes(self):
        db = DeductiveDatabase()
        stored = db.add_constraint("forall X: p(X) -> q(X)")
        from repro.logic.formulas import Forall

        assert isinstance(stored.formula, Forall)
        assert stored.formula.restriction is not None

    def test_add_constraint_rejects_domain_dependent(self):
        db = DeductiveDatabase()
        with pytest.raises(NormalizationError):
            db.add_constraint("forall X: p(X)")

    def test_custom_constraint_id(self):
        db = DeductiveDatabase()
        stored = db.add_constraint("exists X: p(X)", id="nonempty")
        assert db.constraint_by_id("nonempty") is stored

    def test_unknown_constraint_id(self):
        db = DeductiveDatabase()
        with pytest.raises(KeyError):
            db.constraint_by_id("ghost")


class TestUpdates:
    def test_apply_insert(self):
        db = DeductiveDatabase()
        assert db.apply_update("p(a)")
        assert db.holds("p(a)")

    def test_apply_insert_existing_is_noop(self):
        db = DeductiveDatabase()
        db.apply_update("p(a)")
        assert not db.apply_update("p(a)")

    def test_apply_delete(self):
        db = DeductiveDatabase()
        db.apply_update("p(a)")
        assert db.apply_update("not p(a)")
        assert not db.holds("p(a)")

    def test_apply_delete_absent_is_noop(self):
        db = DeductiveDatabase()
        assert not db.apply_update("not p(a)")

    def test_updated_view_simulates_insert(self):
        db = DeductiveDatabase.from_source("leads(ann, sales).")
        view = db.updated("leads(bob, hr)")
        assert view.holds("leads(bob, hr)")
        assert not db.holds("leads(bob, hr)")

    def test_updated_view_sees_induced_derivation(self):
        db = DeductiveDatabase.from_source(
            "member(X, Y) :- leads(X, Y)."
        )
        view = db.updated("leads(ann, sales)")
        assert view.holds("member(ann, sales)")

    def test_updated_view_simulates_delete(self):
        db = DeductiveDatabase.from_source(
            "leads(ann, sales). member(X, Y) :- leads(X, Y)."
        )
        view = db.updated("not leads(ann, sales)")
        assert not view.holds("member(ann, sales)")
        assert db.holds("member(ann, sales)")

    def test_overlay_database_cannot_be_mutated(self):
        db = DeductiveDatabase.from_source("p(a).")
        view = db.updated("p(b)")
        with pytest.raises(TypeError):
            view.apply_update("p(c)")

    def test_updated_of_updated_stacks(self):
        db = DeductiveDatabase.from_source("p(a).")
        once = db.updated("p(b)")
        twice = once.updated("p(c)")
        assert twice.holds("p(a)")
        assert twice.holds("p(b)")
        assert twice.holds("p(c)")


class TestQuerying:
    def test_query_formula_text(self):
        db = DeductiveDatabase.from_source(
            "student(jack). enrolled(X, cs) :- student(X)."
        )
        assert db.query("forall X: student(X) -> enrolled(X, cs)")
        assert not db.query("exists X: enrolled(X, maths)")

    def test_canonical_model(self):
        db = DeductiveDatabase.from_source(
            "leads(ann, sales). member(X, Y) :- leads(X, Y)."
        )
        model = db.canonical_model()
        assert model.contains(parse_fact("member(ann, sales)"))

    def test_engine_cache_invalidated_on_update(self):
        db = DeductiveDatabase.from_source(
            "student(jack). enrolled(X, cs) :- student(X)."
        )
        assert db.holds("enrolled(jack, cs)")
        db.apply_update("student(jill)")
        assert db.holds("enrolled(jill, cs)")

    def test_engine_cached_between_reads(self):
        db = DeductiveDatabase.from_source("p(a).")
        assert db.engine() is db.engine()


class TestFullConstraintSweep:
    def test_empty_database_satisfies_universals_only(self):
        db = DeductiveDatabase.from_source(SECTION5)
        violated = db.violated_constraints()
        # Only the existential constraint (5) fails on the empty database
        # (Section 4: every universal holds when there are no facts).
        assert len(violated) == 1
        from repro.logic.formulas import Exists

        assert isinstance(violated[0].formula, Exists)

    def test_satisfied_after_inserts(self):
        db = DeductiveDatabase.from_source(
            """
            p(a). q(a).
            forall X: p(X) -> q(X).
            exists X: p(X).
            """
        )
        assert db.all_constraints_satisfied()

    def test_violation_detected(self):
        db = DeductiveDatabase.from_source(
            """
            p(a).
            forall X: p(X) -> q(X).
            """
        )
        violated = db.violated_constraints()
        assert len(violated) == 1


class TestCopy:
    def test_copy_independent_facts(self):
        db = DeductiveDatabase.from_source("p(a).")
        clone = db.copy()
        clone.apply_update("p(b)")
        assert not db.holds("p(b)")

    def test_copy_of_overlay_materializes(self):
        db = DeductiveDatabase.from_source("p(a).")
        view = db.updated("p(b)")
        clone = view.copy()
        assert clone.holds("p(b)")
        clone.apply_update("p(c)")  # copies of overlays are mutable
        assert clone.holds("p(c)")

"""The backend conformance suite: every fact-store backend honors the
:class:`repro.storage.backends.StoreBackend` contract identically.

The assertions mirror (and extend) ``tests/datalog/test_fact_index.py``
— bucket-equals-filtered-scan, the ``group_builds`` amortization pin,
overlay shadowing — but run parametrized over *every* registered
backend, so a new backend cannot pass by accident on the dict
reference semantics alone. Backend-specific behavior (the dict
capacity cap, sqlite's on-disk persistence) is pinned at the end.
"""

import pytest

from repro.datalog.facts import FactStore
from repro.datalog.overlay import OverlayFactStore
from repro.logic.formulas import Atom
from repro.logic.terms import Constant, Variable
from repro.storage.backends import (
    BACKENDS,
    StoreBackend,
    StoreCapacityError,
    make_store,
    validate_backend,
)


def atom(pred, *values):
    return Atom(pred, tuple(Constant(v) for v in values))


A, B, C, D = (Constant(n) for n in "abcd")
X, Y = Variable("X"), Variable("Y")


def scan(store, pred, positions, key):
    """Reference semantics: filter the predicate's facts by key."""
    return {
        fact
        for fact in store.facts(pred)
        if len(fact.args) > (max(positions) if positions else -1)
        and tuple(fact.args[p] for p in positions) == key
    }


@pytest.fixture(params=BACKENDS)
def backend_name(request):
    return request.param


@pytest.fixture
def store(backend_name):
    return make_store(backend_name)


def seeded(backend_name):
    return make_store(
        backend_name,
        [
            atom("p", "a", "b"),
            atom("p", "a", "c"),
            atom("p", "b", "c"),
            atom("q", "a"),
        ],
    )


class TestMembership:
    def test_set_semantics(self, store):
        assert store.add(atom("p", "a")) is True
        assert store.add(atom("p", "a")) is False
        assert store.contains(atom("p", "a"))
        assert atom("p", "a") in store
        assert store.remove(atom("p", "a")) is True
        assert store.remove(atom("p", "a")) is False
        assert not store.contains(atom("p", "a"))

    def test_len_iter_count_predicates(self, backend_name):
        store = seeded(backend_name)
        assert len(store) == 4
        assert set(store) == set(store.facts("p")) | set(store.facts("q"))
        assert store.count("p") == 3
        assert store.count("q") == 1
        assert store.count("missing") == 0
        assert store.predicates() == frozenset({"p", "q"})

    def test_clear_drops_everything(self, backend_name):
        store = seeded(backend_name)
        store.bucket("p", (0,), (A,))  # build an index, then drop it too
        store.clear()
        assert len(store) == 0
        assert store.predicates() == frozenset()
        assert set(store.bucket("p", (0,), (A,))) == set()

    def test_constants_are_the_active_domain(self, backend_name):
        store = seeded(backend_name)
        assert store.constants() == {A, B, C}

    def test_zero_arity_facts(self, store):
        assert store.add(Atom("flag", ())) is True
        assert store.contains(Atom("flag", ()))
        assert set(store.match(Atom("flag", ()))) == {Atom("flag", ())}
        assert store.remove(Atom("flag", ())) is True
        assert len(store) == 0

    def test_value_types_stay_distinct(self, store):
        """Constant(1) and Constant("1") are different facts in every
        backend (sqlite's column encoding must not conflate them)."""
        store.add(atom("n", 1))
        store.add(atom("n", "1"))
        assert len(store) == 2
        assert store.contains(atom("n", 1))
        assert store.contains(atom("n", "1"))
        store.remove(atom("n", 1))
        assert not store.contains(atom("n", 1))
        assert store.contains(atom("n", "1"))


class TestMatch:
    def test_ground_and_open_patterns(self, backend_name):
        store = seeded(backend_name)
        assert set(store.match(Atom("p", (A, B)))) == {atom("p", "a", "b")}
        assert set(store.match(Atom("p", (A, Y)))) == {
            atom("p", "a", "b"),
            atom("p", "a", "c"),
        }
        assert set(store.match(Atom("p", (X, Y)))) == set(store.facts("p"))
        assert set(store.match(Atom("p", (X,)))) == set()  # arity mismatch

    def test_repeated_variables_constrain(self, store):
        store.add(atom("e", "a", "a"))
        store.add(atom("e", "a", "b"))
        assert set(store.match(Atom("e", (X, X)))) == {atom("e", "a", "a")}

    def test_match_substitutions(self, backend_name):
        store = seeded(backend_name)
        answers = {
            str(s.apply_term(Y))
            for s in store.match_substitutions(Atom("p", (A, Y)))
        }
        assert answers == {"b", "c"}

    def test_estimate_never_undershoots(self, backend_name):
        store = seeded(backend_name)
        for pattern in (
            Atom("p", (X, Y)),
            Atom("p", (A, Y)),
            Atom("p", (A, B)),
            Atom("q", (X,)),
            Atom("missing", (X,)),
        ):
            assert store.estimate(pattern) >= len(set(store.match(pattern)))


class TestBucket:
    @pytest.mark.parametrize(
        "pred, positions, key",
        [
            ("p", (0,), (A,)),
            ("p", (0,), (B,)),
            ("p", (0,), (D,)),
            ("p", (1,), (C,)),
            ("p", (0, 1), (A, C)),
            ("p", (), ()),
            ("q", (0,), (A,)),
            ("missing", (0,), (A,)),
        ],
    )
    def test_bucket_equals_filtered_scan(
        self, backend_name, pred, positions, key
    ):
        store = seeded(backend_name)
        assert set(store.bucket(pred, positions, key)) == scan(
            store, pred, positions, key
        )

    def test_maintained_under_assert_and_retract(self, backend_name):
        store = seeded(backend_name)
        key = (A,)
        assert set(store.bucket("p", (0,), key)) == {
            atom("p", "a", "b"),
            atom("p", "a", "c"),
        }
        builds = store.group_builds
        store.add(atom("p", "a", "d"))
        assert atom("p", "a", "d") in set(store.bucket("p", (0,), key))
        store.remove(atom("p", "a", "b"))
        store.remove(atom("p", "a", "c"))
        store.remove(atom("p", "a", "d"))
        assert set(store.bucket("p", (0,), key)) == set()
        # Maintenance is incremental: no rebuild scans happened.
        assert store.group_builds == builds

    def test_repeated_probes_do_no_rescans(self, backend_name):
        store = seeded(backend_name)
        assert store.group_builds == 0
        for _ in range(50):
            for key in ((A,), (B,), (C,), (D,)):
                store.bucket("p", (0,), key)
        # One build scan for the single (pred, positions) pair probed.
        assert store.group_builds == 1
        store.bucket("p", (1,), (C,))
        store.bucket("p", (0, 1), (A, B))
        assert store.group_builds == 3
        # Mutation maintains the open indexes in place — further probes
        # of the changed predicate still rescan nothing.
        store.add(atom("p", "d", "d"))
        store.remove(atom("p", "b", "c"))
        for _ in range(50):
            store.bucket("p", (0,), (D,))
            store.bucket("p", (1,), (D,))
            store.bucket("p", (0, 1), (D, D))
        assert store.group_builds == 3

    def test_probe_result_tracks_mutation(self, backend_name):
        store = seeded(backend_name)
        assert set(store.bucket("p", (0,), (D,))) == set()
        store.add(atom("p", "d", "a"))
        assert set(store.bucket("p", (0,), (D,))) == {atom("p", "d", "a")}
        store.remove(atom("p", "d", "a"))
        assert set(store.bucket("p", (0,), (D,))) == set()

    def test_mixed_arity_facts_are_skipped_not_fatal(self, backend_name):
        store = make_store(backend_name, [atom("p", "a"), atom("p", "a", "b")])
        assert set(store.bucket("p", (1,), (B,))) == {atom("p", "a", "b")}
        store.add(atom("p", "b"))  # arity-1 fact must not join the probe
        assert set(store.bucket("p", (1,), (B,))) == {atom("p", "a", "b")}


class TestCopy:
    def test_copy_is_independent_and_same_backend(self, backend_name):
        store = seeded(backend_name)
        store.bucket("p", (0,), (A,))
        clone = store.copy()
        assert isinstance(clone, StoreBackend)
        assert clone.name == store.name
        assert set(clone) == set(store)
        clone.add(atom("p", "a", "d"))
        assert atom("p", "a", "d") in set(clone.bucket("p", (0,), (A,)))
        assert atom("p", "a", "d") not in set(store.bucket("p", (0,), (A,)))
        store.remove(atom("q", "a"))
        assert clone.contains(atom("q", "a"))


class TestOverlayOverAnyBackend:
    """The DRed/"new"-simulation overlay must shadow identically over
    every base backend."""

    def make(self, backend_name):
        base = make_store(
            backend_name,
            [atom("p", "a", "b"), atom("p", "a", "c"), atom("p", "b", "b")],
        )
        overlay = OverlayFactStore(
            base,
            added=[atom("p", "a", "d"), atom("p", "a", "b")],  # one shadow
            removed=[atom("p", "a", "c")],
        )
        return base, overlay

    def test_shadowing(self, backend_name):
        _, overlay = self.make(backend_name)
        got = set(overlay.bucket("p", (0,), (A,)))
        assert got == {atom("p", "a", "b"), atom("p", "a", "d")}
        assert got == set(overlay.match(Atom("p", (A, Y))))

    def test_removed_fact_never_surfaces(self, backend_name):
        _, overlay = self.make(backend_name)
        assert set(overlay.bucket("p", (1,), (C,))) == set()

    def test_added_fact_in_base_is_not_duplicated(self, backend_name):
        _, overlay = self.make(backend_name)
        rows = list(overlay.bucket("p", (0, 1), (A, B)))
        assert rows == [atom("p", "a", "b")]

    def test_base_bucket_probes_are_amortized(self, backend_name):
        base, overlay = self.make(backend_name)
        overlay.bucket("p", (0,), (A,))
        builds = base.group_builds
        for _ in range(50):
            overlay.bucket("p", (0,), (A,))
            overlay.bucket("p", (0,), (B,))
        assert base.group_builds == builds


class TestFactory:
    def test_unknown_backend_is_one_clear_error(self):
        with pytest.raises(ValueError, match="unknown backend 'paper'"):
            make_store("paper")
        with pytest.raises(ValueError, match="pick one of"):
            validate_backend("tape")

    def test_path_only_for_sqlite(self, tmp_path):
        with pytest.raises(ValueError, match="path"):
            make_store("dict", path=str(tmp_path / "db.sqlite"))

    def test_max_facts_only_for_dict(self):
        with pytest.raises(ValueError, match="max_facts"):
            make_store("sqlite", max_facts=10)


class TestDictCapacityCap:
    def test_cap_raises_capacity_error(self):
        store = FactStore(max_facts=3)
        for name in ("a", "b", "c"):
            store.add(atom("p", name))
        with pytest.raises(StoreCapacityError):
            store.add(atom("p", "d"))
        # The failed insert left no trace.
        assert len(store) == 3
        assert not store.contains(atom("p", "d"))
        # Duplicate inserts and removals still work at the cap.
        assert store.add(atom("p", "a")) is False
        assert store.remove(atom("p", "a")) is True
        assert store.add(atom("p", "d")) is True

    def test_sqlite_completes_past_the_dict_cap(self):
        """The out-of-core backend's reason to exist: a workload that
        exhausts a capped in-memory store runs to completion on
        sqlite."""
        cap = 50
        capped = FactStore(max_facts=cap)
        with pytest.raises(StoreCapacityError):
            for i in range(cap + 1):
                capped.add(atom("p", f"c{i}"))
        big = make_store("sqlite")
        for i in range(cap + 1):
            big.add(atom("p", f"c{i}"))
        assert len(big) == cap + 1


class TestSqlitePersistence:
    def test_file_backed_store_reopens(self, tmp_path):
        path = str(tmp_path / "facts.sqlite")
        store = make_store("sqlite", [atom("p", "a", "b")], path=path)
        store.add(atom("q", "c"))
        store.close()
        reopened = make_store("sqlite", path=path)
        assert set(reopened) == {atom("p", "a", "b"), atom("q", "c")}
        assert reopened.count("p") == 1
        assert set(reopened.bucket("p", (0,), (A,))) == {atom("p", "a", "b")}
        reopened.close()

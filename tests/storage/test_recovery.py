"""Snapshot + WAL recovery: the crash-recovery property, in units.

The acceptance invariant: recovery yields exactly the last committed
state, the recovered DRed-maintained model equals a from-scratch
recomputation, and only gate-passing transactions ever reach the log.
"""

import os

import pytest

from repro.datalog.bottomup import compute_model
from repro.datalog.database import DeductiveDatabase
from repro.datalog.incremental import MaintainedModel
from repro.integrity.transactions import Transaction
from repro.logic.parser import parse_atom
from repro.storage.engine import StorageEngine
from repro.storage.snapshot import (
    load_latest_snapshot,
    snapshot_path,
    write_snapshot,
)
from repro.storage.wal import WalRecord

SOURCE = """
p(a).
q(X) :- p(X), not blocked(X).
forall X: q(X) -> q(X).
"""


def fresh_db():
    return DeductiveDatabase.from_source(SOURCE)


def model_facts(model):
    return sorted(map(str, model))


class TestSnapshots:
    def test_roundtrip_with_model(self, tmp_path):
        db = fresh_db()
        model = MaintainedModel(db.facts, db.program)
        write_snapshot(tmp_path, 7, db, model.model)
        snapshot = load_latest_snapshot(tmp_path)
        assert snapshot.lsn == 7
        assert model_facts(snapshot.database.facts) == model_facts(db.facts)
        assert model_facts(snapshot.model) == model_facts(model.model)
        assert [c.id for c in snapshot.database.constraints] == ["c1"]

    def test_newer_snapshot_wins_and_prunes(self, tmp_path):
        db = fresh_db()
        write_snapshot(tmp_path, 1, db)
        db.apply_update("p(b)")
        write_snapshot(tmp_path, 9, db)
        snapshot = load_latest_snapshot(tmp_path)
        assert snapshot.lsn == 9
        assert snapshot.database.facts.contains(parse_atom("p(b)"))
        assert not os.path.exists(snapshot_path(tmp_path, 1))

    def test_custom_constraint_ids_survive(self, tmp_path):
        db = fresh_db()
        db.add_constraint("exists X: p(X)", id="keep_me")
        write_snapshot(tmp_path, 2, db)
        snapshot = load_latest_snapshot(tmp_path)
        assert [c.id for c in snapshot.database.constraints] == [
            "c1",
            "keep_me",
        ]


class TestRecovery:
    def replay_setup(self, tmp_path):
        engine = StorageEngine(tmp_path, sync=False)
        db = fresh_db()
        engine.initialize(db, MaintainedModel(db.facts, db.program))
        return engine

    def test_recovers_initial_state(self, tmp_path):
        engine = self.replay_setup(tmp_path)
        state = engine.recover()
        assert state.last_lsn == 0
        assert state.replayed_transactions == 0
        assert model_facts(state.database.facts) == ["p(a)"]
        assert model_facts(state.model.model) == ["p(a)", "q(a)"]

    def test_replays_wal_suffix_through_dred(self, tmp_path):
        engine = self.replay_setup(tmp_path)
        engine.log(WalRecord(1, "txn", {"updates": ["p(b)"]}))
        engine.log(
            WalRecord(
                3,
                "batch",
                {
                    "txns": [
                        {"lsn": 2, "updates": ["blocked(a)"]},
                        {"lsn": 3, "updates": ["p(c)", "not p(b)"]},
                    ]
                },
            )
        )
        state = engine.recover()
        assert state.last_lsn == 3
        assert state.replayed_transactions == 3
        assert model_facts(state.database.facts) == [
            "blocked(a)",
            "p(a)",
            "p(c)",
        ]
        # The DRed-maintained model equals a from-scratch recomputation
        # (including the negation flip from blocked(a)).
        fresh = compute_model(state.database.facts, state.database.program)
        assert model_facts(state.model.model) == model_facts(fresh)
        assert "q(a)" not in model_facts(state.model.model)

    def test_torn_tail_is_truncated_and_reported(self, tmp_path):
        engine = self.replay_setup(tmp_path)
        engine.log(WalRecord(1, "txn", {"updates": ["p(b)"]}))
        engine.wal._write_bytes(b'{"lsn": 2, "kind": "txn"')
        engine.close()
        reopened = StorageEngine(tmp_path, sync=False)
        state = reopened.recover()
        assert state.truncated_bytes > 0
        assert state.last_lsn == 1
        # After truncation the log accepts new appends cleanly.
        reopened.log(WalRecord(2, "txn", {"updates": ["p(z)"]}))
        assert StorageEngine(tmp_path, sync=False).recover().last_lsn == 2

    def test_constraint_ddl_replay(self, tmp_path):
        engine = self.replay_setup(tmp_path)
        engine.log(
            WalRecord(
                1, "constraint", {"source": "exists X: p(X)", "id": "cx"}
            )
        )
        state = engine.recover()
        assert [c.id for c in state.database.constraints] == ["c1", "cx"]

    def test_checkpoint_then_crash_between_snapshot_and_truncate(
        self, tmp_path
    ):
        """Records whose LSN the snapshot covers replay as no-ops."""
        engine = self.replay_setup(tmp_path)
        engine.log(WalRecord(1, "txn", {"updates": ["p(b)"]}))
        state = engine.recover()
        # Snapshot written but WAL *not* truncated — the crash window.
        write_snapshot(tmp_path, 1, state.database, state.model.model)
        after = StorageEngine(tmp_path, sync=False).recover()
        assert after.last_lsn == 1
        assert after.replayed_transactions == 0  # LSN filter skipped it
        assert model_facts(after.database.facts) == ["p(a)", "p(b)"]

    def test_recovery_is_idempotent(self, tmp_path):
        engine = self.replay_setup(tmp_path)
        for lsn, update in ((1, "p(b)"), (2, "blocked(b)"), (3, "not p(a)")):
            engine.log(WalRecord(lsn, "txn", {"updates": [update]}))
        first = engine.recover()
        second = StorageEngine(tmp_path, sync=False).recover()
        assert model_facts(first.database.facts) == model_facts(
            second.database.facts
        )
        assert model_facts(first.model.model) == model_facts(
            second.model.model
        )


class TestMaintainedModelResume:
    def test_from_snapshot_equals_fresh_model(self):
        db = fresh_db()
        original = MaintainedModel(db.facts, db.program)
        resumed = MaintainedModel.from_snapshot(
            db.facts, db.program, original.model
        )
        assert model_facts(resumed.model) == model_facts(original.model)
        # Resumed models keep maintaining correctly.
        resumed.apply(Transaction(["blocked(a)"]))
        original.apply(Transaction(["blocked(a)"]))
        assert model_facts(resumed.model) == model_facts(original.model)

    def test_from_snapshot_copies_inputs(self):
        db = fresh_db()
        original = MaintainedModel(db.facts, db.program)
        resumed = MaintainedModel.from_snapshot(
            db.facts, db.program, original.model
        )
        resumed.apply(Transaction(["p(zz)"]))
        assert "p(zz)" not in model_facts(original.model)
        assert not db.facts.contains(parse_atom("p(zz)"))


@pytest.mark.parametrize("records", [0, 5, 17])
def test_recovery_replays_exactly_the_logged_prefix(tmp_path, records):
    engine = StorageEngine(tmp_path, sync=False)
    db = fresh_db()
    engine.initialize(db, MaintainedModel(db.facts, db.program))
    for lsn in range(1, records + 1):
        engine.log(WalRecord(lsn, "txn", {"updates": [f"p(n{lsn})"]}))
    state = engine.recover()
    assert state.last_lsn == records
    assert state.replayed_transactions == records
    expected = {"p(a)"} | {f"p(n{i})" for i in range(1, records + 1)}
    assert set(model_facts(state.database.facts)) == expected
